//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate ships
//! the subset of the criterion 0.5 API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and [`black_box`].
//!
//! Measurement model: per benchmark, a short warm-up sizes the batch so
//! one timed batch lasts ≥ ~1 ms, then `sample_size` batches are timed and
//! the median per-iteration time is reported on stdout. When the binary is
//! invoked with `--test` (as `cargo test` does for bench targets) each
//! benchmark runs exactly once, as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup (accepted for API compatibility;
/// this harness always re-runs setup per measured batch element).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input: large batches upstream.
    SmallInput,
    /// Large routine input: batches of one.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<D: std::fmt::Display>(function_name: &str, parameter: D) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form (the group provides the function name).
    pub fn from_parameter<D: std::fmt::Display>(parameter: D) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 15,
            test_mode,
        }
    }
}

impl Criterion {
    /// Override the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.test_mode, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_bench(&name, self.sample_size, self.test_mode, &mut f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_bench(&name, self.sample_size, self.test_mode, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (upstream writes reports here; we do nothing).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Time `routine` over the scheduled iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let iters = if self.test_mode { 1 } else { self.iters };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup` product per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = if self.test_mode { 1 } else { self.iters };
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, test_mode: bool, f: &mut F) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            test_mode: true,
        };
        f(&mut b);
        println!("test {name} ... ok (bench smoke)");
        return;
    }

    // Warm-up: find an iteration count whose batch lasts ≥ 1 ms (capped so
    // a slow benchmark still finishes promptly).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            test_mode: false,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            test_mode: false,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{name:<50} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("fib_smoke", |b| {
            b.iter(|| (0..20u64).fold((0u64, 1u64), |(a, b), _| (b, a + b)).0)
        });
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        sample_bench(&mut c);
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
