//! Vendored, dependency-free stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this crate ships
//! the one API surface the workspace uses: [`scope`] with
//! [`Scope::spawn`], implemented on top of `std::thread::scope` (which
//! has provided the same structured-concurrency guarantees since Rust
//! 1.63). Spawned closures receive a `&Scope` argument exactly like
//! crossbeam's, so nested spawns work.

#![forbid(unsafe_code)]

use std::thread;

/// A scope handle; threads spawned through it cannot outlive the scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread; joining yields the closure's result.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to this scope. The closure receives the scope
    /// itself so it can spawn further siblings (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Create a scope for spawning borrowing threads; all spawned threads are
/// joined before this returns. Unlike crossbeam, a panic in an *unjoined*
/// thread propagates as a panic rather than an `Err`, which is strictly
/// stricter — callers here always join and `.expect()` the result anyway.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawns_work() {
        let n = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
