//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small subset of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits,
//! uniform range sampling and [`seq::SliceRandom`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically strong and
//! fully deterministic per seed, which is all the simulators and tests
//! rely on (nothing in the repo depends on the exact stream of the
//! upstream `StdRng`).

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128_below(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening rejection-free multiply.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    // Lemire's multiply-shift; the bias is < 2^-64, irrelevant here.
    ((rng.next_u64() as u128) * span) >> 64
}

// Only f64 gets range sampling: a second float impl would make the
// ubiquitous `rng.gen_range(-2.0..2.0)` literal ambiguous to inference.
impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        let u = f64::sample_standard(rng);
        (start + (end - start) * u).min(end)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(mut seed: u64) -> Self {
            let mut next = || {
                seed = seed.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_splitmix(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Random slice operations (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// Uniformly pick a reference to one element (`None` if empty).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Every bucket of a small range gets hit.
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity (astronomically unlikely)"
        );
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: super::RngCore>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let r = &mut rng;
        let a = draw(r);
        let b = draw(r);
        assert_ne!(a, b);
    }
}
