//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate ships
//! the subset of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, range and
//! collection strategies, tuple strategies, `prop_map`/`prop_flat_map`,
//! `any::<T>()` and `prop::sample::Index`.
//!
//! Semantics: each test body runs for `ProptestConfig::cases` iterations
//! with inputs drawn from the strategies, seeded deterministically from
//! the test's name so failures reproduce. There is **no shrinking** — a
//! failing case panics with the sampled values available via the normal
//! assertion message, which is sufficient for CI.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then a dependent strategy from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values satisfying `pred` (rejection sampling).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                whence,
            }
        }
    }

    /// Strategy yielding a constant.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive samples: {}",
                self.whence
            );
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// Full-domain strategy for `T` (see [`Arbitrary`]).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types with a canonical full-domain distribution.
    pub trait Arbitrary {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Size specification: a fixed length or a length range.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helper types.

    use super::strategy::Arbitrary;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// An index into a collection of as-yet-unknown size: stores a uniform
    /// fraction, resolved against a length with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(f64);

    impl Index {
        /// Resolve against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            ((self.0 * len as f64) as usize).min(len - 1)
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.gen::<f64>())
        }
    }
}

pub mod test_runner {
    //! Per-test execution state.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream default is 256; kept identical.
            Config { cases: 256 }
        }
    }

    /// Deterministic per-test runner: the RNG is seeded from the test name
    /// (plus an env override for reproducing alternate universes).
    pub struct TestRunner {
        /// Case-generation RNG.
        pub rng: StdRng,
    }

    impl TestRunner {
        /// Build a runner for the named test.
        pub fn new(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            if let Ok(extra) = std::env::var("PROPTEST_SEED") {
                if let Ok(x) = extra.parse::<u64>() {
                    h = h.wrapping_add(x);
                }
            }
            TestRunner {
                rng: StdRng::seed_from_u64(h),
            }
        }
    }
}

/// The `prop::` namespace used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! Everything property tests import.

    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a property test (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip a case that does not satisfy a precondition. Without shrinking
/// there is nothing to abort, so this simply `continue`s to the next case;
/// it must therefore appear directly in the test body (as upstream).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[allow(unused_mut)]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                #[allow(clippy::never_loop, unreachable_code)]
                for case in 0..config.cases {
                    let _ = case;
                    $(let $arg = $crate::strategy::Strategy::sample(
                        &{ $strat }, &mut runner.rng
                    );)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sampled ranges honour their bounds.
        #[test]
        fn ranges_in_bounds(x in 0.25..0.75f64, n in 3usize..9, b in any::<bool>()) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&n));
            let _ = b;
        }

        /// Collection + flat-map strategies compose.
        #[test]
        fn vec_lengths_follow_flat_map(
            v in (2u32..=5).prop_flat_map(|log| prop::collection::vec(0.0..1.0f64, 1usize << log))
        ) {
            prop_assert!(v.len().is_power_of_two());
            prop_assert!(v.len() >= 4 && v.len() <= 32);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        /// Index resolves into bounds for any length.
        #[test]
        fn index_in_bounds(ix in any::<prop::sample::Index>(), len in 1usize..100) {
            prop_assert!(ix.index(len) < len);
        }

        /// prop_map transforms values.
        #[test]
        fn map_applies(n in (1usize..10).prop_map(|n| n * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!((2..20).contains(&n));
        }
    }
}
