//! The paper's theorems, verified across the full stack (not just on the
//! wavelet crate in isolation).

use hyperm::wavelet::{decompose, scaled_radius, Normalization, Subspace};
use hyperm::{Dataset, HypermConfig, HypermNetwork};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Theorem 3.1 at the network level: for any item within ε of a query in
/// the original space, the overlay-level range queries (with radii
/// contracted per the theorem) never prune the item's cluster — i.e. its
/// peer appears in the candidate list with positive min-score.
#[test]
fn theorem_4_1_no_false_dismissals_network_level() {
    let mut rng = StdRng::seed_from_u64(1);
    let dim = 32usize;
    let peers: Vec<Dataset> = (0..12)
        .map(|_| {
            let mut ds = Dataset::new(dim);
            let mut row = vec![0.0f64; dim];
            let c: f64 = rng.gen();
            for _ in 0..30 {
                for x in row.iter_mut() {
                    *x = (c * 0.5 + rng.gen::<f64>() * 0.5).clamp(0.0, 1.0);
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect();
    let cfg = HypermConfig::new(dim)
        .with_levels(5)
        .with_clusters_per_peer(4)
        .with_seed(2);
    let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();

    for trial in 0..50 {
        // Query = a perturbed existing item; the original item is a true
        // answer at radius = its distance + slack.
        let p = trial % peers.len();
        let i = trial % peers[p].len();
        let target: Vec<f64> = peers[p].row(i).to_vec();
        let q: Vec<f64> = target
            .iter()
            .map(|x| (x + rng.gen::<f64>() * 0.05).clamp(0.0, 1.0))
            .collect();
        let d: f64 = q
            .iter()
            .zip(&target)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let res = net.range_query(0, &q, d + 1e-9, None);
        assert!(
            res.items.contains(&(p, i)),
            "trial {trial}: item ({p},{i}) at distance {d} missed"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.1 as stated: points of a radius-r ball land inside the
    /// contracted ball in every subspace — exercised with random centres,
    /// radii and dimensions.
    #[test]
    fn theorem_3_1_random_configurations(
        log_dim in 2u32..8,
        radius in 0.01..5.0f64,
        centre_scale in 0.1..10.0f64,
        seed in any::<u64>(),
    ) {
        let dim = 1usize << log_dim;
        let mut rng = StdRng::seed_from_u64(seed);
        let centre: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() * centre_scale).collect();
        let dec_c = decompose(&centre, Normalization::PaperAverage).unwrap();
        for _ in 0..10 {
            let mut offset: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() - 0.5).collect();
            let norm: f64 = offset.iter().map(|x| x * x).sum::<f64>().sqrt();
            let len = radius * rng.gen::<f64>();
            for x in offset.iter_mut() {
                *x = *x / norm * len;
            }
            let point: Vec<f64> = centre.iter().zip(&offset).map(|(c, o)| c + o).collect();
            let dec_p = decompose(&point, Normalization::PaperAverage).unwrap();
            for s in Subspace::all(dim) {
                let a = dec_c.subspace(s).unwrap();
                let b = dec_p.subspace(s).unwrap();
                let d: f64 =
                    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
                let bound = scaled_radius(radius, dim, s, Normalization::PaperAverage);
                prop_assert!(d <= bound + 1e-9, "{s:?}: {d} > {bound}");
            }
        }
    }

    /// Theorem 4.1's converse bound: a point passing the per-level
    /// thresholds in all subspaces is within R·√(log₂ d + 1) in the
    /// original space — verified by construction: any point at original
    /// distance D has all level distances ≤ D/contraction, and
    /// reconstructing from level distances can't exceed the bound.
    #[test]
    fn theorem_4_1_reverse_bound(log_dim in 2u32..8, seed in any::<u64>()) {
        let dim = 1usize << log_dim;
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
        let q: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
        let dx = decompose(&x, Normalization::PaperAverage).unwrap();
        let dq = decompose(&q, Normalization::PaperAverage).unwrap();
        // R = max over levels of (level distance × contraction).
        let mut r_threshold = 0.0f64;
        for s in Subspace::all(dim) {
            let a = dx.subspace(s).unwrap();
            let b = dq.subspace(s).unwrap();
            let d: f64 = a.iter().zip(b).map(|(u, v)| (u - v) * (u - v)).sum::<f64>().sqrt();
            let contraction = (dim as f64 / s.dim() as f64).sqrt();
            r_threshold = r_threshold.max(d * contraction);
        }
        // x passes all per-level thresholds at R = r_threshold, so the
        // theorem asserts ‖x − q‖ ≤ R·√(log₂ d + 1).
        let true_dist: f64 =
            x.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        let bound = r_threshold * ((log_dim as f64) + 1.0).sqrt();
        prop_assert!(true_dist <= bound + 1e-9, "{true_dist} > {bound}");
    }
}
