//! End-to-end integration tests across the whole workspace: generators →
//! summarisation → overlays → queries → evaluation.

use hyperm::datagen::{
    distribute_by_clusters, generate_aloi_like, generate_markov, AloiConfig, DistributeConfig,
    MarkovConfig,
};
use hyperm::{
    Dataset, EvalHarness, HypermConfig, HypermNetwork, InsertPolicy, KnnOptions, ScorePolicy,
};

fn aloi_network(seed: u64, clusters: usize) -> HypermNetwork {
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 20,
        views_per_class: 20,
        bins: 64,
        view_jitter: 0.15,
        seed,
    });
    let mut peers = distribute_by_clusters(
        &corpus.data,
        &DistributeConfig {
            peers: 20,
            classes: 20,
            peers_per_class: (3, 5),
            minibatch: false,
            seed: seed + 1,
        },
    );
    for p in peers.iter_mut() {
        if p.is_empty() {
            p.push_row(corpus.data.row(0));
        }
    }
    let cfg = HypermConfig::new(64)
        .with_levels(4)
        .with_clusters_per_peer(clusters)
        .with_seed(seed);
    HypermNetwork::build(peers, cfg).unwrap().0
}

#[test]
fn range_queries_have_no_false_dismissals_on_aloi_like_data() {
    let net = aloi_network(1, 8);
    let harness = EvalHarness::new(&net);
    for (i, q) in harness.sample_queries(&net, 15, 2).iter().enumerate() {
        for k_radius in [5usize, 20, 60] {
            let eps = harness.kth_distance(q, k_radius);
            let (pr, _) = harness.eval_range(&net, i % net.len(), q, eps, None);
            assert_eq!(
                pr.recall, 1.0,
                "false dismissal: query {i}, radius of {k_radius}-NN"
            );
            assert_eq!(pr.precision, 1.0);
        }
    }
}

#[test]
fn knn_quality_improves_with_summary_granularity() {
    // Figure 10b's trend as a regression test: 2 clusters/peer must be
    // clearly worse than 10.
    let coarse = aloi_network(3, 2);
    let fine = aloi_network(3, 10);
    let eval = |net: &HypermNetwork| {
        let harness = EvalHarness::new(net);
        let queries = harness.sample_queries(net, 12, 4);
        let mut recall = 0.0;
        for q in &queries {
            recall += harness
                .eval_knn(net, 0, q, 10, KnnOptions::default())
                .retrieved
                .recall;
        }
        recall / queries.len() as f64
    };
    let r_coarse = eval(&coarse);
    let r_fine = eval(&fine);
    assert!(
        r_fine >= r_coarse - 0.02,
        "finer summaries should not hurt recall: {r_coarse} -> {r_fine}"
    );
}

#[test]
fn markov_pipeline_end_to_end() {
    let data = generate_markov(&MarkovConfig {
        count: 2_000,
        dim: 64,
        max_step_cap: 0.05,
        seed: 5,
    });
    let mut peers = distribute_by_clusters(
        &data,
        &DistributeConfig {
            peers: 25,
            classes: 8,
            peers_per_class: (4, 6),
            minibatch: true,
            seed: 6,
        },
    );
    for p in peers.iter_mut() {
        if p.is_empty() {
            p.push_row(data.row(0));
        }
    }
    let cfg = HypermConfig::new(64)
        .with_levels(3)
        .with_clusters_per_peer(6)
        .with_seed(7);
    let (net, report) = HypermNetwork::build(peers, cfg).unwrap();
    assert_eq!(report.items_total, 2_000 + report.items_total - 2_000); // backfill may add
    assert!(
        report.avg_hops_per_item() < 5.0,
        "hops/item {}",
        report.avg_hops_per_item()
    );

    // Queries behave.
    let harness = EvalHarness::new(&net);
    let q = harness.sample_queries(&net, 1, 8).remove(0);
    let eps = harness.kth_distance(&q, 10);
    let (pr, _) = harness.eval_range(&net, 0, &q, eps, None);
    assert_eq!(pr.recall, 1.0);
}

#[test]
fn score_policies_order_by_permissiveness_for_range_candidates() {
    // For identical networks, the min policy's candidate set is a subset of
    // avg's, which is a subset of max's (element-wise: min ≤ avg ≤ max).
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 10,
        views_per_class: 15,
        bins: 64,
        view_jitter: 0.15,
        seed: 9,
    });
    let peers: Vec<Dataset> = (0..10)
        .map(|p| {
            let ids: Vec<usize> = (p * 15..(p + 1) * 15).collect();
            corpus.data.select(&ids)
        })
        .collect();
    let build = |policy| {
        let cfg = HypermConfig::new(64)
            .with_levels(4)
            .with_clusters_per_peer(5)
            .with_seed(10)
            .with_score_policy(policy);
        HypermNetwork::build(peers.clone(), cfg).unwrap().0
    };
    let net_min = build(ScorePolicy::Min);
    let net_avg = build(ScorePolicy::Avg);
    let net_max = build(ScorePolicy::Max);
    let q = corpus.data.row(3).to_vec();
    let c_min: std::collections::HashSet<usize> = net_min
        .range_query(0, &q, 0.2, None)
        .ranked
        .iter()
        .map(|p| p.peer)
        .collect();
    let c_avg: std::collections::HashSet<usize> = net_avg
        .range_query(0, &q, 0.2, None)
        .ranked
        .iter()
        .map(|p| p.peer)
        .collect();
    let c_max: std::collections::HashSet<usize> = net_max
        .range_query(0, &q, 0.2, None)
        .ranked
        .iter()
        .map(|p| p.peer)
        .collect();
    assert!(c_min.is_subset(&c_avg), "min ⊄ avg");
    assert!(c_avg.is_subset(&c_max), "avg ⊄ max");
}

#[test]
fn post_creation_inserts_respect_policies() {
    let mut net = aloi_network(11, 6);
    let fresh = generate_aloi_like(&AloiConfig {
        classes: 3,
        views_per_class: 4,
        bins: 64,
        view_jitter: 0.15,
        seed: 999,
    });
    // Republished items are always findable afterwards.
    for (i, row) in fresh.data.rows().enumerate() {
        let peer = i % net.len();
        net.insert_item(peer, row, InsertPolicy::Republish);
        let idx = net.peer(peer).len() - 1;
        let res = net.range_query(0, row, 1e-6, None);
        assert!(
            res.items.contains(&(peer, idx)),
            "republished item {i} lost"
        );
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let a = aloi_network(13, 5);
    let b = aloi_network(13, 5);
    let q = a.peer(2).items.row(0).to_vec();
    let ra = a.range_query(0, &q, 0.15, None);
    let rb = b.range_query(0, &q, 0.15, None);
    assert_eq!(ra.items, rb.items);
    assert_eq!(ra.stats, rb.stats);
    let ka = a.knn_query(1, &q, 7, KnnOptions::default());
    let kb = b.knn_query(1, &q, 7, KnnOptions::default());
    assert_eq!(ka.topk, kb.topk);
}
