//! Cluster observability, end to end over real loopback TCP: a client
//! query relayed member → head with a wire-level [`TraceCtx`] must
//! stitch the two nodes' independent telemetry streams into ONE
//! cross-process route tree, and the nodes' sliding-window stats must
//! reflect the traffic they served.

use hyperm::datagen::{generate_aloi_like, AloiConfig};
use hyperm::telemetry::{
    merge_streams, names, parse_jsonl, Event, EventClass, JsonValue, Recorder, RingHandle,
    SloReport, SloRule, TraceCtx, WindowSnapshot,
};
use hyperm::transport::{Client, NodeRuntime, Role, TcpEndpoint};
use hyperm::{Dataset, HypermConfig, HypermNetwork};
use std::time::Duration;

const DIM: usize = 16;
const LEVELS: usize = 3;
const SEED: u64 = 11;
const HEAD: u64 = 0;
const MEMBER: u64 = 1;
const TRACE_ID: u64 = 0xBEEF;

fn collection(slot: u64) -> Dataset {
    generate_aloi_like(&AloiConfig {
        classes: 2,
        views_per_class: 15,
        bins: DIM,
        view_jitter: 0.15,
        seed: SEED.wrapping_add(slot),
    })
    .data
}

/// Serve spans end a beat after the reply frame leaves; poll the ring
/// until the node's completed `serve` span is visible.
fn await_serve_end(ring: &RingHandle) -> Vec<Event> {
    for _ in 0..400 {
        let events = ring.events();
        if events
            .iter()
            .any(|e| e.class == EventClass::End && e.name == names::SERVE)
        {
            return events;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("serve span never completed");
}

#[test]
fn relayed_query_stitches_into_one_route_tree() {
    // Head: overlay network + runtime sharing one recorder, real TCP.
    let (head_rec, head_ring) = Recorder::ring(1 << 16);
    let data: Vec<Dataset> = (0..3).map(collection).collect();
    let cfg = HypermConfig::new(DIM)
        .with_levels(LEVELS)
        .with_clusters_per_peer(4)
        .with_seed(SEED)
        .with_parallel_query(false);
    let (net, _) = HypermNetwork::build_traced(data.clone(), cfg, head_rec.clone()).unwrap();
    let head_ep = TcpEndpoint::bind(HEAD, "127.0.0.1:0").unwrap();
    let head_addr = head_ep.local_addr();
    let mut head_rt =
        NodeRuntime::new(head_ep, Role::Head(Box::new(net))).with_recorder(head_rec.clone());
    let head_thread = std::thread::spawn(move || head_rt.serve_until_shutdown());

    // Member: joins over the wire, then relays with its own recorder.
    let member_ep = TcpEndpoint::bind(MEMBER, "127.0.0.1:0").unwrap();
    member_ep.connect(HEAD, head_addr).unwrap();
    let member_addr = member_ep.local_addr();
    let (member_rec, member_ring) = Recorder::ring(1 << 16);
    let mut member_rt = NodeRuntime::new(
        member_ep,
        Role::Member {
            head: HEAD,
            peer: None,
        },
    )
    .with_recorder(member_rec.clone());
    member_rt
        .join_network(&collection(100), Duration::from_secs(30))
        .expect("member joins");
    let member_thread = std::thread::spawn(move || member_rt.serve_until_shutdown());

    // Build + join noise stays out of the streams under study.
    let _ = head_ring.drain();
    let _ = member_ring.drain();

    // The relayed, traced query: client -> member -> head.
    let client_ep = TcpEndpoint::bind(99, "127.0.0.1:0").unwrap();
    client_ep.connect(MEMBER, member_addr).unwrap();
    let client = Client::new(client_ep, MEMBER).with_trace(TraceCtx {
        trace_id: TRACE_ID,
        parent_span: 0,
    });
    let q = data[0].row(0).to_vec();
    let (items, _) = client.query(&q, 0.2, None).expect("relayed query");
    assert!(!items.is_empty(), "stored row must match its own query");

    let head_events = await_serve_end(&head_ring);
    let member_events = await_serve_end(&member_ring);

    // Per-node stats scrapes: the member forwarded one op, the head
    // served it; both windows are live and SLO-clean.
    let member_stats = client.stats().expect("member stats");
    let member_snap = WindowSnapshot::from_json(&JsonValue::parse(&member_stats).unwrap()).unwrap();
    assert_eq!(member_snap.node, MEMBER);
    assert!(member_snap.ops >= 1, "member window must count the relay");
    let head_stop = TcpEndpoint::bind(98, "127.0.0.1:0").unwrap();
    head_stop.connect(HEAD, head_addr).unwrap();
    let head_client = Client::new(head_stop, HEAD);
    let head_stats = head_client.stats().expect("head stats");
    let head_snap = WindowSnapshot::from_json(&JsonValue::parse(&head_stats).unwrap()).unwrap();
    assert_eq!(head_snap.node, HEAD);
    assert!(head_snap.ops >= 1, "head window must count the served op");
    assert_eq!(head_snap.heat.len(), LEVELS);
    assert!(
        head_snap.heat.iter().all(|&h| h >= 1),
        "a range query floods every level: {:?}",
        head_snap.heat
    );
    let cluster = WindowSnapshot::merge(&[member_snap, head_snap]);
    let rules = SloRule::parse_list("failed_routes == 0, rejected == 0, ops >= 2").unwrap();
    let report = SloReport::evaluate(&rules, &cluster);
    assert!(
        report.ok(),
        "healthy cluster breaches SLO: {}",
        report.to_json()
    );

    client.shutdown().expect("member shutdown");
    head_client.shutdown().expect("head shutdown");
    head_thread.join().unwrap().expect("head serve loop");
    member_thread.join().unwrap().expect("member serve loop");

    // Round-trip both streams through the JSONL codec, then stitch.
    let to_jsonl = |events: &[Event]| -> String {
        events
            .iter()
            .map(|e| format!("{}\n", e.to_json_line()))
            .collect()
    };
    let head_parsed = parse_jsonl(&to_jsonl(&head_events)).expect("head JSONL parses");
    let member_parsed = parse_jsonl(&to_jsonl(&member_events)).expect("member JSONL parses");

    // The query serves stitch into one tree; the shutdown serves stay
    // separate roots (untraced frames), so look at the first root.
    let stitched = merge_streams(&[(HEAD, head_parsed), (MEMBER, member_parsed)]);
    let query_roots: Vec<_> = stitched
        .roots
        .iter()
        .map(|&r| &stitched.spans[r])
        .filter(|s| s.start.u64_field("ctx_trace").is_some())
        .collect();
    assert_eq!(
        query_roots.len(),
        1,
        "exactly ONE stitched tree for the traced query:\n{}",
        stitched.render()
    );
    let root = query_roots[0];
    assert_eq!(root.name, names::SERVE);
    assert_eq!(root.start.u64_field("node"), Some(MEMBER));
    assert_eq!(root.start.u64_field("ctx_trace"), Some(TRACE_ID));
    let head_serve = root
        .children
        .iter()
        .map(|&c| &stitched.spans[c])
        .find(|s| s.name == names::SERVE)
        .expect("head serve span nested under the member's serve span");
    assert_eq!(head_serve.start.u64_field("node"), Some(HEAD));
    assert_eq!(head_serve.start.u64_field("ctx_trace"), Some(TRACE_ID));
    assert!(
        head_serve
            .children
            .iter()
            .any(|&c| stitched.spans[c].name == names::QUERY),
        "overlay query span parents under the head's serve span:\n{}",
        stitched.render()
    );
}
