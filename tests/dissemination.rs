//! Integration tests for the dissemination claims (paper Section 5).

use hyperm::baseline::{insert_all_items, PerItemCanConfig};
use hyperm::datagen::{generate_markov, generate_skewed, MarkovConfig, SkewedConfig};
use hyperm::{Dataset, EnergyModel, HypermConfig, HypermNetwork};

fn markov_peers(nodes: usize, items: usize, dim: usize, seed: u64) -> Vec<Dataset> {
    let data = generate_markov(&MarkovConfig {
        count: nodes * items,
        dim,
        max_step_cap: 0.05,
        seed,
    });
    (0..nodes)
        .map(|p| {
            let ids: Vec<usize> = (p * items..(p + 1) * items).collect();
            data.select(&ids)
        })
        .collect()
}

#[test]
fn hyperm_beats_per_item_can_at_paper_ratios() {
    // 40 nodes × 500 items, 128-d, 10 clusters × 4 levels: the summary
    // ratio (500 items → 40 clusters) is what drives the paper's headline.
    let peers = markov_peers(40, 500, 128, 1);
    let cfg = HypermConfig::new(128)
        .with_levels(4)
        .with_clusters_per_peer(10)
        .with_seed(2);
    let (_, report) = HypermNetwork::build(peers.clone(), cfg).unwrap();
    let baseline = insert_all_items(&peers, &PerItemCanConfig::full_dim(40, 128, 2));

    let hyperm_hops_per_item = report.avg_hops_per_item();
    let can_hops_per_item = baseline.avg_hops_per_item();
    assert!(
        hyperm_hops_per_item < can_hops_per_item / 2.0,
        "Hyper-M {hyperm_hops_per_item} vs per-item CAN {can_hops_per_item}"
    );
    // Bytes on air: summaries are tiny compared to shipping every vector.
    assert!(report.insertion.bytes * 5 < baseline.totals.bytes);
    // Parallel makespan: far below the serial baseline's total.
    assert!(report.makespan_hops * 10 < baseline.totals.hops);
}

#[test]
fn energy_savings_follow_hop_savings() {
    let peers = markov_peers(20, 200, 64, 3);
    let cfg = HypermConfig::new(64)
        .with_levels(4)
        .with_clusters_per_peer(8)
        .with_seed(4);
    let (_, report) = HypermNetwork::build(peers.clone(), cfg).unwrap();
    let baseline = insert_all_items(&peers, &PerItemCanConfig::full_dim(20, 64, 4));
    let e = EnergyModel::bluetooth_class2();
    assert!(e.op_joules(report.insertion) < e.op_joules(baseline.totals) / 2.0);
}

#[test]
fn replication_overhead_shrinks_with_finer_clustering() {
    // Figure 8a as a regression test.
    let peers = markov_peers(30, 200, 64, 5);
    let hops_per_cluster = |k: usize, replicate: bool| {
        let cfg = HypermConfig::new(64)
            .with_levels(4)
            .with_clusters_per_peer(k)
            .with_seed(6)
            .with_replication(replicate);
        let (_, r) = HypermNetwork::build(peers.clone(), cfg).unwrap();
        r.insertion.hops as f64 / r.clusters_published as f64
    };
    let coarse_gap = hops_per_cluster(5, true) - hops_per_cluster(5, false);
    let fine_gap = hops_per_cluster(40, true) - hops_per_cluster(40, false);
    assert!(
        fine_gap < coarse_gap,
        "finer clustering should shrink the replication gap: {coarse_gap} -> {fine_gap}"
    );
}

#[test]
fn skewed_data_spreads_across_levels() {
    // Figure 9 as a regression test: the union of devices loaded across
    // the four overlays exceeds the devices loaded by the original space.
    let nodes = 50;
    let corpus = generate_skewed(&SkewedConfig {
        blobs: 3,
        count: 2_000,
        dim: 128,
        spread: 0.02,
        seed: 7,
    });
    let mut peers: Vec<Dataset> = (0..nodes).map(|_| Dataset::new(128)).collect();
    for (i, row) in corpus.data.rows().enumerate() {
        peers[i % nodes].push_row(row);
    }
    let baseline = insert_all_items(&peers, &PerItemCanConfig::full_dim(nodes, 128, 8));
    let original_used = baseline
        .overlay
        .stored_items_per_node()
        .iter()
        .filter(|&&x| x > 0)
        .count();

    let cfg = HypermConfig::new(128)
        .with_levels(4)
        .with_clusters_per_peer(8)
        .with_seed(9);
    let (net, _) = HypermNetwork::build(peers, cfg).unwrap();
    let mut combined = vec![0u64; nodes];
    for l in 0..net.levels() {
        for (c, o) in combined
            .iter_mut()
            .zip(net.overlay(l).stored_items_per_node())
        {
            *c += o;
        }
    }
    let hyperm_used = combined.iter().filter(|&&x| x > 0).count();
    assert!(
        hyperm_used > original_used,
        "wavelet levels should spread skewed load: {original_used} vs {hyperm_used} devices"
    );
}

#[test]
fn bootstrap_cost_reported_separately_from_insertion() {
    let peers = markov_peers(15, 50, 64, 10);
    let cfg = HypermConfig::new(64)
        .with_levels(3)
        .with_clusters_per_peer(5)
        .with_seed(11);
    let (_, report) = HypermNetwork::build(peers, cfg).unwrap();
    assert!(report.bootstrap.hops > 0, "joins route through the overlay");
    // The per-level reports sum to the total.
    let sum: u64 = report.per_level.iter().map(|s| s.hops).sum();
    assert_eq!(sum, report.insertion.hops);
}
