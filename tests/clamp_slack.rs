//! Regression: data outside the configured bounds must stay retrievable.
//!
//! `KeyMap::to_key` clamps out-of-bounds coordinates into `[0,1)`, but the
//! seed code converted radii with the plain affine scale, so a published
//! sphere around a *clamped* centroid no longer covered the raw affine
//! images of its items — the covering precondition behind the
//! no-false-dismissal argument (Theorem 4.1). The fix widens both the
//! published and the query-side key radius by the observed clamp slack
//! (exactly zero for in-bounds data), restoring the covering property; the
//! unit test `keymap::tests::widened_radius_restores_covering` pins the
//! geometric fact itself. These end-to-end tests are the behavioural
//! guard: out-of-bounds collections must remain fully retrievable through
//! every layer (clamping on both the publish and the query side is a
//! convex projection, hence non-expansive — a regression in either half of
//! that pairing, or in the widening, surfaces here as a lost item).

use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Peers whose data straddles the configured `[0,1]` bounds: half the
/// rows are shifted well above 1, so wavelet coefficients (and therefore
/// cluster centroids) land outside every subspace's configured range.
fn out_of_bounds_peers(seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..6)
        .map(|p| {
            let mut ds = Dataset::new(16);
            let mut row = [0.0f64; 16];
            for i in 0..30 {
                let shift = if (p + i) % 2 == 0 { 0.0 } else { 0.8 };
                for x in row.iter_mut() {
                    *x = shift + rng.gen::<f64>() * 0.7;
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect()
}

#[test]
fn out_of_bounds_items_are_still_found_by_range_queries() {
    for seed in [1u64, 2, 3] {
        let data = out_of_bounds_peers(seed);
        let cfg = HypermConfig::new(16)
            .with_levels(4)
            .with_clusters_per_peer(4)
            .with_seed(seed);
        assert_eq!(cfg.data_bounds, (0.0, 1.0), "bounds deliberately too tight");
        let (net, _) = HypermNetwork::build(data.clone(), cfg).unwrap();
        // Query exactly at out-of-bounds items: ε = 0 keeps precision
        // trivial, so any miss is a clamp-induced false dismissal.
        for (p, ds) in data.iter().enumerate() {
            for i in (1..ds.len()).step_by(7) {
                let q = ds.row(i).to_vec();
                if q.iter().all(|&x| (0.0..=1.0).contains(&x)) {
                    continue; // only interested in clamped queries
                }
                let got = net.range_query(0, &q, 0.0, None);
                assert!(
                    got.items.contains(&(p, i)),
                    "seed {seed}: lost out-of-bounds item ({p},{i})"
                );
            }
        }
    }
}

#[test]
fn out_of_bounds_centroid_found_with_positive_radius() {
    // A tiny dedicated network where one peer's whole collection sits far
    // outside the bounds — its centroids are clamped at publication time.
    let mut rng = StdRng::seed_from_u64(42);
    let peers: Vec<Dataset> = (0..4)
        .map(|p| {
            let base = if p == 3 { 1.3 } else { 0.2 };
            let mut ds = Dataset::new(16);
            let mut row = [0.0f64; 16];
            for _ in 0..20 {
                for x in row.iter_mut() {
                    *x = base + rng.gen::<f64>() * 0.2;
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect();
    let cfg = HypermConfig::new(16)
        .with_levels(3)
        .with_clusters_per_peer(3)
        .with_seed(42);
    let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();
    let q = peers[3].row(5).to_vec();
    let got = net.range_query(0, &q, 0.15, None);
    assert!(
        got.items.contains(&(3, 5)),
        "peer 3's out-of-bounds cluster was dismissed"
    );
    // And the candidate ranking must include the holder at full budget.
    assert!(got.ranked.iter().any(|ps| ps.peer == 3));
}
