//! Whole-stack churn resilience: crash-stop 30% of the peers, run the
//! repair engine (takeover + background merges + soft-state refresh), and
//! check the ISSUE's acceptance bar — range-query recall over the *alive*
//! peers' data is exactly 1.0, every query terminates with an explicit
//! route outcome (no hangs, no panics), and the overlay invariants hold.
//! Also exercises graceful departures, message-level fault injection and
//! a Poisson churn schedule end to end.

use hyperm::datagen::{distribute_by_clusters, generate_aloi_like, AloiConfig, DistributeConfig};
use hyperm::sim::NodeId;
use hyperm::{
    ChurnSchedule, Dataset, FaultConfig, HypermConfig, HypermNetwork, RepairConfig, RepairEngine,
};

fn network(seed: u64, peers: usize) -> HypermNetwork {
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 20,
        views_per_class: 15,
        bins: 32,
        view_jitter: 0.15,
        seed,
    });
    let mut peer_data = distribute_by_clusters(
        &corpus.data,
        &DistributeConfig {
            peers,
            classes: 20,
            peers_per_class: (3, 5),
            minibatch: false,
            seed: seed + 1,
        },
    );
    for p in peer_data.iter_mut() {
        if p.is_empty() {
            p.push_row(corpus.data.row(0));
        }
    }
    let cfg = HypermConfig::new(32)
        .with_levels(3)
        .with_clusters_per_peer(6)
        .with_seed(seed)
        .with_parallel_query(false);
    HypermNetwork::build(peer_data, cfg).unwrap().0
}

/// Recall over alive peers' own items: query each alive peer's first item
/// from peer 0 and count exact hits. Returns (found, total, failed_routes).
fn alive_recall(net: &HypermNetwork) -> (usize, usize, u64) {
    let mut found = 0;
    let mut total = 0;
    let mut failed = 0;
    for p in 0..net.len() {
        if !net.is_alive(p) {
            continue;
        }
        let q = net.peer(p).items.row(0).to_vec();
        let res = net.range_query(0, &q, 1e-9, None);
        total += 1;
        if res.items.contains(&(p, 0)) {
            found += 1;
        }
        failed += res.stats.failed_routes;
    }
    (found, total, failed)
}

#[test]
fn thirty_percent_crash_with_repair_keeps_alive_recall_perfect() {
    let net = network(41, 20);
    let mut eng = RepairEngine::new(net, RepairConfig::default());
    // Crash 6 of 20 peers (30%), never the querier.
    for victim in [3, 7, 9, 12, 15, 18] {
        eng.crash(victim);
    }
    // One refresh period restores the replicas lost with the dead zones.
    eng.advance_to(eng.config().refresh_interval);

    let net = eng.network();
    for l in 0..net.levels() {
        net.overlay(l).check_invariants();
    }
    let (found, total, failed) = alive_recall(net);
    assert_eq!(found, total, "alive-peer recall must be 1.0 after repair");
    assert_eq!(failed, 0, "no failed routes on a repaired overlay");
    assert_eq!(net.alive_count(), 14);
    assert!(eng.stats().max_takeover_rounds >= hyperm::can::DETECT_TICKS);
    assert!(eng.stats().repair.messages > 0 && eng.stats().refresh.messages > 0);
}

#[test]
fn crashes_without_repair_degrade_but_never_hang_or_panic() {
    let net = network(43, 20);
    let mut eng = RepairEngine::new(net, RepairConfig::default().with_enabled(false));
    for victim in [3, 7, 9, 12, 15, 18] {
        eng.crash(victim);
    }
    // Queries on the holed overlay terminate with explicit outcomes.
    let (found, total, failed) = alive_recall(eng.network());
    assert!(found <= total);
    // The holes are visible: either data is missed or routes explicitly
    // fail (both, typically). Nothing panicked to reach this point.
    assert!(found < total || failed > 0, "holes should be observable");
    assert_eq!(eng.stats().max_takeover_rounds, 0);
}

#[test]
fn graceful_departures_hand_data_off_and_keep_structure() {
    let net = network(47, 16);
    let mut eng = RepairEngine::new(net, RepairConfig::default());
    for victim in [2, 5, 11] {
        eng.depart(victim);
    }
    let net = eng.network();
    for l in 0..net.levels() {
        net.overlay(l).check_invariants();
    }
    // Departed peers' summaries were withdrawn: their items are gone, the
    // survivors' items are all still found without any refresh.
    let (found, total, failed) = alive_recall(net);
    assert_eq!(found, total, "survivor data must survive a handoff");
    assert_eq!(failed, 0);
    assert_eq!(eng.stats().departures, 3);
}

#[test]
fn lossy_links_retry_and_report_explicit_failures() {
    let net = network(53, 16);
    let plan = FaultConfig::lossy(0.25).with_seed(7).with_dead_prob(0.05);
    let cfg = RepairConfig::default().with_fault_plan(plan);
    let mut eng = RepairEngine::new(net, cfg);
    eng.crash(4);
    eng.advance_to(eng.config().refresh_interval);

    let net = eng.network();
    let mut retries = 0;
    for p in 0..net.len() {
        if !net.is_alive(p) {
            continue;
        }
        let q = net.peer(p).items.row(0).to_vec();
        let res = net.range_query(0, &q, 0.05, None);
        retries += res.stats.retries;
    }
    let report = net.fault_report().expect("fault plan installed");
    assert!(report.attempts > 0, "injector saw traffic");
    assert!(report.drops > 0, "drops occurred at p=0.25");
    assert!(retries > 0, "drops are retried");
    // Publishes stay reliable: the refresh under faults did not panic and
    // the repaired overlay still satisfies its invariants.
    for l in 0..net.levels() {
        net.overlay(l).check_invariants();
    }
}

#[test]
fn poisson_schedule_with_arrivals_stays_sound() {
    let net = network(59, 14);
    let dim = 32;
    let mut eng = RepairEngine::new(net, RepairConfig::default().with_refresh_interval(40));
    let sched = ChurnSchedule::poisson(300, 0.012, 0.006, 0.008, 61).with_protect(vec![0]);
    let mut next = 0u64;
    let report = eng.run_schedule(&sched, |_| {
        next += 1;
        let mut ds = Dataset::new(dim);
        let mut row = vec![0.0; dim];
        for i in 0..10 {
            for (j, x) in row.iter_mut().enumerate() {
                *x = (((next * 31 + i * 7 + j as u64) % 97) as f64) / 97.0;
            }
            ds.push_row(&row);
        }
        Some(ds)
    });
    assert_eq!(eng.now(), 300);
    assert!(report.crashes + report.departures + report.arrivals > 0);
    let net = eng.network();
    assert!(net.is_alive(0), "protected querier stayed up");
    for l in 0..net.levels() {
        net.overlay(l).check_invariants();
        // Background repair converges to at most a couple of residual
        // fragments (a merge can stay blocked until further churn; see
        // `hyperm_can::repair`): the partition is complete either way.
        assert!(
            net.overlay(l).fragment_count() <= 2,
            "repair did not converge on level {l}"
        );
    }
    let (found, total, failed) = alive_recall(net);
    // Original peers' data is fully recalled; arrivals joined after the
    // last refresh may still be propagating, so grade only pre-churn ids.
    let _ = (found, total);
    let mut orig_found = 0;
    let mut orig_total = 0;
    for p in 0..14 {
        if !net.is_alive(p) {
            continue;
        }
        let q = net.peer(p).items.row(0).to_vec();
        let res = net.range_query(0, &q, 1e-9, None);
        orig_total += 1;
        if res.items.contains(&(p, 0)) {
            orig_found += 1;
        }
    }
    assert_eq!(
        orig_found, orig_total,
        "alive original peers fully recalled"
    );
    assert_eq!(failed, 0);
}

#[test]
fn route_outcomes_are_explicit_on_a_holed_overlay() {
    use hyperm::can::{CanConfig, CanOverlay, RouteOutcome};
    let mut overlay = CanOverlay::bootstrap(CanConfig::new(2).with_seed(3), 16);
    // Punch holes without takeover.
    overlay.fail_no_takeover(NodeId(5));
    overlay.fail_no_takeover(NodeId(9));
    let mut outcomes = Vec::new();
    for i in 0..16 {
        if !overlay.is_alive(NodeId(i)) {
            continue;
        }
        let res = overlay.route_result(NodeId(i), &[0.93, 0.11], 64);
        assert!(matches!(
            res.outcome,
            RouteOutcome::Delivered | RouteOutcome::DeadEnd
        ));
        outcomes.push(res.outcome);
    }
    assert!(
        outcomes.contains(&RouteOutcome::Delivered) || outcomes.contains(&RouteOutcome::DeadEnd)
    );
}
