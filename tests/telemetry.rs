//! Telemetry integration tests: the tracing layer must be deterministic
//! under equal seeds and provably free when disabled — the simulated
//! OpStats accounting and query results must be bit-identical whether
//! tracing is off, on, or the recorder was never installed.

use hyperm::datagen::{generate_aloi_like, AloiConfig};
use hyperm::telemetry::{Event, Recorder, RingHandle, Trace};
use hyperm::{Dataset, HypermConfig, HypermNetwork, KnnOptions, OpKind, QueryBudget};

const DIM: usize = 32;
const LEVELS: usize = 4;

fn peers(seed: u64) -> Vec<Dataset> {
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 10,
        views_per_class: 18,
        bins: DIM,
        view_jitter: 0.15,
        seed,
    });
    let per = corpus.data.len() / 12;
    (0..12)
        .map(|p| {
            let mut ds = Dataset::new(DIM);
            for i in p * per..(p + 1) * per {
                ds.push_row(corpus.data.row(i));
            }
            ds
        })
        .collect()
}

fn config(seed: u64) -> HypermConfig {
    HypermConfig::new(DIM)
        .with_levels(LEVELS)
        .with_clusters_per_peer(4)
        .with_seed(seed)
        .with_parallel_query(false) // serial => deterministic event order
}

/// Build a traced network and run one of each query kind, returning the
/// captured event stream.
fn traced_run(seed: u64) -> Vec<Event> {
    let (rec, ring) = Recorder::ring(1 << 16);
    let (net, _) = HypermNetwork::build_traced(peers(seed), config(seed), rec).unwrap();
    let q = peers(seed)[3].row(0).to_vec();
    net.range_query(0, &q, 0.2, None);
    net.knn_query(1, &q, 4, KnnOptions::default());
    net.point_query(2, &q);
    assert_eq!(ring.dropped(), 0, "ring must be large enough for the run");
    ring.events()
}

#[test]
fn same_seed_gives_identical_event_streams() {
    let a = traced_run(7);
    let b = traced_run(7);
    assert!(!a.is_empty());
    assert_eq!(a, b, "equal seeds must produce equal event streams");
}

#[test]
fn tracing_never_perturbs_simulated_results() {
    let seed = 11;
    // Untouched network: telemetry crate never engaged.
    let (plain, plain_report) = HypermNetwork::build(peers(seed), config(seed)).unwrap();
    // Disabled recorder installed explicitly.
    let (off, off_report) =
        HypermNetwork::build_traced(peers(seed), config(seed), Recorder::disabled()).unwrap();
    // Tracing fully on.
    let (rec, _ring) = Recorder::ring(1 << 16);
    let (on, on_report) = HypermNetwork::build_traced(peers(seed), config(seed), rec).unwrap();

    assert_eq!(plain_report, off_report);
    assert_eq!(plain_report, on_report);

    let q = peers(seed)[5].row(2).to_vec();
    let (pr, or, tr) = (
        plain.range_query(0, &q, 0.25, None),
        off.range_query(0, &q, 0.25, None),
        on.range_query(0, &q, 0.25, None),
    );
    assert_eq!(pr.items, or.items);
    assert_eq!(pr.items, tr.items);
    assert_eq!(pr.stats, or.stats, "disabled recorder changed OpStats");
    assert_eq!(pr.stats, tr.stats, "enabled recorder changed OpStats");

    let (pk, ok, tk) = (
        plain.knn_query(1, &q, 5, KnnOptions::default()),
        off.knn_query(1, &q, 5, KnnOptions::default()),
        on.knn_query(1, &q, 5, KnnOptions::default()),
    );
    assert_eq!(pk.topk, ok.topk);
    assert_eq!(pk.topk, tk.topk);
    assert_eq!(pk.stats, ok.stats);
    assert_eq!(pk.stats, tk.stats);

    let (pp, op, tp) = (
        plain.point_query(2, &q),
        off.point_query(2, &q),
        on.point_query(2, &q),
    );
    assert_eq!(pp.matches, op.matches);
    assert_eq!(pp.matches, tp.matches);
    assert_eq!(pp.stats, op.stats);
    assert_eq!(pp.stats, tp.stats);
}

#[test]
fn budgeted_queries_match_legacy_bit_for_bit_without_faults() {
    // The failure-tolerance budget must be provably free when nothing
    // fails: with every peer alive, no injector and no partition, the
    // budgeted entry points return the same results and burn the same
    // OpStats as the legacy fetch loops, and never set `truncated`.
    let seed = 23;
    let (net, _) = HypermNetwork::build(peers(seed), config(seed)).unwrap();
    let q = peers(seed)[4].row(1).to_vec();
    let b = QueryBudget::default();

    let r1 = net.range_query(0, &q, 0.25, Some(5));
    let r2 = net.range_query_budgeted(0, &q, 0.25, Some(5), b);
    assert_eq!(r1.items, r2.items);
    assert_eq!(r1.stats, r2.stats, "budget changed range OpStats");
    assert_eq!(r1.peers_contacted, r2.peers_contacted);
    assert!(!r2.truncated);

    let k1 = net.knn_query(1, &q, 4, KnnOptions::default());
    let k2 = net.knn_query_budgeted(1, &q, 4, KnnOptions::default(), b);
    assert_eq!(k1.topk, k2.topk);
    assert_eq!(k1.retrieved, k2.retrieved);
    assert_eq!(k1.stats, k2.stats, "budget changed knn OpStats");
    assert_eq!(k1.peers_contacted, k2.peers_contacted);
    assert!(!k2.truncated);

    let p1 = net.point_query(2, &q);
    let p2 = net.point_query_budgeted(2, &q, b);
    assert_eq!(p1.matches, p2.matches);
    assert_eq!(p1.stats, p2.stats, "budget changed point OpStats");
    assert!(!p2.truncated);
}

#[test]
fn budgeted_event_stream_identical_without_faults() {
    // Same assertion one layer down: the traced event stream of a
    // budgeted query is byte-identical to the legacy one when no fault
    // can fire — no fetch_timeout/fetch_fallback events, same spans,
    // same field values, same order.
    let seed = 29;
    let run = |budgeted: bool| -> Vec<Event> {
        let (rec, ring) = Recorder::ring(1 << 16);
        let (net, _) = HypermNetwork::build_traced(peers(seed), config(seed), rec).unwrap();
        ring.drain(); // discard build-phase events
        let q = peers(seed)[3].row(0).to_vec();
        if budgeted {
            net.range_query_budgeted(0, &q, 0.2, None, QueryBudget::default());
            net.point_query_budgeted(1, &q, QueryBudget::default());
        } else {
            net.range_query(0, &q, 0.2, None);
            net.point_query(1, &q);
        }
        ring.events()
    };
    let legacy = run(false);
    let budgeted = run(true);
    assert!(!legacy.is_empty());
    assert_eq!(legacy, budgeted, "budgeted trace diverged with faults off");
}

#[test]
fn reliable_refresh_reports_full_delivery_without_faults() {
    // The report-returning refresh is the same code path the legacy
    // wrapper drives; with no faults every sphere must land completely
    // (delivered == published clusters, nothing deferred or abandoned)
    // and the wrapper must return exactly the report's stats.
    let seed = 31;
    let (mut a, _) = HypermNetwork::build(peers(seed), config(seed)).unwrap();
    let (mut b, _) = HypermNetwork::build(peers(seed), config(seed)).unwrap();
    let peer = 3;
    let legacy = a.refresh_peer_summaries(peer);
    let report = b.refresh_peer_summaries_report(peer);
    assert_eq!(legacy, report.stats, "wrapper and report paths diverged");
    assert!(
        report.deferred.is_empty(),
        "nothing can defer without faults"
    );
    assert!(report.abandoned.is_empty());
    let clusters: u64 = (0..b.levels())
        .map(|l| b.peer(peer).summaries[l].len() as u64)
        .sum();
    assert_eq!(report.delivered, clusters, "every sphere must land fully");

    // And the refreshed networks still answer identically.
    let q = peers(seed)[peer].row(0).to_vec();
    let (ra, rb) = (
        a.range_query(0, &q, 0.2, None),
        b.range_query(0, &q, 0.2, None),
    );
    assert_eq!(ra.items, rb.items);
    assert_eq!(ra.stats, rb.stats);
}

#[test]
fn metrics_cells_are_keyed_by_op_kind_and_level() {
    let seed = 13;
    let (rec, _ring) = Recorder::ring(1 << 16);
    let (net, _) = HypermNetwork::build_traced(peers(seed), config(seed), rec.clone()).unwrap();
    let q = peers(seed)[0].row(1).to_vec();
    net.range_query(0, &q, 0.2, None);
    net.knn_query(0, &q, 3, KnnOptions::default());

    let snap = rec.metrics().unwrap().snapshot();
    for kind in [OpKind::Publish, OpKind::RangeQuery, OpKind::KnnQuery] {
        let whole = snap.cell(kind, None).unwrap_or_else(|| {
            panic!("missing whole-op cell for {}", kind.name());
        });
        assert!(whole.ops > 0);
        for l in 0..LEVELS {
            let cell = snap.cell(kind, Some(l)).unwrap_or_else(|| {
                panic!("missing cell ({}, level {l})", kind.name());
            });
            assert!(cell.ops > 0);
            assert_eq!(cell.hops.count, cell.ops);
        }
    }
    // Query latency is recorded on the whole-op row.
    assert!(
        snap.cell(OpKind::RangeQuery, None)
            .unwrap()
            .latency_us
            .count
            > 0
    );
    assert!(
        snap.cell(OpKind::PointQuery, None).is_none(),
        "no point query ran"
    );
    let json = snap.to_json();
    assert!(json.contains("\"op\": \"range_query\""));
    assert!(json.contains("\"level\": null"));
}

#[test]
fn route_tree_covers_every_level() {
    let seed = 17;
    let (rec, ring) = Recorder::ring(1 << 16);
    let (net, _) = HypermNetwork::build_traced(peers(seed), config(seed), rec).unwrap();
    ring.drain(); // discard build-phase events
    let q = peers(seed)[4].row(3).to_vec();
    let res = net.range_query(0, &q, 0.25, None);

    let trace = Trace::from_events(&ring.events());
    assert!(
        trace.orphans.is_empty(),
        "every event must parent somewhere"
    );
    let queries = trace.spans_named("query");
    assert_eq!(queries.len(), 1);
    let lookups = trace.spans_named("overlay_lookup");
    assert_eq!(lookups.len(), LEVELS, "one lookup span per wavelet level");
    let mut levels: Vec<_> = lookups.iter().map(|s| s.level.unwrap()).collect();
    levels.sort_unstable();
    assert_eq!(levels, (0..LEVELS as u8).collect::<Vec<_>>());
    // Each lookup hangs off the query span.
    for l in &lookups {
        assert_eq!(l.start.parent, queries[0].id);
    }
    // The phase breakdown folds the whole-op cost back out of the tree.
    let totals = trace.phase_totals();
    let qt = totals.iter().find(|p| p.name == "query").unwrap();
    assert_eq!(qt.fields["hops"], res.stats.hops as f64);
    assert_eq!(qt.fields["messages"], res.stats.messages as f64);
    assert_eq!(qt.fields["bytes"], res.stats.bytes as f64);
}

#[test]
fn ring_handle_reusable_across_phases() {
    // The trace_query bin drains build events then captures one query;
    // the drain boundary must be clean (no query events before, none
    // lost after).
    let seed = 19;
    let ring = RingHandle::new(1 << 16);
    let rec = Recorder::with_sink(ring.sink());
    let (net, _) = HypermNetwork::build_traced(peers(seed), config(seed), rec).unwrap();
    let build = ring.drain();
    assert!(build.iter().any(|e| e.name == "publish"));
    assert!(build.iter().all(|e| e.name != "query"));
    let q = peers(seed)[2].row(0).to_vec();
    net.range_query(0, &q, 0.2, None);
    let query = ring.events();
    assert!(query.iter().any(|e| e.name == "query"));
    assert!(query.iter().all(|e| e.name != "publish"));
}
