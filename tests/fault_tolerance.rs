//! End-to-end data-plane fault tolerance: the ISSUE's acceptance bar.
//!
//! * Crashing the top-scored peer mid-query still yields range recall 1.0
//!   over the alive peers via fetch fallback (the Theorem 4.1 covering is
//!   preserved — the contact window slides, it does not shrink).
//! * Under 30% hop drop with reliable publish and fetch fallback enabled,
//!   alive-peer range recall is exactly 1.0.
//! * After a partition heals, recall returns to 1.0 within a bounded
//!   number of repair rounds (the heal round itself reconciles).
//! * A phase-2 deadline degrades gracefully to a partial answer with the
//!   `truncated` flag set, instead of hanging the critical path.

use hyperm::datagen::{distribute_by_clusters, generate_aloi_like, AloiConfig, DistributeConfig};
use hyperm::telemetry::Recorder;
use hyperm::{
    Backoff, FaultConfig, HypermConfig, HypermNetwork, PartitionPlan, QueryBudget, RepairConfig,
    RepairEngine,
};

fn network(seed: u64, peers: usize) -> HypermNetwork {
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 20,
        views_per_class: 15,
        bins: 32,
        view_jitter: 0.15,
        seed,
    });
    let mut peer_data = distribute_by_clusters(
        &corpus.data,
        &DistributeConfig {
            peers,
            classes: 20,
            peers_per_class: (3, 5),
            minibatch: false,
            seed: seed + 1,
        },
    );
    for p in peer_data.iter_mut() {
        if p.is_empty() {
            p.push_row(corpus.data.row(0));
        }
    }
    let cfg = HypermConfig::new(32)
        .with_levels(3)
        .with_clusters_per_peer(6)
        .with_seed(seed)
        .with_parallel_query(false);
    HypermNetwork::build(peer_data, cfg).unwrap().0
}

/// `eps`-ball truth over the alive peers: every `(peer, item)` an exact
/// scan finds within `eps` of `q`.
fn alive_truth(net: &HypermNetwork, q: &[f64], eps: f64) -> Vec<(usize, usize)> {
    (0..net.len())
        .filter(|&p| net.is_alive(p))
        .flat_map(|p| {
            net.peer(p)
                .local_range(q, eps)
                .into_iter()
                .map(move |i| (p, i))
        })
        .collect()
}

/// Distance to the `n`-th nearest item over the whole corpus — a query
/// radius guaranteed to have a multi-peer truth set.
fn nth_dist(net: &HypermNetwork, q: &[f64], n: usize) -> f64 {
    let mut d: Vec<f64> = (0..net.len())
        .flat_map(|p| {
            net.peer(p)
                .items
                .rows()
                .map(|row| {
                    row.iter()
                        .zip(q)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .collect::<Vec<_>>()
        })
        .collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d[n.min(d.len() - 1)]
}

/// Crashing the top-scored peer mid-query: the no-fallback window loses
/// whatever the peer it burns on the corpse would have fetched, the
/// fallback window slides and keeps alive-peer recall at exactly 1.0.
#[test]
fn fallback_restores_recall_when_top_scored_peer_crashes() {
    let net = network(67, 16);
    let mut demonstrated = false;
    for src in 1..net.len() {
        let q = net.peer(src).items.row(0).to_vec();
        let eps = nth_dist(&net, &q, 12);
        let probe = net.range_query(0, &q, eps, None);
        let victim = probe.ranked[0].peer;
        if victim == 0 {
            continue; // never crash the querier
        }
        let mut crashed = net.clone();
        crashed.fail_peer(victim);
        let truth = alive_truth(&crashed, &q, eps);
        if truth.is_empty() {
            continue;
        }
        // Window sized so the first `w` *alive* ranked peers include every
        // truth holder: fallback must then achieve recall 1.0, while the
        // rigid window burns its first slot on the corpse and comes up
        // one holder short.
        let ranked_alive: Vec<usize> = probe
            .ranked
            .iter()
            .map(|s| s.peer)
            .filter(|&p| p != victim)
            .collect();
        let deepest = truth
            .iter()
            .map(|&(p, _)| ranked_alive.iter().position(|&r| r == p).unwrap())
            .max()
            .unwrap();
        let w = deepest + 1;
        if w >= probe.ranked.len() {
            continue; // no spare candidate outside the window — try another query
        }

        let fb = crashed.range_query_budgeted(0, &q, eps, Some(w), QueryBudget::default());
        for t in &truth {
            assert!(
                fb.items.contains(t),
                "fallback missed {t:?} (victim {victim}, window {w})"
            );
        }
        assert!(!fb.truncated);

        let rigid = crashed.range_query_budgeted(
            0,
            &q,
            eps,
            Some(w),
            QueryBudget::default().with_fallback(false),
        );
        assert!(
            truth.iter().any(|t| !rigid.items.contains(t)),
            "rigid window should lose the deepest holder (victim {victim}, window {w})"
        );
        demonstrated = true;
        break;
    }
    assert!(demonstrated, "no query exercised the fallback window");
}

/// The acceptance bar: 30% hop drop, reliable (ack/retransmit + backoff)
/// publish, fetch fallback on — alive-peer range recall is exactly 1.0.
#[test]
fn thirty_percent_drop_with_reliable_publish_keeps_alive_recall() {
    let net = network(71, 16);
    // A retransmit budget of 8 makes residual per-hop loss 0.3^9 ~ 2e-5:
    // the ack/retransmit loop, not luck, is what delivers every sphere
    // and every query route despite 30% of raw hops dropping.
    let plan = FaultConfig::lossy(0.3)
        .with_seed(17)
        .with_max_retries(8)
        .with_backoff(Backoff::exponential(1, 8).with_jitter(1, 23));
    let cfg = RepairConfig::default()
        .with_refresh_interval(40)
        .with_fault_plan(plan);
    let mut eng = RepairEngine::new(net, cfg);
    eng.crash(5);
    eng.crash(11);
    // Two refresh periods: lossy refreshes defer the spheres whose routes
    // exhausted their retransmit budget (failure ~drop^(1+max_retries) per
    // publish, so a full round of ~250 publishes defers a few). Under Min
    // score aggregation a single undelivered sphere hides its peer from
    // ranking, so recall 1.0 is reached exactly when the deferred queue
    // drains — drive bounded retry rounds and assert they converge.
    eng.advance_to(80);
    let mut rounds = 0;
    while !eng.deferred_publishes().is_empty() && rounds < 10 {
        eng.retry_deferred();
        rounds += 1;
    }
    assert!(
        eng.deferred_publishes().is_empty(),
        "deferred publishes must drain within a bounded number of retry rounds"
    );

    let net = eng.network();
    let budget = QueryBudget::default();
    for p in 0..net.len() {
        if !net.is_alive(p) {
            continue;
        }
        let q = net.peer(p).items.row(0).to_vec();
        let res = net.range_query_budgeted(0, &q, 1e-9, None, budget);
        assert!(
            res.items.contains(&(p, 0)),
            "alive peer {p}'s item lost under 30% drop"
        );
        assert!(!res.truncated);
    }
    let report = net.fault_report().expect("fault plan installed");
    assert!(report.drops > 0, "the injector must have been exercised");
    assert!(
        eng.stats().publishes_deferred > 0 || report.exhausted == 0,
        "lossy publishes either all landed within their retry budget or were deferred"
    );
}

/// Partition injection and healing: mid-window the far component is dark
/// (timeouts, no items), and the heal round's reconciliation (background
/// merges + deferred retries + full re-publication) restores alive-peer
/// recall to 1.0 within one bounded round.
#[test]
fn partition_heals_to_full_recall_within_bounded_rounds() {
    let net = network(73, 14);
    let n = net.len();
    let plan = PartitionPlan::halves(n, 30, 100);
    let cfg = RepairConfig::default()
        .with_refresh_interval(25)
        .with_partition_plan(plan);
    let mut eng = RepairEngine::new(net, cfg);

    // Mid-window: the split is live, cross-component peers are dark.
    eng.advance_to(60);
    let net = eng.network();
    assert!(net.partition_active());
    assert!(!net.peers_connected(0, n - 1));
    let far = n - 1; // other component under the halves plan
    let q = net.peer(far).items.row(0).to_vec();
    let res = net.range_query_budgeted(0, &q, 1e-9, None, QueryBudget::default());
    assert!(
        !res.items.contains(&(far, 0)),
        "severed peer must be unreachable mid-partition"
    );

    // One tick past plan.end the heal has fired; reconciliation runs in
    // the same round, so recall is already 1.0 — a hard bound of one
    // repair round after the split ends.
    eng.advance_to(101);
    let net = eng.network();
    assert!(!net.partition_active());
    assert!(
        eng.deferred_publishes().is_empty(),
        "heal-round retries must drain the deferred queue"
    );
    for p in 0..net.len() {
        if !net.is_alive(p) {
            continue;
        }
        let q = net.peer(p).items.row(0).to_vec();
        let res = net.range_query(0, &q, 1e-9, None);
        assert!(
            res.items.contains(&(p, 0)),
            "peer {p}'s item not recalled after heal"
        );
    }
}

/// A phase-2 deadline degrades gracefully: partial results, `truncated`
/// set, and strictly fewer peers contacted than the unbudgeted query.
#[test]
fn deadline_budget_truncates_gracefully() {
    let net = network(79, 14);
    let q = net.peer(3).items.row(0).to_vec();
    let eps = nth_dist(&net, &q, 25);
    let full = net.range_query(0, &q, eps, None);
    assert!(full.peers_contacted > 1, "need a multi-peer truth set");

    let tight = QueryBudget::default().with_deadline(1);
    let res = net.range_query_budgeted(0, &q, eps, None, tight);
    assert!(res.truncated, "deadline of 1 hop must truncate phase 2");
    assert!(res.peers_contacted < full.peers_contacted);
    assert!(res.items.iter().all(|i| full.items.contains(i)));

    // Point probes obey the same deadline contract.
    let pres = net.point_query_budgeted(0, &q, tight);
    assert!(pres.matches.len() <= 1);

    // A roomy deadline changes nothing.
    let roomy = QueryBudget::default().with_deadline(1_000_000);
    let res = net.range_query_budgeted(0, &q, eps, None, roomy);
    assert!(!res.truncated);
    assert_eq!(res.items, full.items);
    assert_eq!(res.stats, full.stats);
}

/// The fallback events surface in telemetry: a crashed top peer produces
/// `fetch_timeout` (and, with a window, `fetch_fallback`) instants plus
/// registry counters.
#[test]
fn fallback_events_and_counters_are_recorded() {
    let seed = 83;
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 20,
        views_per_class: 15,
        bins: 32,
        view_jitter: 0.15,
        seed,
    });
    let mut peer_data = distribute_by_clusters(
        &corpus.data,
        &DistributeConfig {
            peers: 14,
            classes: 20,
            peers_per_class: (3, 5),
            minibatch: false,
            seed: seed + 1,
        },
    );
    for p in peer_data.iter_mut() {
        if p.is_empty() {
            p.push_row(corpus.data.row(0));
        }
    }
    let cfg = HypermConfig::new(32)
        .with_levels(3)
        .with_clusters_per_peer(6)
        .with_seed(seed)
        .with_parallel_query(false);
    let (rec, ring) = Recorder::ring(1 << 16);
    let (mut net, _) = HypermNetwork::build_traced(peer_data, cfg, rec.clone()).unwrap();

    let q = net.peer(5).items.row(0).to_vec();
    let eps = nth_dist(&net, &q, 12);
    let probe = net.range_query(0, &q, eps, None);
    let victim = probe.ranked[0].peer;
    assert_ne!(victim, 0, "seed chosen so the querier is not top-ranked");
    net.fail_peer(victim);
    ring.drain();

    let w = probe.ranked.len() - 1; // leave one candidate to slide onto
    net.range_query_budgeted(0, &q, eps, Some(w), QueryBudget::default());
    let events = ring.events();
    let timeouts = events.iter().filter(|e| e.name == "fetch_timeout").count();
    let fallbacks = events.iter().filter(|e| e.name == "fetch_fallback").count();
    assert!(timeouts >= 1, "dead peer must emit fetch_timeout");
    assert!(fallbacks >= 1, "window must slide onto a fallback peer");
    let m = rec.metrics().expect("recorder enabled");
    assert!(m.counter("fetch_timeout") >= 1);
    assert!(m.counter("fetch_fallback") >= 1);
}
