//! The parallel query path must be **bit-identical** to the serial path.
//!
//! Per-level overlay lookups are independent and their stats are u64
//! counters merged in level order, so running the levels on scoped threads
//! must change nothing observable: same peers ranked, scores equal to
//! 1e-12 (they are in fact computed by the same code on the same inputs),
//! same items, same `OpStats`. This is the acceptance gate for the
//! concurrent query engine — any divergence is a bug, not noise.

use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork, KnnOptions, QueryEngine, ScorePolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn peers_data(n_peers: usize, items: usize, dim: usize, seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_peers)
        .map(|_| {
            let centre: f64 = rng.gen::<f64>() * 0.6;
            let mut ds = Dataset::new(dim);
            let mut row = vec![0.0; dim];
            for _ in 0..items {
                for x in row.iter_mut() {
                    *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect()
}

fn build(levels: usize, policy: ScorePolicy, seed: u64) -> (HypermNetwork, HypermNetwork) {
    let data = peers_data(8, 20, 16, seed);
    let cfg = HypermConfig::new(16)
        .with_levels(levels)
        .with_clusters_per_peer(4)
        .with_score_policy(policy)
        .with_seed(seed)
        .with_parallel_query(false);
    let (serial, _) = HypermNetwork::build(data, cfg).unwrap();
    // Identical network, parallel flag flipped: same overlays, same stores.
    let mut parallel = serial.clone();
    parallel.config.parallel_query = true;
    (serial, parallel)
}

fn queries(net: &HypermNetwork, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
    (0..6)
        .map(|_| {
            let p = rng.gen_range(0..net.len());
            let i = rng.gen_range(0..net.peer(p).len());
            net.peer(p).items.row(i).to_vec()
        })
        .collect()
}

#[test]
fn range_query_parallel_is_bit_identical() {
    for levels in 1..=4 {
        for policy in [ScorePolicy::Min, ScorePolicy::Avg, ScorePolicy::Max] {
            for seed in [1u64, 2, 3] {
                let (serial, parallel) = build(levels, policy, seed);
                for q in queries(&serial, seed) {
                    for budget in [None, Some(3)] {
                        let a = serial.range_query(0, &q, 0.3, budget);
                        let b = parallel.range_query(0, &q, 0.3, budget);
                        assert_eq!(a.items, b.items, "levels={levels} {policy:?} {seed}");
                        assert_eq!(a.stats, b.stats, "levels={levels} {policy:?} {seed}");
                        assert_eq!(a.peers_contacted, b.peers_contacted);
                        assert_eq!(a.ranked.len(), b.ranked.len());
                        for (x, y) in a.ranked.iter().zip(&b.ranked) {
                            assert_eq!(x.peer, y.peer);
                            assert!(
                                (x.score - y.score).abs() <= 1e-12,
                                "{} vs {}",
                                x.score,
                                y.score
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn knn_query_parallel_is_bit_identical() {
    for levels in [1usize, 3, 4] {
        for policy in [ScorePolicy::Min, ScorePolicy::Avg, ScorePolicy::Max] {
            let (serial, parallel) = build(levels, policy, 7);
            for q in queries(&serial, 7) {
                let a = serial.knn_query(1, &q, 5, KnnOptions::default());
                let b = parallel.knn_query(1, &q, 5, KnnOptions::default());
                assert_eq!(a.topk, b.topk, "levels={levels} {policy:?}");
                assert_eq!(a.retrieved, b.retrieved);
                assert_eq!(a.stats, b.stats);
                assert_eq!(a.epsilons, b.epsilons);
                assert_eq!(a.peers_contacted, b.peers_contacted);
            }
        }
    }
}

#[test]
fn point_query_parallel_is_bit_identical() {
    for levels in [2usize, 4] {
        let (serial, parallel) = build(levels, ScorePolicy::Min, 11);
        for q in queries(&serial, 11) {
            let a = serial.point_query(2, &q);
            let b = parallel.point_query(2, &q);
            assert_eq!(a.matches, b.matches, "levels={levels}");
            assert_eq!(a.candidates, b.candidates);
            assert_eq!(a.stats, b.stats);
        }
    }
}

#[test]
fn adaptive_range_parallel_is_bit_identical() {
    let (serial, parallel) = build(4, ScorePolicy::Min, 13);
    for q in queries(&serial, 13) {
        let a = serial.range_query_adaptive(0, &q, 0.35, 0.8);
        let b = parallel.range_query_adaptive(0, &q, 0.35, 0.8);
        assert_eq!(a.items, b.items);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.peers_contacted, b.peers_contacted);
    }
}

#[test]
fn engine_batch_equals_individual_calls() {
    let (serial, _) = build(4, ScorePolicy::Min, 17);
    let qs = queries(&serial, 17);
    let engine = QueryEngine::new(&serial).with_threads(4);
    let batch = engine.range_batch(0, &qs, 0.3, None);
    for (q, b) in qs.iter().zip(&batch) {
        let single = serial.range_query(0, q, 0.3, None);
        assert_eq!(single.items, b.items);
        assert_eq!(single.stats, b.stats);
    }
    let kb = engine.knn_batch(0, &qs, 4, KnnOptions::default());
    for (q, b) in qs.iter().zip(&kb) {
        let single = serial.knn_query(0, q, 4, KnnOptions::default());
        assert_eq!(single.topk, b.topk);
        assert_eq!(single.stats, b.stats);
    }
}
