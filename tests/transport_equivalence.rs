//! Transport-extraction equivalence: serving the protocol through the
//! sim-underlay [`Transport`] must be invisible. A network driven over
//! `SimHub` frames returns bit-identical query results, identical
//! simulated `OpStats`, and a byte-identical telemetry event stream
//! compared with calling the same public entry points directly.
//!
//! This is the contract that makes the `Transport` trait a pure
//! extraction rather than a behaviour change: the head runtime serves
//! `Query`/`Put`/`Get` by calling exactly the entry points a direct
//! caller uses, and its own tracing goes to a *separate* recorder.

use hyperm::datagen::{generate_aloi_like, AloiConfig};
use hyperm::telemetry::{Event, Recorder, TraceCtx};
use hyperm::transport::{NodeRuntime, Role, ServeOutcome, SimEndpoint, SimHub, Transport};
use hyperm::{Dataset, HypermConfig, HypermNetwork, InsertPolicy, Message, StoredObject};
use std::time::Duration;

const DIM: usize = 32;
const LEVELS: usize = 4;
const SEED: u64 = 7;
const CLIENT: u64 = 99;

fn peers(seed: u64) -> Vec<Dataset> {
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 10,
        views_per_class: 18,
        bins: DIM,
        view_jitter: 0.15,
        seed,
    });
    let per = corpus.data.len() / 12;
    (0..12)
        .map(|p| {
            let mut ds = Dataset::new(DIM);
            for i in p * per..(p + 1) * per {
                ds.push_row(corpus.data.row(i));
            }
            ds
        })
        .collect()
}

fn config(seed: u64) -> HypermConfig {
    HypermConfig::new(DIM)
        .with_levels(LEVELS)
        .with_clusters_per_peer(4)
        .with_seed(seed)
        .with_parallel_query(false) // serial => deterministic event order
}

/// The shared workload: query points and the item inserted mid-run.
fn workload(seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let data = peers(seed);
    let queries = vec![
        data[3].row(0).to_vec(),
        data[7].row(2).to_vec(),
        data[0].row(5).to_vec(),
    ];
    let item = data[5].row(1).to_vec();
    (queries, item)
}

/// One range-query outcome in wire units, so both runs compare exactly.
type QueryOut = (Vec<(u64, u64)>, u64, u64, u64);

struct RunOut {
    queries: Vec<QueryOut>,
    put_index: u64,
    get_objects: Vec<StoredObject>,
    events: Vec<Event>,
}

/// Direct run: call the network's public entry points in-process.
fn direct_run(seed: u64) -> RunOut {
    let (rec, ring) = Recorder::ring(1 << 16);
    let (mut net, _) = HypermNetwork::build_traced(peers(seed), config(seed), rec).unwrap();
    let (qs, item) = workload(seed);

    let mut queries = Vec::new();
    for q in &qs {
        let res = net.range_query(0, q, 0.2, None);
        queries.push((
            res.items
                .iter()
                .map(|&(p, i)| (p as u64, i as u64))
                .collect(),
            res.stats.hops,
            res.stats.messages,
            res.stats.bytes,
        ));
    }

    let put_index = net.peer(5).items.len() as u64;
    net.insert_item(5, &item, InsertPolicy::Republish);

    let res = net.range_query(0, &item, 0.1, None);
    queries.push((
        res.items
            .iter()
            .map(|&(p, i)| (p as u64, i as u64))
            .collect(),
        res.stats.hops,
        res.stats.messages,
        res.stats.bytes,
    ));

    let key = vec![0.5; net.overlay(0).dim()];
    let (get_objects, _) = net.overlay(0).point_lookup(hyperm::NodeId(0), &key);

    assert_eq!(ring.dropped(), 0, "ring must be large enough for the run");
    RunOut {
        queries,
        put_index,
        get_objects,
        events: ring.events(),
    }
}

/// Send one request frame and serve it; the reply must come straight back.
fn ask(client: &SimEndpoint, runtime: &mut NodeRuntime<SimEndpoint>, msg: Message) -> Message {
    client.send(0, &msg).expect("client frame accepted");
    let outcome = runtime.serve_one(Duration::ZERO).expect("head serves");
    assert_eq!(outcome, ServeOutcome::Handled);
    let envelope = client
        .recv_timeout(Duration::ZERO)
        .expect("reply frame delivered");
    assert_eq!(envelope.from, 0, "reply stamped with the head's id");
    envelope.msg
}

/// Transported run: the identical network served over `SimHub` frames.
/// The runtime's recorder is disabled so only the network's own tracing
/// (the stream under comparison) reaches the ring.
fn transported_run(seed: u64) -> RunOut {
    let (rec, ring) = Recorder::ring(1 << 16);
    let (net, _) = HypermNetwork::build_traced(peers(seed), config(seed), rec).unwrap();
    let (qs, item) = workload(seed);

    let hub = SimHub::new(64);
    let mut runtime = NodeRuntime::new(hub.endpoint(0), Role::Head(Box::new(net)))
        .with_recorder(Recorder::disabled());
    let client = hub.endpoint(CLIENT);

    let unpack = |msg: Message| -> QueryOut {
        match msg {
            Message::QueryAck {
                items,
                hops,
                messages,
                bytes,
            } => (items, hops, messages, bytes),
            other => panic!("expected QueryAck, got {}", other.kind_name()),
        }
    };

    let mut queries = Vec::new();
    for q in &qs {
        let reply = ask(
            &client,
            &mut runtime,
            Message::Query {
                centre: q.clone(),
                eps: 0.2,
                budget: u32::MAX,
                // A live trace context on the wire: the serving network's
                // recorder is what's under comparison, and a traced frame
                // must not perturb its stream.
                ctx: TraceCtx {
                    trace_id: 0xFEED,
                    parent_span: 42,
                },
            },
        );
        queries.push(unpack(reply));
    }

    let reply = ask(
        &client,
        &mut runtime,
        Message::Put {
            peer: 5,
            item: item.clone(),
            republish: true,
        },
    );
    let put_index = match reply {
        Message::PutAck { peer: 5, index } => index,
        other => panic!("expected PutAck, got {}", other.kind_name()),
    };

    let reply = ask(
        &client,
        &mut runtime,
        Message::Query {
            centre: item.clone(),
            eps: 0.1,
            budget: u32::MAX,
            ctx: TraceCtx {
                trace_id: 0xFEED,
                parent_span: 43,
            },
        },
    );
    queries.push(unpack(reply));

    let dim = runtime.network().unwrap().overlay(0).dim();
    let reply = ask(
        &client,
        &mut runtime,
        Message::Get {
            level: 0,
            key: vec![0.5; dim],
        },
    );
    let get_objects = match reply {
        Message::GetAck { level: 0, objects } => objects,
        other => panic!("expected GetAck, got {}", other.kind_name()),
    };

    let frames = hub.stats();
    assert!(
        frames.messages >= 12,
        "every request and reply is charged as a frame (got {})",
        frames.messages
    );

    assert_eq!(ring.dropped(), 0, "ring must be large enough for the run");
    RunOut {
        queries,
        put_index,
        get_objects,
        events: ring.events(),
    }
}

#[test]
fn sim_transport_is_bit_identical_to_direct_calls() {
    let direct = direct_run(SEED);
    let transported = transported_run(SEED);

    assert!(!direct.queries.is_empty());
    assert_eq!(
        direct.queries, transported.queries,
        "query items and OpStats must match exactly over the wire"
    );
    assert_eq!(direct.put_index, transported.put_index);
    assert_eq!(
        direct.get_objects.len(),
        transported.get_objects.len(),
        "point-lookup result set must match"
    );
    for (a, b) in direct.get_objects.iter().zip(&transported.get_objects) {
        assert_eq!(a.centre, b.centre);
        assert_eq!(a.radius.to_bits(), b.radius.to_bits());
        assert_eq!(a.payload.peer, b.payload.peer);
        assert_eq!(a.payload.tag, b.payload.tag);
        assert_eq!(a.payload.items, b.payload.items);
    }

    assert!(!direct.events.is_empty(), "traced build must emit events");
    assert_eq!(
        direct.events, transported.events,
        "the network's telemetry stream must be byte-identical: transport \
         tracing goes to a separate recorder and must not perturb it"
    );
}

/// Invalid frames are answered with a failure `Ack`, never a panic, and
/// leave the network untouched (subsequent queries still match).
#[test]
fn head_rejects_invalid_requests_without_perturbing_state() {
    let (net, _) = HypermNetwork::build(peers(SEED), config(SEED)).unwrap();
    let hub = SimHub::new(64);
    let mut runtime = NodeRuntime::new(hub.endpoint(0), Role::Head(Box::new(net)));
    let client = hub.endpoint(CLIENT);

    let bad = vec![
        Message::Query {
            centre: vec![0.1; DIM - 1], // wrong dimensionality
            eps: 0.2,
            budget: u32::MAX,
            ctx: TraceCtx::NONE,
        },
        Message::Put {
            peer: 10_000, // no such peer
            item: vec![0.1; DIM],
            republish: false,
        },
        Message::Get {
            level: 200, // no such level
            key: vec![0.5; DIM],
        },
    ];
    for msg in bad {
        let expect = Message::reply_kind_of(msg.kind()).unwrap();
        let reply = ask(&client, &mut runtime, msg);
        match reply {
            Message::Ack { seq, ok } => {
                assert_eq!(seq, u64::from(expect));
                assert!(!ok);
            }
            other => panic!("expected failure Ack, got {}", other.kind_name()),
        }
    }

    // The overlay still answers correctly after the hostile frames.
    let q = peers(SEED)[3].row(0).to_vec();
    let reply = ask(
        &client,
        &mut runtime,
        Message::Query {
            centre: q,
            eps: 0.2,
            budget: u32::MAX,
            ctx: TraceCtx::NONE,
        },
    );
    assert!(matches!(reply, Message::QueryAck { .. }));
}
