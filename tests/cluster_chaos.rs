//! Live-cluster fault tolerance under a chaos transport: the ISSUE 9
//! acceptance bar.
//!
//! A seeded [`ChaosEndpoint`] perturbs the client↔head link (drops,
//! forced disconnects) while the retry/correlation machinery keeps the
//! cluster's answers exact:
//!
//! * head-side request drops: the client retries under backoff and range
//!   recall returns to 1.0;
//! * a member crash + restart re-`Join`s through the normal join path
//!   and resolves to its **same** overlay peer id (idempotent rejoin),
//!   with its keys still fully retrievable;
//! * a forced-disconnect storm (every other frame errors) is absorbed by
//!   resends — recall stays 1.0;
//! * a late reply to a timed-out attempt is **discarded** (`stale_reply`
//!   telemetry), never returned to the next request — asserted on raw
//!   `req_id`s;
//! * `Duration::ZERO` timeouts clamp to a minimum tick instead of
//!   refusing replies that are already queued.
//!
//! The three chaos scenarios are emitted as `BENCH_chaos.json`
//! (validated by `bench_check`).

use hyperm::datagen::{generate_aloi_like, AloiConfig};
use hyperm::telemetry::{names, Recorder, TraceCtx};
use hyperm::transport::{MemEndpoint, ServeOutcome, Transport, TransportError};
use hyperm::{
    Backoff, ChaosConfig, ChaosEndpoint, Client, ClientConfig, Dataset, HypermConfig,
    HypermNetwork, MemHub, Message, NodeRuntime, Role,
};
use std::collections::BTreeSet;
use std::time::Duration;

const DIM: usize = 16;
const ITEMS: usize = 20;
const SEED: u64 = 11;
const EPS: f64 = 0.25;

fn collection(slot: u64) -> Dataset {
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 1,
        views_per_class: ITEMS,
        bins: DIM,
        view_jitter: 0.15,
        seed: SEED.wrapping_add(slot),
    });
    corpus.data
}

fn config() -> HypermConfig {
    HypermConfig::new(DIM)
        .with_levels(3)
        .with_clusters_per_peer(4)
        .with_seed(SEED)
        .with_parallel_query(false)
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Brute-force `(peer, index)` truth within `eps` of `q`.
fn truth(collections: &[&Dataset], q: &[f64], eps: f64) -> BTreeSet<(u64, u64)> {
    let e2 = eps * eps;
    let mut out = BTreeSet::new();
    for (p, ds) in collections.iter().enumerate() {
        for i in 0..ds.len() {
            if sq_dist(ds.row(i), q) <= e2 {
                out.insert((p as u64, i as u64));
            }
        }
    }
    out
}

/// Recall of `got` against `want` (1.0 when nothing is missing).
fn recall(got: &[(u64, u64)], want: &BTreeSet<(u64, u64)>) -> f64 {
    if want.is_empty() {
        return 1.0;
    }
    let got: BTreeSet<(u64, u64)> = got.iter().copied().collect();
    let hit = want.iter().filter(|t| got.contains(t)).count();
    hit as f64 / want.len() as f64
}

/// A retrying client with telemetry, short per-attempt timeouts tuned
/// for chaos scenarios.
fn chaos_client(
    transport: ChaosEndpoint<MemEndpoint>,
    rec: Recorder,
) -> Client<ChaosEndpoint<MemEndpoint>> {
    Client::new(transport, 0)
        .with_config(ClientConfig {
            timeout: Duration::from_millis(150),
            attempts: 6,
            backoff: Backoff::exponential(1, 4),
            retry_tick: Duration::from_millis(5),
        })
        .with_recorder(rec)
}

struct ScenarioOutcome {
    name: &'static str,
    recall_final: f64,
    queries: u64,
    retries: u64,
    gave_up: u64,
}

/// Head-side drop chaos: 40% of client→head frames vanish; retries must
/// bring recall back to exactly 1.0.
fn scenario_head_drops() -> ScenarioOutcome {
    let data: Vec<Dataset> = (0..4).map(collection).collect();
    let (net, _) = HypermNetwork::build(data.clone(), config()).unwrap();
    let hub = MemHub::new(256);
    let mut head_rt = NodeRuntime::new(hub.endpoint(0), Role::Head(Box::new(net)));
    let head = std::thread::spawn(move || head_rt.serve_until_shutdown());

    let (rec, _ring) = Recorder::ring(1 << 12);
    let chaos = ChaosEndpoint::new(hub.endpoint(50), ChaosConfig::quiet(42).with_drop(400));
    let client = chaos_client(chaos, rec.clone());

    let refs: Vec<&Dataset> = data.iter().collect();
    let mut total_recall = 0.0;
    let probes = [
        (0usize, 0usize),
        (1, 5),
        (2, 9),
        (3, ITEMS - 1),
        (0, 7),
        (2, 3),
    ];
    for (peer, row) in probes {
        let q = data[peer].row(row).to_vec();
        let (items, _) = client.query(&q, EPS, None).unwrap();
        total_recall += recall(&items, &truth(&refs, &q, EPS));
    }
    let metrics = rec.metrics().unwrap();
    let retries = metrics.counter(names::RETRY);
    let gave_up = metrics.counter(names::GAVE_UP);
    assert!(
        retries > 0,
        "a 40% seeded drop rate over {} requests must force at least one retry",
        probes.len()
    );
    assert_eq!(gave_up, 0, "no query may exhaust its retry budget");
    assert!(
        client.stats().is_ok(),
        "the cluster stays scrapeable under drop chaos"
    );

    // Shut down over a clean (unchaosed) control endpoint: `Shutdown`
    // is not resendable, so it must not race the drop schedule.
    Client::new(hub.endpoint(60), 0).shutdown().unwrap();
    head.join().unwrap().unwrap();
    ScenarioOutcome {
        name: "head_drops",
        recall_final: total_recall / probes.len() as f64,
        queries: probes.len() as u64,
        retries,
        gave_up,
    }
}

/// Member crash + restart: the repeat `Join` from the same transport
/// peer resolves to the same overlay id and its keys stay retrievable.
fn scenario_member_crash_rejoin() -> ScenarioOutcome {
    let data: Vec<Dataset> = (0..4).map(collection).collect();
    let (net, _) = HypermNetwork::build(data.clone(), config()).unwrap();
    let hub = MemHub::new(256);
    let mut head_rt = NodeRuntime::new(hub.endpoint(0), Role::Head(Box::new(net)));
    let head = std::thread::spawn(move || head_rt.serve_until_shutdown());

    let member_data = collection(1000);
    let mut member = NodeRuntime::new(
        hub.endpoint(1),
        Role::Member {
            head: 0,
            peer: None,
        },
    );
    let joined = member
        .join_network(&member_data, Duration::from_secs(30))
        .unwrap();
    assert_eq!(joined, 4, "member becomes overlay peer 4");

    let client = Client::new(hub.endpoint(50), 0);
    let q = member_data.row(3).to_vec();
    let (items, _) = client.query(&q, 0.05, None).unwrap();
    assert!(items.contains(&(4, 3)), "member item reachable pre-crash");

    // Crash: the runtime dies without any goodbye (kill -9 shape); its
    // inbox is orphaned on the hub.
    drop(member);

    // Restart under the same transport id and rejoin through the normal
    // join path: same overlay peer comes back, no duplicate admission.
    let mut reborn = NodeRuntime::new(
        hub.endpoint(1),
        Role::Member {
            head: 0,
            peer: None,
        },
    );
    let rejoined = reborn
        .join_network(&member_data, Duration::from_secs(30))
        .unwrap();
    assert_eq!(
        rejoined, joined,
        "crash-rejoin must resolve to the same overlay peer"
    );
    let monitor = client.monitor().unwrap();
    assert!(
        monitor.contains("\"members\": 5"),
        "rejoin must not admit a duplicate member: {monitor}"
    );

    let refs: Vec<&Dataset> = data.iter().chain([&member_data]).collect();
    let mut total_recall = 0.0;
    let probes = [(4usize, 3usize), (4, ITEMS - 1), (0, 0), (3, 2)];
    for (peer, row) in probes {
        let q = refs[peer].row(row).to_vec();
        let (items, _) = client.query(&q, EPS, None).unwrap();
        total_recall += recall(&items, &truth(&refs, &q, EPS));
    }

    client.shutdown().unwrap();
    head.join().unwrap().unwrap();
    ScenarioOutcome {
        name: "member_crash_rejoin",
        recall_final: total_recall / probes.len() as f64,
        queries: probes.len() as u64,
        retries: 0,
        gave_up: 0,
    }
}

/// Forced-disconnect storm: every other client→head frame fails with a
/// truncate-disconnect error; resends absorb all of it.
fn scenario_disconnect_storm() -> (ScenarioOutcome, u64) {
    let data: Vec<Dataset> = (0..4).map(collection).collect();
    let (net, _) = HypermNetwork::build(data.clone(), config()).unwrap();
    let hub = MemHub::new(256);
    let mut head_rt = NodeRuntime::new(hub.endpoint(0), Role::Head(Box::new(net)));
    let head = std::thread::spawn(move || head_rt.serve_until_shutdown());

    let (rec, _ring) = Recorder::ring(1 << 12);
    let chaos = ChaosEndpoint::new(
        hub.endpoint(50),
        ChaosConfig::quiet(7).with_disconnect_every(2),
    );
    let client = chaos_client(chaos, rec.clone());

    let refs: Vec<&Dataset> = data.iter().collect();
    let mut total_recall = 0.0;
    let probes = [(0usize, 1usize), (1, 8), (2, 15), (3, 4), (1, 0), (3, 19)];
    for (peer, row) in probes {
        let q = data[peer].row(row).to_vec();
        let (items, _) = client.query(&q, EPS, None).unwrap();
        total_recall += recall(&items, &truth(&refs, &q, EPS));
    }
    let disconnects = client.transport().stats().disconnects;
    assert!(disconnects > 0, "the storm must actually fire");
    let metrics = rec.metrics().unwrap();
    let retries = metrics.counter(names::RETRY);
    assert!(retries > 0, "disconnected sends must be retried");

    Client::new(hub.endpoint(60), 0).shutdown().unwrap();
    head.join().unwrap().unwrap();
    (
        ScenarioOutcome {
            name: "disconnect_storm",
            recall_final: total_recall / probes.len() as f64,
            queries: probes.len() as u64,
            retries,
            gave_up: metrics.counter(names::GAVE_UP),
        },
        disconnects,
    )
}

/// Drive the timed-out-then-answered race with a scripted responder and
/// return `(stale_discarded, stale_returned)`: the late reply to attempt
/// one must be counted and dropped, never handed to attempt two.
fn stale_reply_probe() -> (u64, u64) {
    let hub = MemHub::new(64);
    let node = hub.endpoint(0);
    let (rec, _ring) = Recorder::ring(1 << 10);
    let client = Client::new(hub.endpoint(77), 0)
        .with_config(ClientConfig {
            timeout: Duration::from_millis(60),
            attempts: 3,
            backoff: Backoff::exponential(1, 1),
            retry_tick: Duration::from_millis(1),
        })
        .with_recorder(rec.clone());

    let responder = std::thread::spawn(move || {
        // Attempt one arrives; stay silent so the client times it out.
        let first = node.recv_timeout(Duration::from_secs(5)).unwrap();
        // Attempt two is the resend, under a fresh correlation tag.
        let second = node.recv_timeout(Duration::from_secs(5)).unwrap();
        // Now answer attempt ONE (late — the client gave up on it), with
        // a poisoned payload, then attempt two with the real one.
        node.send_tagged(
            77,
            first.req_id,
            &Message::QueryAck {
                items: vec![(9, 9)],
                hops: 1,
                messages: 1,
                bytes: 1,
            },
        )
        .unwrap();
        node.send_tagged(
            77,
            second.req_id,
            &Message::QueryAck {
                items: vec![(1, 1)],
                hops: 1,
                messages: 1,
                bytes: 1,
            },
        )
        .unwrap();
        (first.req_id, second.req_id, first.msg, second.msg)
    });

    let (items, _) = client.query(&[0.5; 4], 0.1, None).unwrap();
    let (id1, id2, msg1, msg2) = responder.join().unwrap();
    assert_ne!(id1, 0, "request attempts must carry a non-zero req_id");
    assert_ne!(id2, 0, "request attempts must carry a non-zero req_id");
    assert_ne!(id1, id2, "each attempt must get a fresh req_id");
    assert_eq!(msg1, msg2, "a resend is the identical idempotent request");

    let stale_returned = u64::from(items == vec![(9, 9)]);
    assert_eq!(
        items,
        vec![(1, 1)],
        "the late reply to a timed-out attempt must never be returned"
    );
    let metrics = rec.metrics().unwrap();
    assert!(
        metrics.counter(names::STALE_REPLY) >= 1,
        "the discarded late reply must be counted as stale_reply"
    );
    assert_eq!(metrics.counter(names::RETRY), 1, "exactly one resend");
    (metrics.counter(names::STALE_REPLY), stale_returned)
}

/// The three chaos scenarios, plus the stale-reply probe, emitted as the
/// `BENCH_chaos.json` artifact `bench_check` validates.
#[test]
fn chaos_scenarios_recover_full_recall_and_emit_bench() {
    let drops = scenario_head_drops();
    let rejoin = scenario_member_crash_rejoin();
    let (storm, disconnects) = scenario_disconnect_storm();
    let (stale_discarded, stale_returned) = stale_reply_probe();

    let mut scenarios = Vec::new();
    for s in [&drops, &rejoin, &storm] {
        assert_eq!(
            s.recall_final, 1.0,
            "scenario {} must recover full recall",
            s.name
        );
        let extra = if s.name == "disconnect_storm" {
            format!(", \"disconnects\": {disconnects}")
        } else {
            String::new()
        };
        scenarios.push(format!(
            "    {{\"name\": \"{}\", \"recall_final\": {:.4}, \"queries\": {}, \"retries\": {}, \"gave_up\": {}{}}}",
            s.name, s.recall_final, s.queries, s.retries, s.gave_up, extra
        ));
    }
    let json = format!(
        "{{\n  \"workload\": {{\"nodes\": 4, \"dim\": {DIM}, \"items_per_peer\": {ITEMS}, \"seed\": {SEED}, \"transport\": \"mem+chaos\"}},\n  \"scenarios\": [\n{}\n  ],\n  \"stale_replies_discarded\": {stale_discarded},\n  \"stale_replies_returned\": {stale_returned}\n}}\n",
        scenarios.join(",\n")
    );
    std::fs::write("BENCH_chaos.json", json).unwrap();
}

/// Satellite regression: the reply mis-correlation race in isolation.
#[test]
fn late_reply_to_timed_out_request_is_discarded() {
    let (discarded, returned) = stale_reply_probe();
    assert!(discarded >= 1);
    assert_eq!(returned, 0);
}

/// Satellite regression: a `ClientConfig::timeout` of zero is clamped to
/// a minimum tick — a reply that is already queued must still be
/// returned, not refused by an instantly-expired deadline.
#[test]
fn zero_client_timeout_is_clamped_to_a_live_tick() {
    let hub = MemHub::new(16);
    let node = hub.endpoint(0);
    let client = Client::new(hub.endpoint(9), 0).with_config(ClientConfig {
        timeout: Duration::ZERO,
        attempts: 1,
        ..ClientConfig::default()
    });
    // A fresh client's first attempt is req_id 1: pre-queue its answer.
    node.send_tagged(9, 1, &Message::StatsAck { json: "{}".into() })
        .unwrap();
    assert_eq!(
        client.stats().unwrap(),
        "{}",
        "zero timeout must still drain an already-queued reply"
    );
}

/// Satellite regression: same clamp on the member's `forward_timeout`.
#[test]
fn zero_forward_timeout_is_clamped_to_a_live_tick() {
    let hub = MemHub::new(64);
    let head_ep = hub.endpoint(0);
    let client_ep = hub.endpoint(7);
    let mut member = NodeRuntime::new(
        hub.endpoint(1),
        Role::Member {
            head: 0,
            peer: Some(4),
        },
    );
    member.forward_timeout = Duration::ZERO;
    // The client's request arrives first; the head's answer (for the
    // member's first forward tag, 1) is already queued behind it.
    client_ep
        .send_tagged(
            1,
            99,
            &Message::Query {
                centre: vec![0.0; DIM],
                eps: 0.1,
                budget: u32::MAX,
                ctx: TraceCtx::NONE,
            },
        )
        .unwrap();
    head_ep
        .send_tagged(
            1,
            1,
            &Message::QueryAck {
                items: vec![(2, 3)],
                hops: 1,
                messages: 1,
                bytes: 1,
            },
        )
        .unwrap();
    assert_eq!(
        member.serve_one(Duration::from_secs(1)).unwrap(),
        ServeOutcome::Handled
    );
    let env = client_ep.recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(env.req_id, 99, "reply echoes the client's correlation tag");
    assert_eq!(
        env.msg,
        Message::QueryAck {
            items: vec![(2, 3)],
            hops: 1,
            messages: 1,
            bytes: 1,
        },
        "zero forward_timeout must still relay the queued head answer"
    );
}

/// Wire heartbeats: a member whose head goes silent crosses the
/// missed-ping threshold, reports itself degraded (Stats JSON + fast
/// client failure), and recovers the moment the head is heard again.
#[test]
fn member_detects_dead_head_degrades_and_recovers() {
    let hub = MemHub::new(64);
    let (rec, _ring) = Recorder::ring(1 << 10);
    let mut member = NodeRuntime::new(
        hub.endpoint(1),
        Role::Member {
            head: 0,
            peer: Some(4),
        },
    )
    .with_recorder(rec.clone());
    member.missed_ping_threshold = 2;

    // No head endpoint exists: every idle tick's ping goes unanswered.
    for _ in 0..3 {
        assert_eq!(
            member.serve_one(Duration::ZERO).unwrap(),
            ServeOutcome::Idle
        );
    }
    assert!(member.degraded(), "3 missed pings over threshold 2");
    assert!(
        member.stats_json().contains("\"degraded\":true"),
        "stats must carry the liveness verdict: {}",
        member.stats_json()
    );
    let metrics = rec.metrics().unwrap();
    assert_eq!(metrics.counter(names::PEER_DOWN), 1);

    // A client request against a degraded member fails fast with a
    // refusal ack instead of stalling a forward timeout.
    let client_ep = hub.endpoint(7);
    client_ep
        .send_tagged(
            1,
            5,
            &Message::Query {
                centre: vec![0.0; DIM],
                eps: 0.1,
                budget: u32::MAX,
                ctx: TraceCtx::NONE,
            },
        )
        .unwrap();
    assert_eq!(
        member.serve_one(Duration::from_secs(1)).unwrap(),
        ServeOutcome::Handled
    );
    let env = client_ep.recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(env.req_id, 5);
    assert!(
        matches!(env.msg, Message::Ack { ok: false, .. }),
        "degraded member fast-fails: {:?}",
        env.msg
    );

    // The head comes back: one frame clears the degraded state.
    let head_ep = hub.endpoint(0);
    head_ep
        .send_tagged(1, 0, &Message::Pong { seq: 0 })
        .unwrap();
    assert_eq!(
        member.serve_one(Duration::from_secs(1)).unwrap(),
        ServeOutcome::Handled
    );
    assert!(!member.degraded(), "hearing the head heals the member");
    assert!(member.stats_json().contains("\"degraded\":false"));
    assert_eq!(metrics.counter(names::REJOIN), 1, "recovery is visible");
    assert!(
        member.monitor_json().contains("\"liveness\""),
        "monitor exposes the liveness table"
    );

    // And pings are answered by any runtime: the member replies Pong
    // echoing the correlation tag.
    head_ep
        .send_tagged(1, 31, &Message::Ping { seq: 8 })
        .unwrap();
    member.serve_one(Duration::from_secs(1)).unwrap();
    let env = head_ep.recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(env.req_id, 31);
    assert_eq!(env.msg, Message::Pong { seq: 8 });
    let _ = TransportError::Timeout; // silence unused-import on some cfgs
}
