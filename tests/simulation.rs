//! Integration tests of the MANET simulation substrate together with the
//! overlay stack: underlay expansion, mobility, energy accounting and the
//! event scheduler.

use hyperm::sim::{EnergyModel, Scheduler, SimTime, Underlay, UnderlayConfig};
use hyperm::{Dataset, HypermConfig, HypermNetwork, NodeId, OpStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn peers(n: usize, items: usize, seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut ds = Dataset::new(16);
            let mut row = [0.0f64; 16];
            for _ in 0..items {
                for x in row.iter_mut() {
                    *x = rng.gen();
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect()
}

#[test]
fn overlay_traffic_expands_onto_the_underlay() {
    let n = 30;
    let (_, report) = HypermNetwork::build(
        peers(n, 40, 1),
        HypermConfig::new(16)
            .with_levels(3)
            .with_clusters_per_peer(4)
            .with_seed(1),
    )
    .unwrap();
    let underlay = Underlay::random(UnderlayConfig {
        nodes: n,
        seed: 2,
        ..Default::default()
    });
    assert!(underlay.is_connected());
    let stretch = underlay.mean_path_hops();
    assert!(stretch >= 1.0);
    // Physical messages = overlay messages × mean path; energy follows.
    let phys = OpStats {
        hops: (report.insertion.hops as f64 * stretch) as u64,
        messages: (report.insertion.messages as f64 * stretch) as u64,
        bytes: (report.insertion.bytes as f64 * stretch) as u64,
        ..OpStats::zero()
    };
    let e = EnergyModel::bluetooth_class2();
    assert!(e.op_joules(phys) > e.op_joules(report.insertion));
    assert!(e.op_joules(phys) < e.op_joules(report.insertion) * (stretch + 0.01));
}

#[test]
fn mobility_preserves_reachability_in_a_confined_arena() {
    // "Limited mobility" (paper): people shuffle around a room; the
    // connectivity tables refresh and everyone stays reachable.
    let mut underlay = Underlay::random(UnderlayConfig {
        nodes: 40,
        arena_side: 25.0,
        radio_range: 12.0,
        seed: 3,
    });
    for step in 0..10 {
        underlay.step_mobility(2.0, 100 + step);
        assert!(underlay.is_connected(), "arena partitioned at step {step}");
    }
    // Distances stay small in a confined arena.
    assert!(underlay.mean_path_hops() < 5.0);
}

#[test]
fn scheduler_models_store_and_forward_chains() {
    // Chain a message across 6 relays with one tick per hop, while a burst
    // of parallel one-hop messages shares the first round.
    let mut sched: Scheduler<u32> = Scheduler::new();
    sched.schedule_in(1, NodeId(0), 6); // the relay chain
    for _ in 0..50 {
        sched.schedule_in(1, NodeId(1), 1); // parallel chatter
    }
    let end = sched.run(u64::MAX, |s, ev| {
        if ev.payload > 1 {
            s.schedule_in(1, ev.target, ev.payload - 1);
        }
    });
    assert_eq!(
        end,
        SimTime(6),
        "makespan = longest chain, not total traffic"
    );
    assert_eq!(sched.delivered(), 50 + 6);
}

#[test]
fn build_makespans_are_consistent_across_runs_and_scales() {
    let small = HypermNetwork::build(
        peers(10, 30, 5),
        HypermConfig::new(16)
            .with_levels(3)
            .with_clusters_per_peer(4)
            .with_seed(5),
    )
    .unwrap()
    .1;
    let large = HypermNetwork::build(
        peers(40, 30, 5),
        HypermConfig::new(16)
            .with_levels(3)
            .with_clusters_per_peer(4)
            .with_seed(5),
    )
    .unwrap()
    .1;
    // Rounds never exceed hops (floods parallelise, never slow down).
    assert!(small.makespan_rounds <= small.makespan_hops);
    assert!(large.makespan_rounds <= large.makespan_hops);
    // The parallel makespan grows far slower than total traffic.
    let traffic_ratio = large.insertion.hops as f64 / small.insertion.hops as f64;
    let makespan_ratio = large.makespan_rounds as f64 / small.makespan_rounds.max(1) as f64;
    assert!(
        makespan_ratio < traffic_ratio,
        "makespan ratio {makespan_ratio} vs traffic ratio {traffic_ratio}"
    );
}
