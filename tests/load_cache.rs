//! Popular-summary cache correctness: staleness bounds, set-identity of
//! the cached path with the cold path under churn and repair, and the
//! mechanisms-off equivalence guarantee (a measurement-only balancer
//! changes no result bit and no telemetry byte).

use hyperm::datagen::{generate_aloi_like, AloiConfig};
use hyperm::load::{LoadBalancer, LoadConfig};
use hyperm::telemetry::Recorder;
use hyperm::{Dataset, HypermConfig, HypermNetwork, KnnOptions};

const DIM: usize = 32;
const LEVELS: usize = 3;

fn peers(seed: u64) -> Vec<Dataset> {
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 12,
        views_per_class: 15,
        bins: DIM,
        view_jitter: 0.15,
        seed,
    });
    let per = corpus.data.len() / 14;
    (0..14)
        .map(|p| {
            let mut ds = Dataset::new(DIM);
            for i in p * per..(p + 1) * per {
                ds.push_row(corpus.data.row(i));
            }
            ds
        })
        .collect()
}

fn config(seed: u64) -> HypermConfig {
    HypermConfig::new(DIM)
        .with_levels(LEVELS)
        .with_clusters_per_peer(4)
        .with_seed(seed)
        .with_parallel_query(false)
}

fn build(seed: u64) -> HypermNetwork {
    HypermNetwork::build(peers(seed), config(seed)).unwrap().0
}

fn sorted_items(net: &HypermNetwork, entry: usize, q: &[f64], eps: f64) -> Vec<(usize, usize)> {
    let mut items = net.range_query(entry, q, eps, None).items;
    items.sort_unstable();
    items
}

#[test]
fn repeat_queries_hit_and_replay_the_cold_result() {
    let mut net = build(3);
    let balancer = LoadBalancer::install(
        &mut net,
        LoadConfig::default().with_cache(true).with_cache_ttl(4),
    );
    let cache = balancer.cache().expect("cache enabled").clone();
    let q = peers(3)[2].row(1).to_vec();
    let cold = sorted_items(&net, 0, &q, 0.25);
    assert_eq!(cache.hits(), 0);
    assert!(cache.misses() > 0, "cold pass must populate the cache");
    let warm = sorted_items(&net, 0, &q, 0.25);
    assert_eq!(cache.hits() as usize, LEVELS, "one hit per level");
    assert_eq!(cold, warm, "cached path must replay the cold result");
    // A different entry peer is a different cache key: no false sharing.
    let other = sorted_items(&net, 5, &q, 0.25);
    assert_eq!(cold, other);
    assert_eq!(cache.hits() as usize, LEVELS);
}

#[test]
fn stale_summaries_are_dropped_within_one_ttl_round_of_a_refresh() {
    let mut net = build(5);
    let balancer = LoadBalancer::install(
        &mut net,
        LoadConfig::default().with_cache(true).with_cache_ttl(1),
    );
    let cache = balancer.cache().expect("cache enabled").clone();
    let q = peers(5)[1].row(0).to_vec();
    let before = sorted_items(&net, 0, &q, 0.25);
    assert!(!cache.is_empty(), "query must populate the cache");
    // A refresh round republishes summaries and advances the cache
    // round; with ttl = 1 every entry inserted before it is now stale.
    for p in 0..net.len() {
        net.refresh_peer_summaries(p);
    }
    let hits_before = cache.hits();
    let after = sorted_items(&net, 0, &q, 0.25);
    assert_eq!(
        cache.hits(),
        hits_before,
        "a refresh must invalidate within one TTL round — no stale hit"
    );
    assert_eq!(before, after, "refresh must not change the result set");
    // The re-computed scores are cached again and hit from then on.
    sorted_items(&net, 0, &q, 0.25);
    assert!(cache.hits() > hits_before);
}

#[test]
fn structural_churn_invalidates_instantly_via_the_epoch() {
    let mut net = build(7);
    let balancer = LoadBalancer::install(
        &mut net,
        LoadConfig::default().with_cache(true).with_cache_ttl(64),
    );
    let cache = balancer.cache().expect("cache enabled").clone();
    let q = peers(7)[4].row(2).to_vec();
    sorted_items(&net, 0, &q, 0.3);
    sorted_items(&net, 0, &q, 0.3);
    let hits_warm = cache.hits();
    assert!(hits_warm > 0, "warm pass must hit");
    // Kill a peer and repair: the overlay mutates, the epoch bumps, and
    // every cached summary is stale immediately — a generous TTL does
    // not keep zombie scores alive.
    net.crash_peer(2, true);
    let hits_before = cache.hits();
    let healed = sorted_items(&net, 0, &q, 0.3);
    assert_eq!(
        cache.hits(),
        hits_before,
        "post-churn lookup must miss, not replay pre-churn scores"
    );
    // The healed cached path agrees with a cache-free network driven
    // through the identical history.
    let mut cold_net = build(7);
    cold_net.range_query(0, &q, 0.3, None);
    cold_net.range_query(0, &q, 0.3, None);
    cold_net.crash_peer(2, true);
    assert_eq!(healed, sorted_items(&cold_net, 0, &q, 0.3));
}

#[test]
fn cached_path_is_set_identical_to_cold_path_under_churn() {
    // The churn_repair.rs scenario shape: crashes with repair, graceful
    // departures, refresh rounds — after every step the cached network
    // returns exactly what the cache-free twin returns.
    let mut cold = build(11);
    let mut warm = build(11);
    let _balancer = LoadBalancer::install(
        &mut warm,
        LoadConfig::default().with_cache(true).with_cache_ttl(2),
    );
    let probes: Vec<Vec<f64>> = (0..6).map(|p| peers(11)[p].row(0).to_vec()).collect();
    let check = |cold: &HypermNetwork, warm: &HypermNetwork, stage: &str| {
        for (i, q) in probes.iter().enumerate() {
            // Twice, so the second warm pass runs through cache hits.
            for _ in 0..2 {
                assert_eq!(
                    sorted_items(cold, 0, q, 0.25),
                    sorted_items(warm, 0, q, 0.25),
                    "{stage}: probe {i} diverged between cold and cached paths"
                );
            }
        }
    };
    check(&cold, &warm, "pre-churn");
    cold.crash_peer(3, true);
    warm.crash_peer(3, true);
    check(&cold, &warm, "after crash+repair");
    cold.depart_peer(9);
    warm.depart_peer(9);
    check(&cold, &warm, "after graceful departure");
    for p in 0..cold.len() {
        if cold.is_alive(p) {
            cold.refresh_peer_summaries(p);
            warm.refresh_peer_summaries(p);
        }
    }
    check(&cold, &warm, "after refresh round");
}

#[test]
fn measurement_only_balancer_is_bit_identical_and_telemetry_byte_equal() {
    // All mechanisms off: installing the balancer must change nothing —
    // same results, same OpStats, and a byte-equal telemetry stream.
    let run = |with_balancer: bool| {
        let (rec, ring) = Recorder::ring(1 << 16);
        let (mut net, report) = HypermNetwork::build_traced(peers(13), config(13), rec).unwrap();
        if with_balancer {
            let _ = LoadBalancer::install(&mut net, LoadConfig::default());
        }
        let q = peers(13)[6].row(1).to_vec();
        let range = net.range_query(0, &q, 0.25, None);
        let knn = net.knn_query(1, &q, 4, KnnOptions::default());
        let point = net.point_query(2, &q);
        assert_eq!(ring.dropped(), 0);
        let stream: Vec<String> = ring.events().iter().map(|e| format!("{e:?}")).collect();
        (report, range, knn, point, stream)
    };
    let (report_a, range_a, knn_a, point_a, stream_a) = run(false);
    let (report_b, range_b, knn_b, point_b, stream_b) = run(true);
    assert_eq!(report_a, report_b);
    assert_eq!(range_a.items, range_b.items);
    assert_eq!(range_a.stats, range_b.stats);
    assert_eq!(knn_a.topk, knn_b.topk);
    assert_eq!(knn_a.stats, knn_b.stats);
    assert_eq!(point_a.matches, point_b.matches);
    assert_eq!(point_a.stats, point_b.stats);
    assert_eq!(
        stream_a.concat().into_bytes(),
        stream_b.concat().into_bytes(),
        "measurement-only balancer perturbed the telemetry stream"
    );
}
