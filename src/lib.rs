//! **hyperm** — the umbrella crate of the Hyper-M workspace.
//!
//! Hyper-M (Lupu, Li, Ooi, Shi — ICDE 2007) is a fast data-dissemination
//! method for structured P2P overlays in short-lived mobile ad-hoc
//! networks: peers publish wavelet-clustered *summaries* of their data into
//! per-subspace CAN overlays instead of publishing every item, cutting
//! overlay construction cost by an order of magnitude while keeping range
//! and k-nn retrieval effective.
//!
//! This crate re-exports the workspace's public API:
//!
//! * [`core`](mod@core) — the Hyper-M framework (build, range/k-nn/point
//!   queries, maintenance, evaluation);
//! * [`wavelet`](mod@wavelet) — Haar/D4 transforms and Theorem 3.1;
//! * [`cluster`](mod@cluster) — k-means and cluster spheres;
//! * [`geometry`](mod@geometry) — hypersphere intersections and the
//!   Eq. 8 radius solver;
//! * [`can`](mod@can) — the CAN overlay with sphere replication;
//! * [`sim`](mod@sim) — cost accounting, energy model and MANET underlay;
//! * [`datagen`](mod@datagen) — the paper's synthetic workloads;
//! * [`baseline`](mod@baseline) — per-item CAN baselines and the flat
//!   ground-truth index;
//! * [`repair`](mod@repair) — the overlay repair engine: churn schedules,
//!   zone takeover and soft-state replica refresh;
//! * [`load`](mod@load) — per-peer load accounting and hot-spot relief:
//!   virtual nodes, load-triggered zone splits/merges and the
//!   popular-summary cache (all off by default);
//! * [`telemetry`](mod@telemetry) — structured event tracing, the
//!   per-`(op kind, level)` metrics registry, and query forensics
//!   (disabled by default and provably free for the simulation);
//! * [`transport`](mod@transport) — the `Transport` trait with sim,
//!   in-memory and loopback-TCP implementations, length-prefixed message
//!   framing with bounded-inbox backpressure, and the node runtime
//!   behind the `hyperm-node` / `hyperm-client` / `hyperm-monitor`
//!   binaries.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough and DESIGN.md
//! for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hyperm_baseline as baseline;
pub use hyperm_baton as baton;
pub use hyperm_can as can;
pub use hyperm_cluster as cluster;
pub use hyperm_core as core;
pub use hyperm_datagen as datagen;
pub use hyperm_geometry as geometry;
pub use hyperm_load as load;
pub use hyperm_repair as repair;
pub use hyperm_sim as sim;
pub use hyperm_telemetry as telemetry;
pub use hyperm_transport as transport;
pub use hyperm_vbi as vbi;
pub use hyperm_wavelet as wavelet;

pub use hyperm_baseline::{precision_recall, FlatIndex, PrecisionRecall};
pub use hyperm_can::Message;
pub use hyperm_can::{CanConfig, CanOverlay, InsertOutcome, ObjectRef, RangeOutcome, StoredObject};
pub use hyperm_cluster::{
    ClusterQuality, ClusterSphere, Dataset, InitMethod, KMeansConfig, KMeansResult, MiniBatchConfig,
};
pub use hyperm_core::{
    BuildReport, ChurnOutcome, EvalHarness, HypermConfig, HypermError, HypermNetwork, InsertPolicy,
    JoinError, JoinReport, KnnOptions, KnnResult, Overlay, OverlayBackend, Peer, PeerScore,
    PointResult, PublishReport, QueryBudget, RangeResult, ScorePolicy, SphereRef, SummaryCache,
};
pub use hyperm_datagen::{ZipfConfig, ZipfWorkload};
pub use hyperm_geometry::{Overlap, SolveError};
pub use hyperm_load::{LoadBalancer, LoadConfig, LoadSnapshot, ReliefReport};
pub use hyperm_repair::{
    ChurnEvent, ChurnEventKind, ChurnSchedule, RepairConfig, RepairEngine, RepairStats,
    ScheduleReport,
};
pub use hyperm_sim::{
    Backoff, EnergyModel, FaultConfig, FaultReport, LatencySummary, LoadLedger, NetStats, NodeId,
    OpKind, OpStats, PartitionPlan, PeerLoad,
};
pub use hyperm_telemetry::{
    MetricsSnapshot, Recorder, SloReport, SpanId, Trace, TraceCtx, WindowSnapshot,
};
pub use hyperm_transport::{
    ChaosConfig, ChaosEndpoint, ChaosStats, Client, ClientConfig, Envelope, MemEndpoint, MemHub,
    NodeRuntime, PeerId, Role, ServeOutcome, SimEndpoint, SimHub, TcpEndpoint, Transport,
    TransportError,
};
pub use hyperm_wavelet::{Decomposition, Normalization, Subspace, WaveletError};
