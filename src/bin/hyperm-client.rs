//! `hyperm-client` — put/get/query CLI against a running `hyperm-node`.
//!
//! ```text
//! hyperm-client put      --node ADDR --peer P --item V1,V2,... [--republish]
//! hyperm-client get      --node ADDR --level L --key V1,V2,...
//! hyperm-client query    --node ADDR --centre V1,V2,... --eps E [--budget B] [--trace T]
//! hyperm-client fetch    --node ADDR --peer P --centre V1,V2,... --eps E
//! hyperm-client route    --node ADDR --level L --key V1,V2,...
//! hyperm-client stats    --node ADDR
//! hyperm-client shutdown --node ADDR
//! hyperm-client help
//! ```
//!
//! Every subcommand prints a single JSON object, so output is scriptable
//! (the CI transport smoke job parses it). `query --trace T` stamps the
//! request frame with trace id `T` so nodes running with `--trace PATH`
//! parent their serve spans into one cross-process trace; `stats` dumps
//! the node's sliding-window metrics snapshot verbatim.

use hyperm::telemetry::{JsonObj, TraceCtx};
use hyperm::transport::{Client, TcpEndpoint, TransportError};
use std::collections::HashMap;

/// Why a subcommand failed: bad flags, or a transport-layer error. The
/// distinction survives into the output as a typed error object, so a
/// script can tell a mid-request peer disconnect (`closed`) from a
/// timeout or its own bad arguments without parsing prose.
enum CmdError {
    Usage(String),
    Transport(TransportError),
}

impl From<String> for CmdError {
    fn from(msg: String) -> Self {
        CmdError::Usage(msg)
    }
}

impl From<TransportError> for CmdError {
    fn from(err: TransportError) -> Self {
        CmdError::Transport(err)
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "help".into());
    let opts = parse_flags(args.collect());
    if cmd == "help" {
        help();
        return;
    }
    let client = match connect(&opts) {
        Ok(c) => c,
        Err(e) => return fail(&cmd, &e),
    };
    let result = match cmd.as_str() {
        "put" => put(&client, &opts),
        "get" => get_cmd(&client, &opts),
        "query" => query(&client, &opts),
        "fetch" => fetch(&client, &opts),
        "route" => route(&client, &opts),
        "stats" => {
            // The snapshot is already one JSON document: print verbatim.
            match client.stats() {
                Ok(json) => {
                    println!("{json}");
                    return;
                }
                Err(e) => Err(CmdError::Transport(e)),
            }
        }
        "shutdown" => client
            .shutdown()
            .map(|()| JsonObj::new().b("ok", true))
            .map_err(CmdError::Transport),
        _ => {
            help();
            return;
        }
    };
    match result {
        Ok(obj) => println!("{}", obj.s("cmd", &cmd).render()),
        Err(e) => fail(&cmd, &e),
    }
}

/// Failures are still one parseable JSON object (exit code stays 0; the
/// smoke scripts branch on the `ok` field). The `error` field is itself
/// an object: `kind` is a stable machine-readable name
/// ([`TransportError::kind_name`], or `"usage"`), `detail` the
/// human-readable message.
fn fail(cmd: &str, err: &CmdError) {
    let (kind, detail) = match err {
        CmdError::Usage(msg) => ("usage", msg.clone()),
        CmdError::Transport(e) => (e.kind_name(), e.to_string()),
    };
    println!(
        "{}",
        JsonObj::new()
            .b("ok", false)
            .s("cmd", cmd)
            .raw(
                "error",
                JsonObj::new().s("kind", kind).s("detail", &detail).render()
            )
            .render()
    );
}

fn parse_flags(raw: Vec<String>) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut it = raw.into_iter().peekable();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            eprintln!("ignoring stray argument {flag:?}");
            continue;
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap_or_default(),
            _ => "true".into(),
        };
        opts.insert(name.to_string(), value);
    }
    opts
}

fn connect(opts: &HashMap<String, String>) -> Result<Client<TcpEndpoint>, CmdError> {
    let node = opts
        .get("node")
        .ok_or_else(|| "--node ADDR is required".to_string())?;
    let addr = node
        .parse()
        .map_err(|e| format!("bad --node address {node}: {e}"))?;
    // Client transport ids live far above node ids; uniqueness per
    // process is enough for reply routing.
    let id = 1_000_000 + u64::from(std::process::id());
    let endpoint = TcpEndpoint::bind(id, "127.0.0.1:0")?;
    endpoint.connect(0, addr)?;
    let mut client = Client::new(endpoint, 0);
    if let Some(trace_id) = opts.get("trace").and_then(|v| v.parse().ok()) {
        client = client.with_trace(TraceCtx {
            trace_id,
            parent_span: 0,
        });
    }
    Ok(client)
}

fn vector(opts: &HashMap<String, String>, key: &str) -> Result<Vec<f64>, String> {
    let raw = opts
        .get(key)
        .ok_or_else(|| format!("--{key} V1,V2,... is required"))?;
    raw.split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map_err(|e| format!("bad --{key} component {t:?}: {e}"))
        })
        .collect()
}

fn num<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str) -> Result<T, String> {
    opts.get(key)
        .ok_or_else(|| format!("--{key} is required"))?
        .parse()
        .map_err(|_| format!("bad --{key} value"))
}

fn put(client: &Client<TcpEndpoint>, opts: &HashMap<String, String>) -> Result<JsonObj, CmdError> {
    let peer: u64 = num(opts, "peer")?;
    let item = vector(opts, "item")?;
    let republish = opts.contains_key("republish");
    let index = client.put(peer, &item, republish)?;
    Ok(JsonObj::new()
        .b("ok", true)
        .u("peer", peer)
        .u("index", index)
        .b("republished", republish))
}

fn get_cmd(
    client: &Client<TcpEndpoint>,
    opts: &HashMap<String, String>,
) -> Result<JsonObj, CmdError> {
    let level: u16 = num(opts, "level")?;
    let key = vector(opts, "key")?;
    let objects = client.get(level, &key)?;
    let rendered: Vec<String> = objects
        .iter()
        .map(|o| {
            JsonObj::new()
                .u("peer", o.payload.peer as u64)
                .u("tag", o.payload.tag)
                .u("items", u64::from(o.payload.items))
                .g("radius", o.radius)
                .render()
        })
        .collect();
    Ok(JsonObj::new()
        .b("ok", true)
        .u("level", u64::from(level))
        .u("matches", rendered.len() as u64)
        .arr("objects", &rendered))
}

fn query(
    client: &Client<TcpEndpoint>,
    opts: &HashMap<String, String>,
) -> Result<JsonObj, CmdError> {
    let centre = vector(opts, "centre")?;
    let eps: f64 = num(opts, "eps")?;
    let budget: Option<u32> = opts.get("budget").and_then(|v| v.parse().ok());
    let (items, (hops, messages, bytes)) = client.query(&centre, eps, budget)?;
    let rendered: Vec<String> = items.iter().map(|&(p, i)| format!("[{p},{i}]")).collect();
    Ok(JsonObj::new()
        .b("ok", true)
        .u("matches", items.len() as u64)
        .u("hops", hops)
        .u("messages", messages)
        .u("bytes", bytes)
        .arr("items", &rendered))
}

fn fetch(
    client: &Client<TcpEndpoint>,
    opts: &HashMap<String, String>,
) -> Result<JsonObj, CmdError> {
    let peer: u64 = num(opts, "peer")?;
    let centre = vector(opts, "centre")?;
    let eps: f64 = num(opts, "eps")?;
    let indices = client.fetch(peer, &centre, eps)?;
    let rendered: Vec<String> = indices.iter().map(|i| i.to_string()).collect();
    Ok(JsonObj::new()
        .b("ok", true)
        .u("peer", peer)
        .u("matches", indices.len() as u64)
        .arr("indices", &rendered))
}

fn route(
    client: &Client<TcpEndpoint>,
    opts: &HashMap<String, String>,
) -> Result<JsonObj, CmdError> {
    let level: u16 = num(opts, "level")?;
    let key = vector(opts, "key")?;
    let owner = client.route(level, &key)?;
    Ok(JsonObj::new()
        .b("ok", true)
        .u("level", u64::from(level))
        .u("owner", owner))
}

fn help() {
    println!(
        "hyperm-client — put/get/query CLI for a running hyperm-node

USAGE:
  hyperm-client put      --node ADDR --peer P --item V1,V2,... [--republish]
  hyperm-client get      --node ADDR --level L --key V1,V2,...
  hyperm-client query    --node ADDR --centre V1,V2,... --eps E [--budget B] [--trace T]
  hyperm-client fetch    --node ADDR --peer P --centre V1,V2,... --eps E
  hyperm-client route    --node ADDR --level L --key V1,V2,...
  hyperm-client stats    --node ADDR
  hyperm-client shutdown --node ADDR

Output is one JSON object per invocation. `--trace T` stamps request
frames with trace id T for cross-process trace stitching; `stats` dumps
the node's sliding-window metrics snapshot."
    );
}
