//! `hyperm-demo` — command-line tour of the Hyper-M library.
//!
//! ```text
//! hyperm-demo disseminate [--nodes N] [--items M] [--dim D] [--levels L] [--clusters K] [--baton]
//! hyperm-demo query       [--nodes N] [--items M] [--kind range|knn|point] [--queries Q]
//! hyperm-demo energy      [--nodes N] [--items M]
//! hyperm-demo help
//! ```
//!
//! Every subcommand builds a deterministic synthetic workload, so outputs
//! are reproducible; all knobs are optional.

use hyperm::baseline::{insert_all_items, PerItemCanConfig};
use hyperm::datagen::{generate_aloi_like, AloiConfig};
use hyperm::{
    Dataset, EnergyModel, EvalHarness, HypermConfig, HypermNetwork, KnnOptions, OverlayBackend,
};
use std::collections::HashMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "help".into());
    let opts = parse_flags(args.collect());
    match cmd.as_str() {
        "disseminate" => disseminate(&opts),
        "query" => query(&opts),
        "energy" => energy(&opts),
        _ => help(),
    }
}

fn parse_flags(raw: Vec<String>) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut it = raw.into_iter().peekable();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            eprintln!("ignoring stray argument {flag:?}");
            continue;
        };
        // Boolean flags take no value; valued flags consume the next token.
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap(),
            _ => "true".into(),
        };
        opts.insert(name.to_string(), value);
    }
    opts
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_network(
    opts: &HashMap<String, String>,
) -> (HypermNetwork, hyperm::BuildReport, Vec<Dataset>) {
    let nodes: usize = get(opts, "nodes", 30);
    let items: usize = get(opts, "items", 60);
    let levels: usize = get(opts, "levels", 4);
    let clusters: usize = get(opts, "clusters", 8);
    let backend = if opts.contains_key("baton") {
        OverlayBackend::Baton
    } else {
        OverlayBackend::Can
    };

    // Histogram-style corpus dealt evenly onto nodes.
    let corpus = generate_aloi_like(&AloiConfig {
        classes: nodes,
        views_per_class: items,
        bins: 64,
        view_jitter: 0.15,
        seed: 1,
    });
    let peers: Vec<Dataset> = (0..nodes)
        .map(|p| {
            corpus
                .data
                .select(&(p * items..(p + 1) * items).collect::<Vec<_>>())
        })
        .collect();
    let cfg = HypermConfig::new(64)
        .with_levels(levels)
        .with_clusters_per_peer(clusters)
        .with_seed(7)
        .with_backend(backend);
    let (net, report) = HypermNetwork::build(peers.clone(), cfg).expect("build");
    (net, report, peers)
}

fn disseminate(opts: &HashMap<String, String>) {
    let (net, report, _) = build_network(opts);
    println!("Hyper-M network built");
    println!("  peers:              {}", net.len());
    println!("  levels (overlays):  {}", net.levels());
    println!("  items summarised:   {}", report.items_total);
    println!("  clusters published: {}", report.clusters_published);
    println!("  replicas stored:    {}", report.replicas);
    println!(
        "  insertion hops:     {} ({:.3}/item)",
        report.insertion.hops,
        report.avg_hops_per_item()
    );
    println!(
        "  bytes on air:       {:.1} KiB",
        report.insertion.bytes as f64 / 1024.0
    );
    println!("  parallel makespan:  {} rounds", report.makespan_rounds);
    println!("  overlay bootstrap:  {} hops", report.bootstrap.hops);
}

fn query(opts: &HashMap<String, String>) {
    let (net, _, _) = build_network(opts);
    let kind: String = get(opts, "kind", "range".to_string());
    let queries: usize = get(opts, "queries", 10);
    let harness = EvalHarness::new(&net);
    let probes = harness.sample_queries(&net, queries, 3);
    match kind.as_str() {
        "range" => {
            let mut recall = 0.0;
            let mut msgs = 0u64;
            for q in &probes {
                let eps = harness.kth_distance(q, 20);
                let (pr, stats) = harness.eval_range(&net, 0, q, eps, None);
                recall += pr.recall;
                msgs += stats.messages;
            }
            println!("{queries} range queries (radius = 20-NN distance):");
            println!(
                "  mean recall:   {:.3} (precision always 1.0)",
                recall / queries as f64
            );
            println!("  msgs/query:    {:.1}", msgs as f64 / queries as f64);
        }
        "knn" => {
            let k: usize = get(opts, "k", 10);
            let mut p = 0.0;
            let mut r = 0.0;
            let mut msgs = 0u64;
            for q in &probes {
                let e = harness.eval_knn(&net, 0, q, k, KnnOptions::default());
                p += e.retrieved.precision;
                r += e.retrieved.recall;
                msgs += e.stats.messages;
            }
            println!("{queries} k-nn queries (k = {k}):");
            println!(
                "  precision: {:.3}  recall: {:.3}",
                p / queries as f64,
                r / queries as f64
            );
            println!("  msgs/query: {:.1}", msgs as f64 / queries as f64);
        }
        "point" => {
            let mut found = 0usize;
            for q in &probes {
                if !net.point_query(0, q).matches.is_empty() {
                    found += 1;
                }
            }
            println!("{queries} point queries at held-in items: {found} exact hits");
        }
        other => {
            eprintln!("unknown query kind {other:?} (use range|knn|point)");
            // CLI usage error in a binary's top-level dispatch — the one
            // place an explicit exit code is the right tool.
            #[allow(clippy::exit)]
            std::process::exit(2);
        }
    }
}

fn energy(opts: &HashMap<String, String>) {
    let (_, report, peers) = build_network(opts);
    let nodes = peers.len();
    let baseline = insert_all_items(&peers, &PerItemCanConfig::full_dim(nodes, 64, 7));
    let model = EnergyModel::bluetooth_class2();
    println!("dissemination energy (Bluetooth-class radio, overlay hops only):");
    println!(
        "  Hyper-M:      {:>9.3} J  ({} msgs, {:.0} KiB)",
        model.op_joules(report.insertion),
        report.insertion.messages,
        report.insertion.bytes as f64 / 1024.0
    );
    println!(
        "  per-item CAN: {:>9.3} J  ({} msgs, {:.0} KiB)",
        model.op_joules(baseline.totals),
        baseline.totals.messages,
        baseline.totals.bytes as f64 / 1024.0
    );
    println!(
        "  savings:      {:.1}x",
        model.op_joules(baseline.totals) / model.op_joules(report.insertion).max(1e-12)
    );
}

fn help() {
    println!(
        "hyperm-demo — command-line tour of the Hyper-M library\n\n\
         USAGE:\n  hyperm-demo disseminate [--nodes N] [--items M] [--levels L] [--clusters K] [--baton]\n  \
         hyperm-demo query [--kind range|knn|point] [--queries Q] [--k K] [--nodes N] [--items M]\n  \
         hyperm-demo energy [--nodes N] [--items M]\n\n\
         All workloads are deterministic synthetic histogram corpora; see the\n\
         examples/ directory for library-level walkthroughs."
    );
}
