//! `hyperm-monitor` — inspect a running cluster: one-shot state dumps
//! and a live scrape/SLO watch loop.
//!
//! ```text
//! hyperm-monitor --node ADDR
//! hyperm-monitor --watch --nodes ADDR1,ADDR2,... [--interval MS]
//!                [--count N] [--slo "RULES"]
//! ```
//!
//! **One-shot** (`--node`): prints the node's `MonitorAck` JSON document
//! verbatim. Heads report membership, per-level zones, neighbour lists
//! and summary counts — plus a `load` array with live per-peer counters
//! whenever a `hyperm-load` ledger is installed. Members report their
//! role and head address. Every document carries the node's transport
//! id, frame clock and monotone scrape sequence.
//!
//! **Watch** (`--watch`): polls every listed node's `Stats` endpoint,
//! printing one JSON line per node scrape (the node's sliding-window
//! [`WindowSnapshot`]) and one `"kind": "cluster"` line per round with
//! the merged cluster-wide aggregate. With `--slo` the aggregate is
//! checked against declarative rules (e.g. `"p99_ms < 50, rejected ==
//! 0"`) each round; the process exits non-zero with a structured breach
//! report if any round violated a rule. `--count N` stops after N
//! rounds (0 = run until interrupted), which is how CI bounds the loop.

use hyperm::telemetry::{JsonObj, JsonValue, SloReport, SloRule, WindowSnapshot};
use hyperm::transport::{Client, ClientConfig, TcpEndpoint};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut node = None;
    let mut nodes = None;
    let mut watch = false;
    let mut interval_ms: u64 = 500;
    let mut count: u64 = 0;
    let mut slo = String::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--node" => node = args.next(),
            "--nodes" => nodes = args.next(),
            "--watch" => watch = true,
            "--interval" => interval_ms = num_arg(args.next(), "--interval"),
            "--count" => count = num_arg(args.next(), "--count"),
            "--slo" => slo = args.next().unwrap_or_default(),
            "help" | "--help" => {
                help();
                return ExitCode::SUCCESS;
            }
            other => eprintln!("ignoring stray argument {other:?}"),
        }
    }

    if watch {
        let list: Vec<String> = nodes
            .or(node)
            .unwrap_or_default()
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if list.is_empty() {
            eprintln!("hyperm-monitor: --watch needs --nodes ADDR1,ADDR2,...");
            return ExitCode::FAILURE;
        }
        let rules = match SloRule::parse_list(&slo) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("hyperm-monitor: bad --slo rules: {e}");
                return ExitCode::FAILURE;
            }
        };
        match watch_loop(&list, Duration::from_millis(interval_ms), count, &rules) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                println!("{}", JsonObj::new().b("ok", false).s("error", &e).render());
                ExitCode::FAILURE
            }
        }
    } else {
        let Some(node) = node else {
            eprintln!("hyperm-monitor: --node ADDR is required");
            return ExitCode::FAILURE;
        };
        match connect(&node).and_then(|c| c.monitor().map_err(|e| e.to_string())) {
            Ok(json) => {
                print!("{json}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                println!("{}", JsonObj::new().b("ok", false).s("error", &e).render());
                ExitCode::FAILURE
            }
        }
    }
}

fn num_arg(v: Option<String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("hyperm-monitor: {flag} needs a number, using 0");
        0
    })
}

fn connect(node: &str) -> Result<Client<TcpEndpoint>, String> {
    let addr = node
        .parse()
        .map_err(|e| format!("bad node address {node}: {e}"))?;
    let id = 2_000_000 + u64::from(std::process::id());
    let endpoint = TcpEndpoint::bind(id, "127.0.0.1:0").map_err(|e| e.to_string())?;
    endpoint
        .connect(0, addr)
        .map_err(|e| format!("cannot reach node at {node}: {e}"))?;
    // Scrapes are cheap and periodic: keep per-attempt waits short so a
    // dead node costs a watch round fractions of the default timeout.
    Ok(Client::new(endpoint, 0).with_config(ClientConfig {
        timeout: Duration::from_secs(5),
        ..ClientConfig::default()
    }))
}

/// Scrape every node `count` times (0 = forever), printing windowed
/// series and evaluating `rules` against the cluster aggregate. Returns
/// `Ok(true)` when no round breached.
///
/// An unreachable node does not abort the round: it is reported as a
/// `"status": "down"` node line (with a typed error kind), skipped from
/// the merge, and re-polled next round — crashed nodes coming back (the
/// transport redials with backoff, and a node that never answered at
/// start is re-connected here) rejoin the aggregate on their own.
fn watch_loop(
    nodes: &[String],
    interval: Duration,
    count: u64,
    rules: &[SloRule],
) -> Result<bool, String> {
    let mut clients: Vec<Option<Client<TcpEndpoint>>> =
        nodes.iter().map(|addr| connect(addr).ok()).collect();
    let mut clean = true;
    let mut round = 0u64;
    loop {
        round += 1;
        let mut snaps = Vec::new();
        let mut down = 0u64;
        for (addr, slot) in nodes.iter().zip(clients.iter_mut()) {
            if slot.is_none() {
                *slot = connect(addr).ok();
            }
            let scraped = match slot {
                Some(client) => client.stats().map_err(|e| e.kind_name().to_string()),
                None => Err("unreachable".to_string()),
            };
            let json = match scraped {
                Ok(json) => json,
                Err(kind) => {
                    down += 1;
                    println!(
                        "{}",
                        JsonObj::new()
                            .u("scrape", round)
                            .s("kind", "node")
                            .s("addr", addr)
                            .s("status", "down")
                            .s("error", &kind)
                            .render()
                    );
                    continue;
                }
            };
            let value = JsonValue::parse(&json)
                .map_err(|e| format!("unparseable stats from {addr}: {e:?}"))?;
            let snap = WindowSnapshot::from_json(&value)
                .ok_or_else(|| format!("stats from {addr}: missing snapshot fields"))?;
            println!(
                "{}",
                JsonObj::new()
                    .u("scrape", round)
                    .s("kind", "node")
                    .s("addr", addr)
                    .s("status", "up")
                    .raw("window", snap.to_json())
                    .render()
            );
            snaps.push(snap);
        }
        let cluster = WindowSnapshot::merge(&snaps);
        let mut line = JsonObj::new()
            .u("scrape", round)
            .s("kind", "cluster")
            .u("nodes", snaps.len() as u64)
            .u("down", down)
            .raw("window", cluster.to_json());
        if !rules.is_empty() {
            let report = SloReport::evaluate(rules, &cluster);
            if !report.ok() {
                clean = false;
            }
            line = line.raw("slo", report.to_json());
        }
        println!("{}", line.render());
        if count != 0 && round >= count {
            break;
        }
        std::thread::sleep(interval);
    }
    println!(
        "{}",
        JsonObj::new()
            .b("ok", clean)
            .s("kind", "watch_done")
            .u("scrapes", round)
            .u("nodes", nodes.len() as u64)
            .u("rules", rules.len() as u64)
            .render()
    );
    Ok(clean)
}

fn help() {
    println!(
        "hyperm-monitor — dump live overlay state / watch cluster metrics

USAGE:
  hyperm-monitor --node ADDR
  hyperm-monitor --watch --nodes ADDR1,ADDR2,... [--interval MS] [--count N] [--slo \"RULES\"]

Watch mode polls every node's sliding-window Stats endpoint, prints one
JSON line per node scrape plus a merged cluster line per round, and
(with --slo) exits non-zero if any round breaches a rule, e.g.
  --slo \"p99_ms < 50, rejected == 0, failed_routes == 0\""
    );
}
