//! `hyperm-monitor` — dump a running node's live overlay state as JSON.
//!
//! ```text
//! hyperm-monitor --node ADDR
//! ```
//!
//! Heads report membership, per-level zones, neighbour lists and summary
//! counts — plus a `load` array with live per-peer counters (served
//! queries, flood relays, answered fetches, bytes, retries) whenever a
//! `hyperm-load` ledger is installed on the head. Members report their
//! role and head address. Output is the node's `MonitorAck` JSON
//! document, printed verbatim.

use hyperm::telemetry::JsonObj;
use hyperm::transport::{Client, TcpEndpoint};

fn main() {
    let mut node = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--node" => node = args.next(),
            "help" | "--help" => {
                println!("hyperm-monitor — dump live overlay state\n\nUSAGE:\n  hyperm-monitor --node ADDR");
                return;
            }
            other => eprintln!("ignoring stray argument {other:?}"),
        }
    }
    let Some(node) = node else {
        eprintln!("hyperm-monitor: --node ADDR is required");
        return;
    };
    match run(&node) {
        Ok(json) => print!("{json}"),
        Err(e) => println!("{}", JsonObj::new().b("ok", false).s("error", &e).render()),
    }
}

fn run(node: &str) -> Result<String, String> {
    let addr = node
        .parse()
        .map_err(|e| format!("bad --node address {node}: {e}"))?;
    let id = 2_000_000 + u64::from(std::process::id());
    let endpoint = TcpEndpoint::bind(id, "127.0.0.1:0").map_err(|e| e.to_string())?;
    endpoint
        .connect(0, addr)
        .map_err(|e| format!("cannot reach node at {node}: {e}"))?;
    Client::new(endpoint, 0)
        .monitor()
        .map_err(|e| e.to_string())
}
