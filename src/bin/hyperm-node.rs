//! `hyperm-node` — a Hyper-M node daemon speaking length-prefixed frames
//! over TCP.
//!
//! ```text
//! hyperm-node head   --listen ADDR [--peers N] [--items M] [--dim D]
//!                    [--levels L] [--clusters K] [--seed S] [--trace PATH]
//! hyperm-node member --listen ADDR --head ADDR --id I [--items M] [--dim D]
//!                    [--seed S] [--trace PATH]
//! hyperm-node help
//! ```
//!
//! A **head** node builds a [`HypermNetwork`] from `--peers` deterministic
//! synthetic collections and serves the full protocol (put/get/query/
//! join/route/publish/fetch/monitor/shutdown). A **member** node
//! generates its own collection, joins the head's overlay with a `Join`
//! frame (becoming a real overlay peer), then serves as a relay: clients
//! may point `hyperm-client` at either node. Transport ids: the head is
//! peer 0 by convention; members pick a unique `--id` ≥ 1.
//!
//! All workloads are seeded, so a restarted cluster is bit-identical.
//!
//! `--trace PATH` turns on telemetry and streams the node's event log as
//! JSONL to `PATH`. The node runtime and the overlay network share one
//! recorder, so transport serve spans and overlay query spans land in a
//! single stream with one span-id space — `trace_query --stitch` can
//! merge the per-node files into one cross-process route tree.

use hyperm::datagen::{generate_aloi_like, AloiConfig};
use hyperm::telemetry::Recorder;
use hyperm::transport::{NodeRuntime, Role, TcpEndpoint};
use hyperm::{Dataset, HypermConfig, HypermNetwork};
use std::collections::HashMap;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "help".into());
    let opts = parse_flags(args.collect());
    match cmd.as_str() {
        "head" => head(&opts),
        "member" => member(&opts),
        _ => help(),
    }
}

fn parse_flags(raw: Vec<String>) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut it = raw.into_iter().peekable();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            eprintln!("ignoring stray argument {flag:?}");
            continue;
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap_or_default(),
            _ => "true".into(),
        };
        opts.insert(name.to_string(), value);
    }
    opts
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The node's recorder: JSONL-backed when `--trace PATH` is given,
/// otherwise the free disabled default.
fn recorder(opts: &HashMap<String, String>) -> Option<Recorder> {
    match opts.get("trace") {
        Some(path) => match Recorder::jsonl(path) {
            Ok(rec) => {
                println!("hyperm-node: tracing to {path}");
                Some(rec)
            }
            Err(e) => {
                eprintln!("hyperm-node: cannot open trace file {path}: {e}");
                None
            }
        },
        None => Some(Recorder::disabled()),
    }
}

/// A peer collection: `items` rows of the deterministic histogram-style
/// corpus, disjoint per (seed, slot) so every node brings distinct data.
fn collection(slot: usize, items: usize, dim: usize, seed: u64) -> Dataset {
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 1,
        views_per_class: items,
        bins: dim,
        view_jitter: 0.15,
        seed: seed.wrapping_add(slot as u64),
    });
    corpus.data
}

fn head(opts: &HashMap<String, String>) {
    let listen = opts
        .get("listen")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7401".into());
    let peers: usize = get(opts, "peers", 3);
    let items: usize = get(opts, "items", 40);
    let dim: usize = get(opts, "dim", 16);
    let levels: usize = get(opts, "levels", 3);
    let clusters: usize = get(opts, "clusters", 4);
    let seed: u64 = get(opts, "seed", 7);
    let Some(rec) = recorder(opts) else { return };

    let data: Vec<Dataset> = (0..peers)
        .map(|p| collection(p, items, dim, seed))
        .collect();
    let cfg = HypermConfig::new(dim)
        .with_levels(levels)
        .with_clusters_per_peer(clusters)
        .with_seed(seed);
    let (net, report) = match HypermNetwork::build_traced(data, cfg, rec.clone()) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("hyperm-node: build failed: {e}");
            return;
        }
    };
    let endpoint = match TcpEndpoint::bind(0, &listen) {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("hyperm-node: cannot bind {listen}: {e}");
            return;
        }
    };
    println!(
        "hyperm-node head: {} peers, {} levels, {} clusters published, listening on {}",
        net.len(),
        net.levels(),
        report.clusters_published,
        endpoint.local_addr()
    );
    let mut runtime =
        NodeRuntime::new(endpoint, Role::Head(Box::new(net))).with_recorder(rec.clone());
    if let Err(e) = runtime.serve_until_shutdown() {
        eprintln!("hyperm-node: serve loop failed: {e}");
        return;
    }
    rec.flush();
    println!("hyperm-node head: shut down cleanly");
}

fn member(opts: &HashMap<String, String>) {
    let listen = opts
        .get("listen")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".into());
    let Some(head_addr) = opts.get("head") else {
        eprintln!("hyperm-node member: --head ADDR is required");
        return;
    };
    let id: u64 = get(opts, "id", 1);
    let items: usize = get(opts, "items", 40);
    let dim: usize = get(opts, "dim", 16);
    let seed: u64 = get(opts, "seed", 7);
    if id == 0 {
        eprintln!("hyperm-node member: --id must be ≥ 1 (0 is the head)");
        return;
    }
    let Some(rec) = recorder(opts) else { return };

    let endpoint = match TcpEndpoint::bind(id, &listen) {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("hyperm-node: cannot bind {listen}: {e}");
            return;
        }
    };
    let head_sock = match head_addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hyperm-node: bad --head address {head_addr}: {e}");
            return;
        }
    };
    if let Err(e) = endpoint.connect(0, head_sock) {
        eprintln!("hyperm-node: cannot reach head at {head_addr}: {e}");
        return;
    }
    println!(
        "hyperm-node member {id}: listening on {}, head at {head_addr}",
        endpoint.local_addr()
    );

    // Join with our own collection: slot 1000+id keeps member data
    // disjoint from the head's initial peers.
    let data = collection(1000 + id as usize, items, dim, seed);
    let mut runtime = NodeRuntime::new(
        endpoint,
        Role::Member {
            head: 0,
            peer: None,
        },
    )
    .with_recorder(rec.clone());
    match runtime.join_network(&data, Duration::from_secs(30)) {
        Ok(peer) => println!("hyperm-node member {id}: joined as overlay peer {peer}"),
        Err(e) => {
            eprintln!("hyperm-node member {id}: join failed: {e}");
            return;
        }
    }
    if let Err(e) = runtime.serve_until_shutdown() {
        eprintln!("hyperm-node: serve loop failed: {e}");
        return;
    }
    rec.flush();
    println!("hyperm-node member {id}: shut down cleanly");
}

fn help() {
    println!(
        "hyperm-node — Hyper-M node daemon (TCP, length-prefixed frames)

USAGE:
  hyperm-node head   --listen ADDR [--peers N] [--items M] [--dim D] \\
                     [--levels L] [--clusters K] [--seed S] [--trace PATH]
  hyperm-node member --listen ADDR --head ADDR --id I [--items M] [--dim D] \\
                     [--seed S] [--trace PATH]

The head owns the overlay network; members join it over the wire and
relay client requests. `--trace PATH` streams the node's telemetry as
JSONL to PATH (transport + overlay share one recorder). Stop any node
with `hyperm-client --node ADDR shutdown`."
    );
}
