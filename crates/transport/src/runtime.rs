//! The node runtime: serving the Hyper-M message protocol over any
//! [`Transport`], plus the request/response [`Client`] the CLI bins use.
//!
//! Deployment shape (the chordht-style node/client/monitor split): one
//! **head** node owns the [`HypermNetwork`] — the overlay state the
//! single-process simulator always owned — and serves every protocol
//! request against it, running exactly the same entry points
//! (`range_query`, `insert_item`, `join_peer`, …) a direct caller would,
//! so transport-mediated answers are bit-identical to in-process ones
//! (asserted by the `transport_equivalence` test). **Member** nodes hold
//! a transport address and relay protocol traffic to the head; they join
//! the overlay with [`NodeRuntime::join_network`], which ships their
//! collection in a `Join` frame. Clients may connect to *any* node:
//! members forward requests head-ward and relay the replies back, so the
//! cluster behaves as one service.
//!
//! Every inbound frame was decoded by the hardened codec, but the
//! runtime still validates semantics (levels in range, dimensions
//! matching, peers alive) before touching the network — a remote frame
//! must never be able to panic a node.

use crate::{Envelope, PeerId, Transport, TransportError};
use hyperm_can::codec::kind;
use hyperm_can::{Message, StoredObject};
use hyperm_cluster::Dataset;
use hyperm_core::{HypermNetwork, InsertPolicy};
use hyperm_sim::{Backoff, OpStats};
use hyperm_telemetry::{
    counters, names, JsonObj, Recorder, SpanId, TraceCtx, Window, WindowConfig,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Smallest effective reply timeout. A literal `Duration::ZERO` would
/// make the deadline check fail before the first receive even when the
/// reply is already queued; clamping to one tick keeps zero-timeout
/// configs live (mirrors the `FaultInjector` `retry_timeout = 0` clamp).
pub const MIN_TIMEOUT: Duration = Duration::from_millis(10);

/// Request kinds safe to resend after a timeout (idempotent at the
/// head). Reads, scrapes and heartbeats always are; `Join` is because
/// the head's rejoin map resolves a duplicate join to the peer's
/// existing overlay id. `Put` and `Publish` mutate (a resend whose
/// first copy actually landed would double-apply) and `Shutdown` races
/// its own effect, so those get exactly one attempt.
///
/// `hyperm-lint`'s `proto-retry-set` rule asserts this stays a subset
/// of [`kind::IDEMPOTENT`]: growing the retry set requires declaring
/// the kind idempotent at the protocol layer first.
pub const RESENDABLE_KINDS: &[u8] = &[
    kind::QUERY,
    kind::GET,
    kind::ROUTE,
    kind::FETCH,
    kind::MONITOR,
    kind::STATS,
    kind::PING,
    kind::JOIN,
];

fn is_resendable(k: u8) -> bool {
    RESENDABLE_KINDS.contains(&k)
}

/// Liveness bookkeeping for one peer, maintained by [`NodeRuntime`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerLiveness {
    /// Frame-clock value when this peer was last heard from.
    pub last_heard_frame: u64,
    /// Heartbeats sent since, with no frame heard back.
    pub outstanding_pings: u32,
}

/// What one [`NodeRuntime::serve_one`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// A message was received and handled.
    Handled,
    /// Nothing arrived within the timeout.
    Idle,
    /// A `Shutdown` request was served; the loop should exit.
    Shutdown,
}

/// What this node is in the cluster.
pub enum Role {
    /// Owns the [`HypermNetwork`] and answers protocol requests.
    Head(Box<HypermNetwork>),
    /// Relays protocol traffic to the head node.
    Member {
        /// Transport id of the head node.
        head: PeerId,
        /// Overlay peer id assigned by a successful join (if any).
        peer: Option<u64>,
    },
}

/// A protocol server bound to one transport endpoint.
pub struct NodeRuntime<T: Transport> {
    transport: T,
    role: Role,
    recorder: Recorder,
    span: SpanId,
    backlog: VecDeque<Envelope>,
    /// Sliding-window metrics, always on: the `Stats` protocol request
    /// snapshots it, `hyperm-monitor --watch` aggregates it cluster-wide.
    window: Window,
    /// Frames handled so far — the window's (and runtime recorder's)
    /// clock, so window contents depend only on traffic, not wall time.
    frames: u64,
    /// Monotone scrape sequence stamped into monitor/stats JSON.
    scrape_seq: u64,
    /// Fresh request-correlation tags for frames this runtime originates
    /// (joins, head-forwards, heartbeats).
    req_seq: u64,
    /// Heartbeat sequence for member→head pings.
    ping_seq: u64,
    /// Per-peer liveness: last-heard frame and missed-ping count.
    liveness: BTreeMap<PeerId, PeerLiveness>,
    /// Member-side: the head has missed too many pings and is presumed
    /// dead; forwarded requests fail fast until it is heard again.
    degraded: bool,
    /// Head-side: transport peer → overlay peer for every member that
    /// joined, so a crash-restarted member's repeat `Join` resyncs to
    /// its existing overlay id instead of admitting a duplicate.
    joined: BTreeMap<PeerId, u64>,
    /// How long a member waits for the head to answer a forwarded
    /// request before retrying or failing the client ([`MIN_TIMEOUT`]-
    /// clamped).
    pub forward_timeout: Duration,
    /// Attempts a member makes per resendable forwarded request.
    pub forward_attempts: u32,
    /// Backoff schedule (in ticks) between forward attempts.
    pub forward_backoff: Backoff,
    /// Wall-clock length of one backoff tick.
    pub retry_tick: Duration,
    /// Member-side: consecutive unanswered pings before the head is
    /// declared down and the runtime reports itself degraded.
    pub missed_ping_threshold: u32,
}

impl<T: Transport> NodeRuntime<T> {
    /// A runtime serving `role` over `transport`.
    pub fn new(transport: T, role: Role) -> Self {
        let window = Window::new(WindowConfig {
            levels: match &role {
                Role::Head(net) => net.levels(),
                Role::Member { .. } => WindowConfig::default().levels,
            },
            ..WindowConfig::default()
        });
        Self {
            transport,
            role,
            recorder: Recorder::disabled(),
            span: SpanId::NONE,
            backlog: VecDeque::new(),
            window,
            frames: 0,
            scrape_seq: 0,
            req_seq: 0,
            ping_seq: 0,
            liveness: BTreeMap::new(),
            degraded: false,
            joined: BTreeMap::new(),
            forward_timeout: Duration::from_secs(30),
            forward_attempts: 2,
            forward_backoff: Backoff::exponential(1, 4),
            retry_tick: Duration::from_millis(25),
            missed_ping_threshold: 3,
        }
    }

    /// Member-side: whether the head is presumed dead (missed-ping
    /// threshold exceeded with nothing heard since). Heads are never
    /// degraded.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Per-peer liveness table (last-heard frame, outstanding pings).
    pub fn liveness(&self) -> &BTreeMap<PeerId, PeerLiveness> {
        &self.liveness
    }

    /// The runtime's sliding-window metrics.
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// Attach a telemetry recorder: the runtime emits a `serve` span per
    /// handled request and `forward`/`frame_drop` instants. This recorder
    /// is the *runtime's* — it is deliberately separate from any recorder
    /// installed in the wrapped [`HypermNetwork`], so transport tracing
    /// never perturbs the network's own event stream.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The wrapped network (head only).
    pub fn network(&self) -> Option<&HypermNetwork> {
        match &self.role {
            Role::Head(net) => Some(net),
            Role::Member { .. } => None,
        }
    }

    /// The underlying transport endpoint.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The overlay peer id this member joined as (members only).
    pub fn member_peer(&self) -> Option<u64> {
        match &self.role {
            Role::Head(_) => None,
            Role::Member { peer, .. } => *peer,
        }
    }

    /// Member bootstrap: ship `items` to the head in a `Join` frame and
    /// record the overlay peer id it assigns.
    pub fn join_network(
        &mut self,
        items: &Dataset,
        timeout: Duration,
    ) -> Result<u64, TransportError> {
        let Role::Member { head, .. } = &self.role else {
            return Err(TransportError::Rejected("head nodes do not join"));
        };
        let head = *head;
        let dim =
            u16::try_from(items.dim()).map_err(|_| TransportError::Rejected("dim too large"))?;
        let mut rows = Vec::with_capacity(items.len() * items.dim());
        for i in 0..items.len() {
            rows.extend_from_slice(items.row(i));
        }
        self.req_seq += 1;
        let req_id = self.req_seq;
        self.transport.send_tagged(
            head,
            req_id,
            &Message::Join {
                peer: self.transport.local(),
                dim,
                rows,
            },
        )?;
        let reply = self.await_reply(head, kind::JOIN_ACK, req_id, timeout)?;
        match reply {
            Message::JoinAck { peer, .. } => {
                if let Role::Member { peer: slot, .. } = &mut self.role {
                    *slot = Some(peer);
                }
                Ok(peer)
            }
            _ => Err(TransportError::Rejected("join refused")),
        }
    }

    /// Wait for a `want`-kind (or failure-`Ack`) message from `from`
    /// carrying the request-correlation tag `req_id`, parking unrelated
    /// traffic in the backlog for the serve loop. Replies from `from`
    /// with the right shape but a *stale* tag — answers to an attempt
    /// that already timed out — are discarded (never backlogged: the
    /// backlog would replay them into the next await and mis-correlate).
    fn await_reply(
        &mut self,
        from: PeerId,
        want: u8,
        req_id: u64,
        timeout: Duration,
    ) -> Result<Message, TransportError> {
        let deadline = Instant::now() + timeout.max(MIN_TIMEOUT);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            let env = self.transport.recv_timeout(deadline - now)?;
            let is_reply = env.from == from
                && (env.msg.kind() == want || matches!(env.msg, Message::Ack { ok: false, .. }));
            if !is_reply {
                self.backlog.push_back(env);
                continue;
            }
            if env.req_id != req_id {
                self.recorder.event(
                    self.span,
                    names::STALE_REPLY,
                    vec![
                        ("from", env.from.into()),
                        ("kind", env.msg.kind_name().into()),
                    ],
                );
                if let Some(m) = self.recorder.metrics() {
                    m.add(names::STALE_REPLY, 1);
                }
                continue;
            }
            if let Message::Ack { ok: false, .. } = env.msg {
                return Err(TransportError::Rejected("request refused by peer"));
            }
            return Ok(env.msg);
        }
    }

    /// Serve until a `Shutdown` request arrives or the transport closes.
    pub fn serve_until_shutdown(&mut self) -> Result<(), TransportError> {
        loop {
            match self.serve_one(Duration::from_millis(200)) {
                Ok(ServeOutcome::Shutdown) => return Ok(()),
                Ok(_) => {}
                Err(TransportError::Closed) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    /// Handle at most one inbound message (backlogged traffic first).
    pub fn serve_one(&mut self, timeout: Duration) -> Result<ServeOutcome, TransportError> {
        let env = match self.backlog.pop_front() {
            Some(env) => env,
            None => match self.transport.recv_timeout(timeout) {
                Ok(env) => env,
                Err(TransportError::Timeout) => {
                    self.idle_tick();
                    return Ok(ServeOutcome::Idle);
                }
                Err(e) => return Err(e),
            },
        };
        // The frame counter is the runtime's clock: it stamps trace events
        // and drives the window, so neither depends on wall time.
        self.frames += 1;
        self.window.advance(self.frames);
        self.recorder.set_time(self.frames);
        self.note_heard(env.from);
        let ctx = msg_ctx(&env.msg);
        let mut fields = vec![
            ("from", env.from.into()),
            ("kind", env.msg.kind_name().into()),
        ];
        if !ctx.is_none() {
            // The cross-process stitch key: `forensics::merge_streams`
            // re-parents this serve span under span `ctx_span` of the
            // stream scraped from node `from`.
            fields.push(("ctx_trace", ctx.trace_id.into()));
            fields.push(("ctx_span", ctx.parent_span.into()));
        }
        let span = self.recorder.span(self.span, names::SERVE, fields);
        let outcome = self.dispatch(env, span);
        self.recorder.end(span, names::SERVE, vec![]);
        outcome
    }

    /// Any frame from a peer proves it alive: reset its missed-ping
    /// count, and clear the member's degraded state if the frame came
    /// from a head previously declared down.
    fn note_heard(&mut self, from: PeerId) {
        let frame = self.frames;
        let live = self.liveness.entry(from).or_default();
        live.last_heard_frame = frame;
        live.outstanding_pings = 0;
        if let Role::Member { head, .. } = &self.role {
            if from == *head && self.degraded {
                self.degraded = false;
                self.recorder
                    .event(self.span, names::REJOIN, vec![("peer", from.into())]);
                if let Some(m) = self.recorder.metrics() {
                    m.add(names::REJOIN, 1);
                }
            }
        }
    }

    /// An idle serve tick: members heartbeat the head. Each tick sends
    /// one `Ping` and counts it outstanding; any frame heard from the
    /// head (the `Pong`, usually) resets the count, so it only climbs
    /// while the head is actually silent. Crossing the threshold marks
    /// the runtime degraded: forwarded requests fail fast instead of
    /// each stalling a full forward timeout against a dead head.
    fn idle_tick(&mut self) {
        let Role::Member { head, .. } = &self.role else {
            return;
        };
        let head = *head;
        self.ping_seq += 1;
        self.req_seq += 1;
        let _ =
            self.transport
                .send_tagged(head, self.req_seq, &Message::Ping { seq: self.ping_seq });
        let threshold = self.missed_ping_threshold;
        let live = self.liveness.entry(head).or_default();
        live.outstanding_pings = live.outstanding_pings.saturating_add(1);
        let missed = live.outstanding_pings;
        if missed > threshold && !self.degraded {
            self.degraded = true;
            self.recorder.event(
                self.span,
                names::PEER_DOWN,
                vec![("peer", head.into()), ("missed", u64::from(missed).into())],
            );
            if let Some(m) = self.recorder.metrics() {
                m.add(names::PEER_DOWN, 1);
            }
        }
    }

    fn dispatch(
        &mut self,
        env: Envelope,
        serve_span: SpanId,
    ) -> Result<ServeOutcome, TransportError> {
        let Envelope { from, req_id, msg } = env;
        if matches!(msg, Message::Hello { .. }) {
            return Ok(ServeOutcome::Handled);
        }
        if let Message::Ping { seq } = msg {
            // Wire heartbeat: every role answers, echoing the
            // requester's correlation tag.
            self.recorder.event(
                serve_span,
                names::PING,
                vec![("from", from.into()), ("seq", seq.into())],
            );
            if let Some(m) = self.recorder.metrics() {
                m.add(names::PING, 1);
            }
            let _ = self
                .transport
                .send_tagged(from, req_id, &Message::Pong { seq });
            return Ok(ServeOutcome::Handled);
        }
        if let Message::Pong { seq } = msg {
            // Liveness bookkeeping already happened in `serve_one` (any
            // frame from a peer proves it alive); just make it visible.
            self.recorder.event(
                serve_span,
                names::PONG,
                vec![("from", from.into()), ("seq", seq.into())],
            );
            if let Some(m) = self.recorder.metrics() {
                m.add(names::PONG, 1);
            }
            return Ok(ServeOutcome::Handled);
        }
        if matches!(msg, Message::Shutdown) {
            let _ = self.transport.send_tagged(
                from,
                req_id,
                &Message::Ack {
                    seq: u64::from(kind::SHUTDOWN),
                    ok: true,
                },
            );
            self.transport.close();
            return Ok(ServeOutcome::Shutdown);
        }
        if matches!(msg, Message::Monitor) {
            self.scrape_seq += 1;
            let json = self.monitor_json();
            let _ = self
                .transport
                .send_tagged(from, req_id, &Message::MonitorAck { json });
            return Ok(ServeOutcome::Handled);
        }
        if matches!(msg, Message::Stats) {
            // Both roles serve their own window: the monitor scrapes every
            // node and merges, it does not ask the head about members.
            self.scrape_seq += 1;
            let json = self.stats_json();
            if let Some(m) = self.recorder.metrics() {
                m.add(counters::STATS_SERVED, 1);
            }
            self.recorder.event(
                serve_span,
                names::STATS,
                vec![("seq", self.scrape_seq.into())],
            );
            let _ = self
                .transport
                .send_tagged(from, req_id, &Message::StatsAck { json });
            return Ok(ServeOutcome::Handled);
        }
        let request_kind = msg.kind();
        match &mut self.role {
            Role::Head(net) => {
                match Message::reply_kind_of(request_kind) {
                    Some(expected) => {
                        // Crash-rejoin: a transport peer that already
                        // joined presents `Join` again after restarting.
                        // The head owns every item, so rejoining is pure
                        // resync — answer with the peer's existing
                        // overlay id and republish its summaries instead
                        // of admitting a duplicate member.
                        if let Message::Join {
                            peer: wire_peer, ..
                        } = &msg
                        {
                            if let Some(&overlay) = self.joined.get(wire_peer) {
                                let t0 = Instant::now();
                                if let Some(p) =
                                    usize::try_from(overlay).ok().filter(|&p| p < net.len())
                                {
                                    let stats = net.refresh_peer_summaries(p);
                                    self.window.record_op(&stats, elapsed_us(t0));
                                }
                                self.recorder.event(
                                    serve_span,
                                    names::REJOIN,
                                    vec![
                                        ("peer", (*wire_peer).into()),
                                        ("overlay_peer", overlay.into()),
                                    ],
                                );
                                if let Some(m) = self.recorder.metrics() {
                                    m.add(names::REJOIN, 1);
                                }
                                let _ = self.transport.send_tagged(
                                    from,
                                    req_id,
                                    &Message::JoinAck {
                                        peer: overlay,
                                        members: net.len() as u64,
                                    },
                                );
                                return Ok(ServeOutcome::Handled);
                            }
                        }
                        let join_wire_peer = match &msg {
                            Message::Join { peer, .. } => Some(*peer),
                            _ => None,
                        };
                        record_heat(&self.window, &msg, net.levels());
                        let t0 = Instant::now();
                        // Scope the network's recorder to this serve span
                        // for the duration of the call: query/publish root
                        // spans parent under it, joining transport and
                        // overlay into one tree. When the runtime recorder
                        // is disabled `serve_span` is NONE, so the scope
                        // stays at its default and streams are untouched.
                        net.recorder().set_scope(serve_span);
                        let out = handle_on_network(net, msg);
                        net.recorder().set_scope(SpanId::NONE);
                        let latency_us = elapsed_us(t0);
                        let reply = match out {
                            Some((reply, stats)) => {
                                self.window.record_op(&stats, latency_us);
                                reply
                            }
                            None => {
                                self.window.record_rejected();
                                Message::Ack {
                                    seq: u64::from(expected),
                                    ok: false,
                                }
                            }
                        };
                        if let (Some(wire), Message::JoinAck { peer, .. }) =
                            (join_wire_peer, &reply)
                        {
                            self.joined.insert(wire, *peer);
                        }
                        let _ = self.transport.send_tagged(from, req_id, &reply);
                    }
                    // A reply or unsolicited ack landed at the head:
                    // nothing awaits it, drop it visibly.
                    None => {
                        self.recorder.event(
                            self.span,
                            names::FRAME_DROP,
                            vec![("from", from.into()), ("kind", msg.kind_name().into())],
                        );
                    }
                }
                Ok(ServeOutcome::Handled)
            }
            Role::Member { head, .. } => {
                let head = *head;
                match Message::reply_kind_of(request_kind) {
                    Some(expected) if from != head => {
                        // A client request: relay head-ward and pipe the
                        // answer back.
                        self.recorder.event(
                            serve_span,
                            names::FORWARD,
                            vec![("from", from.into()), ("kind", msg.kind_name().into())],
                        );
                        if self.degraded {
                            // The head is presumed dead: fail fast
                            // rather than stall each client request for
                            // a full forward timeout.
                            self.window.record_rejected();
                            let _ = self.transport.send_tagged(
                                from,
                                req_id,
                                &Message::Ack {
                                    seq: u64::from(expected),
                                    ok: false,
                                },
                            );
                            return Ok(ServeOutcome::Handled);
                        }
                        // Re-parent the frame's trace context under this
                        // relay's serve span — but ONLY when this runtime
                        // is tracing. Untraced relays forward the frame
                        // byte-identical to what they received, which is
                        // what keeps the transported bit-identity test
                        // honest with TraceCtx on the wire.
                        let msg = if self.recorder.is_enabled() {
                            reparent_ctx(msg, serve_span)
                        } else {
                            msg
                        };
                        let attempts = if is_resendable(request_kind) {
                            self.forward_attempts.max(1)
                        } else {
                            1
                        };
                        let t0 = Instant::now();
                        let mut reply = None;
                        for attempt in 0..attempts {
                            if attempt > 0 {
                                let gap = self.forward_backoff.gap(attempt - 1);
                                std::thread::sleep(
                                    self.retry_tick
                                        .saturating_mul(u32::try_from(gap).unwrap_or(u32::MAX)),
                                );
                                self.recorder.event(
                                    serve_span,
                                    names::RETRY,
                                    vec![
                                        ("attempt", u64::from(attempt).into()),
                                        ("kind", msg.kind_name().into()),
                                    ],
                                );
                                if let Some(m) = self.recorder.metrics() {
                                    m.add(names::RETRY, 1);
                                }
                            }
                            // Fresh tag per attempt: a late answer to an
                            // earlier attempt must not satisfy this one.
                            self.req_seq += 1;
                            let fwd_id = self.req_seq;
                            match self
                                .transport
                                .send_tagged(head, fwd_id, &msg)
                                .and_then(|()| {
                                    self.await_reply(head, expected, fwd_id, self.forward_timeout)
                                }) {
                                Ok(m) => {
                                    reply = Some(m);
                                    break;
                                }
                                // The head answered and refused:
                                // authoritative, do not resend.
                                Err(TransportError::Rejected(_)) => break,
                                Err(_) => {}
                            }
                        }
                        if reply.is_none() && attempts > 1 {
                            self.recorder.event(
                                serve_span,
                                names::GAVE_UP,
                                vec![
                                    ("kind", msg.kind_name().into()),
                                    ("attempts", u64::from(attempts).into()),
                                ],
                            );
                            if let Some(m) = self.recorder.metrics() {
                                m.add(names::GAVE_UP, 1);
                            }
                        }
                        let reply = reply.unwrap_or(Message::Ack {
                            seq: u64::from(expected),
                            ok: false,
                        });
                        record_reply(&self.window, &reply, elapsed_us(t0));
                        let _ = self.transport.send_tagged(from, req_id, &reply);
                    }
                    _ => {
                        self.recorder.event(
                            self.span,
                            names::FRAME_DROP,
                            vec![("from", from.into()), ("kind", msg.kind_name().into())],
                        );
                    }
                }
                Ok(ServeOutcome::Handled)
            }
        }
    }

    /// This node's window snapshot as JSON (what `StatsAck` carries):
    /// stamped with the transport peer id, the monotone scrape sequence
    /// and the frame clock for joinability with monitor output.
    pub fn stats_json(&self) -> String {
        let snap = self
            .window
            .snapshot(self.transport.local(), self.scrape_seq)
            .to_json();
        // Splice the liveness verdict into the snapshot object;
        // `WindowSnapshot::from_json` ignores unknown keys, so merge
        // tooling stays compatible.
        let body = snap.strip_suffix('}').unwrap_or(&snap);
        format!("{body},\"degraded\":{}}}", self.degraded)
    }

    /// Live overlay state as JSON: role, membership, and per-level zones,
    /// neighbour lists and summary counts (heads); role and head address
    /// (members).
    pub fn monitor_json(&self) -> String {
        let mut obj = JsonObj::new()
            .u("transport_peer", self.transport.local())
            .u("node", self.transport.local())
            .u("seq", self.scrape_seq)
            .u("frame", self.frames)
            .b("degraded", self.degraded);
        let live: Vec<String> = self
            .liveness
            .iter()
            .map(|(p, l)| {
                JsonObj::new()
                    .u("peer", *p)
                    .u("last_heard_frame", l.last_heard_frame)
                    .u("outstanding_pings", u64::from(l.outstanding_pings))
                    .render()
            })
            .collect();
        obj = obj.arr("liveness", &live);
        match &self.role {
            Role::Member { head, peer } => {
                obj = obj.s("role", "member").u("head", *head);
                if let Some(p) = peer {
                    obj = obj.u("overlay_peer", *p);
                }
            }
            Role::Head(net) => {
                obj = obj
                    .s("role", "head")
                    .u("members", net.len() as u64)
                    .u("levels", net.levels() as u64)
                    .u("data_dim", net.data_dim() as u64);
                let mut overlays = Vec::with_capacity(net.levels());
                for l in 0..net.levels() {
                    let ov = net.overlay(l);
                    let mut level_obj = JsonObj::new()
                        .u("level", l as u64)
                        .u("dim", ov.dim() as u64)
                        .u(
                            "summaries",
                            ov.stored_items_per_node().iter().copied().sum::<u64>(),
                        );
                    if let Some(can) = ov.as_can() {
                        level_obj = level_obj.u("alive", can.alive_count() as u64);
                        let nodes: Vec<String> = can
                            .nodes()
                            .map(|n| {
                                JsonObj::new()
                                    .u("id", n.id.0 as u64)
                                    .b("alive", n.alive)
                                    .raw("zone_lo", render_coords(n.zone.lo()))
                                    .raw("zone_hi", render_coords(n.zone.hi()))
                                    .raw(
                                        "neighbours",
                                        format!(
                                            "[{}]",
                                            n.neighbours
                                                .iter()
                                                .map(|p| p.0.to_string())
                                                .collect::<Vec<_>>()
                                                .join(",")
                                        ),
                                    )
                                    .u("stored", n.store.len() as u64)
                                    .render()
                            })
                            .collect();
                        level_obj = level_obj.arr("nodes", &nodes);
                    }
                    overlays.push(level_obj.render());
                }
                obj = obj.arr("overlays", &overlays);
                // Live per-peer load, when a `hyperm-load` ledger is
                // installed on the head's network.
                if let Some(ledger) = net.load_ledger() {
                    let loads: Vec<String> = ledger
                        .per_peer()
                        .iter()
                        .enumerate()
                        .map(|(p, l)| {
                            JsonObj::new()
                                .u("peer", p as u64)
                                .u("events", l.events())
                                .u("queries_served", l.queries_served)
                                .u("floods_relayed", l.floods_relayed)
                                .u("fetches_answered", l.fetches_answered)
                                .u("bytes", l.bytes)
                                .u("retries", l.retries)
                                .render()
                        })
                        .collect();
                    obj = obj.arr("load", &loads);
                }
            }
        }
        obj.render_pretty()
    }
}

/// The trace context a frame carries, if its kind does.
fn msg_ctx(msg: &Message) -> TraceCtx {
    match msg {
        Message::Query { ctx, .. } | Message::Fetch { ctx, .. } | Message::Publish { ctx, .. } => {
            *ctx
        }
        _ => TraceCtx::NONE,
    }
}

/// The frame with its trace context re-parented under `span` (relay
/// stitching). Frames without a context slot pass through unchanged.
fn reparent_ctx(msg: Message, span: SpanId) -> Message {
    match msg {
        Message::Query {
            centre,
            eps,
            budget,
            ctx,
        } => Message::Query {
            centre,
            eps,
            budget,
            ctx: ctx.reparent(span),
        },
        Message::Fetch {
            peer,
            centre,
            eps,
            ctx,
        } => Message::Fetch {
            peer,
            centre,
            eps,
            ctx: ctx.reparent(span),
        },
        Message::Publish {
            level,
            replicate,
            object,
            ctx,
        } => Message::Publish {
            level,
            replicate,
            object,
            ctx: ctx.reparent(span),
        },
        other => other,
    }
}

/// Microseconds since `t0`, saturating.
fn elapsed_us(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Charge the request's wavelet levels to the window's heat series: a
/// range query's phase 1 touches every level; publish/get/route name one.
fn record_heat(window: &Window, msg: &Message, levels: usize) {
    match msg {
        Message::Query { .. } => {
            for l in 0..levels {
                window.record_level(l);
            }
        }
        Message::Publish { level, .. }
        | Message::Get { level, .. }
        | Message::Route { level, .. } => {
            window.record_level(usize::from(*level));
        }
        _ => {}
    }
}

/// Record one served request in the window: failure acks count as
/// rejected; query replies carry their simulated overlay cost, everything
/// else charges host latency only.
fn record_reply(window: &Window, reply: &Message, latency_us: u64) {
    match reply {
        Message::Ack { ok: false, .. } => window.record_rejected(),
        Message::QueryAck {
            hops,
            messages,
            bytes,
            ..
        } => {
            window.record_op(
                &OpStats {
                    hops: *hops,
                    messages: *messages,
                    bytes: *bytes,
                    retries: 0,
                    failed_routes: 0,
                },
                latency_us,
            );
        }
        _ => window.record_op(&OpStats::zero(), latency_us),
    }
}

fn render_coords(v: &[f64]) -> String {
    format!(
        "[{}]",
        v.iter()
            .map(|x| format!("{x:.6}"))
            .collect::<Vec<_>>()
            .join(",")
    )
}

/// The first alive peer, for use as routing/query origin when the
/// requester is a client with no overlay presence.
fn entry_peer(net: &HypermNetwork) -> Option<usize> {
    (0..net.len()).find(|&p| net.is_alive(p))
}

/// Serve one protocol request against the network. `None` = the request
/// was invalid (bad level/dimension/peer) and becomes a failure ack.
/// Every call here is the same public entry point an in-process caller
/// would use — this function adds validation, never behaviour. The
/// returned [`OpStats`] is the op's simulated overlay cost (zero for ops
/// that have none), which the runtime feeds its metrics window.
fn handle_on_network(net: &mut HypermNetwork, msg: Message) -> Option<(Message, OpStats)> {
    match msg {
        Message::Join { dim, rows, .. } => {
            if dim == 0 || usize::from(dim) != net.data_dim() {
                return None;
            }
            if !rows.iter().all(|x| x.is_finite()) {
                return None;
            }
            let items = Dataset::from_flat(rows, usize::from(dim));
            let report = net.join_peer(items).ok()?;
            Some((
                Message::JoinAck {
                    peer: report.peer as u64,
                    members: net.len() as u64,
                },
                OpStats::zero(),
            ))
        }
        Message::Route { level, key } => {
            let l = usize::from(level);
            if l >= net.levels() || key.len() != net.overlay(l).dim() {
                return None;
            }
            let owner = net.overlay(l).as_can()?.try_owner_of(&key)?;
            Some((
                Message::RouteAck {
                    level,
                    owner: owner.0 as u64,
                },
                OpStats::zero(),
            ))
        }
        Message::Publish {
            level,
            replicate,
            object,
            ..
        } => {
            let object_id = object.id;
            let out = net.publish_object(usize::from(level), object, replicate)?;
            Some((
                Message::PublishAck {
                    level,
                    object_id,
                    replicas: u32::try_from(out.replicas).unwrap_or(u32::MAX),
                    targets: u32::try_from(out.targets).unwrap_or(u32::MAX),
                },
                out.stats,
            ))
        }
        Message::Put {
            peer,
            item,
            republish,
        } => {
            let p = usize::try_from(peer).ok()?;
            if p >= net.len() || !net.is_alive(p) || item.len() != net.data_dim() {
                return None;
            }
            if !item.iter().all(|x| x.is_finite()) {
                return None;
            }
            let index = net.peer(p).items.len() as u64;
            let policy = if republish {
                InsertPolicy::Republish
            } else {
                InsertPolicy::StaleSummaries
            };
            net.insert_item(p, &item, policy);
            Some((Message::PutAck { peer, index }, OpStats::zero()))
        }
        Message::Get { level, key } => {
            let l = usize::from(level);
            if l >= net.levels() || key.len() != net.overlay(l).dim() {
                return None;
            }
            if !key.iter().all(|x| x.is_finite()) {
                return None;
            }
            let from = hyperm_sim::NodeId(entry_peer(net)?);
            let (objects, stats) = net.overlay(l).point_lookup(from, &key);
            Some((Message::GetAck { level, objects }, stats))
        }
        Message::Query {
            centre,
            eps,
            budget,
            ..
        } => {
            if centre.len() != net.data_dim() {
                return None;
            }
            let from_peer = entry_peer(net)?;
            let peer_budget = if budget == u32::MAX {
                None
            } else {
                Some(budget as usize)
            };
            let res = net.range_query(from_peer, &centre, eps, peer_budget);
            Some((
                Message::QueryAck {
                    items: res
                        .items
                        .iter()
                        .map(|&(p, i)| (p as u64, i as u64))
                        .collect(),
                    hops: res.stats.hops,
                    messages: res.stats.messages,
                    bytes: res.stats.bytes,
                },
                res.stats,
            ))
        }
        Message::Fetch {
            peer, centre, eps, ..
        } => {
            let p = usize::try_from(peer).ok()?;
            if p >= net.len() || !net.is_alive(p) || centre.len() != net.data_dim() {
                return None;
            }
            let indices = net
                .peer(p)
                .local_range(&centre, eps)
                .into_iter()
                .map(|i| i as u64)
                .collect();
            Some((Message::FetchAck { peer, indices }, OpStats::zero()))
        }
        // Hello/Monitor/Stats/Shutdown are handled before dispatch;
        // replies have no reply_kind and never reach here.
        _ => None,
    }
}

/// Retry and timeout policy for a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-attempt reply timeout ([`MIN_TIMEOUT`]-clamped at use).
    pub timeout: Duration,
    /// Total attempts for resendable (idempotent) request kinds.
    /// Non-resendable kinds (`Put`, `Publish`, `Shutdown`) always get
    /// exactly one attempt regardless.
    pub attempts: u32,
    /// Backoff schedule between attempts, in ticks.
    pub backoff: Backoff,
    /// Wall-clock length of one backoff tick.
    pub retry_tick: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(30),
            attempts: 3,
            backoff: Backoff::exponential(1, 8),
            retry_tick: Duration::from_millis(25),
        }
    }
}

/// Request/response wrapper over a [`Transport`]: what `hyperm-client`
/// and `hyperm-monitor` (and the integration tests) speak.
///
/// Every attempt is stamped with a fresh non-zero request-correlation
/// tag, and only a reply echoing the *current* attempt's tag is
/// returned: an answer to an attempt that already timed out is discarded
/// (`stale_reply` telemetry), never mis-returned to a later request.
/// Resendable kinds are retried under the configured [`Backoff`];
/// exhausting the budget emits `gave_up` and surfaces the last error.
pub struct Client<T: Transport> {
    transport: T,
    node: PeerId,
    /// Timeout/retry policy.
    pub config: ClientConfig,
    /// Trace context stamped into query/fetch/publish frames. Default
    /// [`TraceCtx::NONE`] (untraced — frames carry zeroes); set a
    /// non-zero `trace_id` to tag a distributed operation so the nodes'
    /// streams stitch into one tree.
    pub trace: TraceCtx,
    recorder: Recorder,
    req_seq: AtomicU64,
}

impl<T: Transport> Client<T> {
    /// A client whose requests go to transport peer `node`.
    pub fn new(transport: T, node: PeerId) -> Self {
        Self {
            transport,
            node,
            config: ClientConfig::default(),
            trace: TraceCtx::NONE,
            recorder: Recorder::disabled(),
            req_seq: AtomicU64::new(0),
        }
    }

    /// This client with `trace` stamped into every traceable request.
    pub fn with_trace(mut self, trace: TraceCtx) -> Self {
        self.trace = trace;
        self
    }

    /// This client with a timeout/retry policy.
    pub fn with_config(mut self, config: ClientConfig) -> Self {
        self.config = config;
        self
    }

    /// This client with a telemetry recorder: retries, exhausted retry
    /// budgets and discarded stale replies become `retry` / `gave_up` /
    /// `stale_reply` events and metrics counters.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The underlying transport endpoint.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    fn request(&self, msg: &Message) -> Result<Message, TransportError> {
        let expected = Message::reply_kind_of(msg.kind())
            .ok_or(TransportError::Rejected("not a request message"))?;
        let attempts = if is_resendable(msg.kind()) {
            self.config.attempts.max(1)
        } else {
            1
        };
        let mut last = TransportError::Timeout;
        for attempt in 0..attempts {
            if attempt > 0 {
                let gap = self.config.backoff.gap(attempt - 1);
                std::thread::sleep(
                    self.config
                        .retry_tick
                        .saturating_mul(u32::try_from(gap).unwrap_or(u32::MAX)),
                );
                self.recorder.event(
                    SpanId::NONE,
                    names::RETRY,
                    vec![
                        ("attempt", u64::from(attempt).into()),
                        ("kind", msg.kind_name().into()),
                    ],
                );
                if let Some(m) = self.recorder.metrics() {
                    m.add(names::RETRY, 1);
                }
            }
            // Fresh non-zero tag per attempt: the transport may deliver
            // a late reply to an earlier attempt, and it must not be
            // mistaken for this one's.
            let req_id = self.req_seq.fetch_add(1, Ordering::Relaxed) + 1;
            if let Err(e) = self.transport.send_tagged(self.node, req_id, msg) {
                match e {
                    TransportError::Closed => return Err(e),
                    _ => {
                        last = e;
                        continue;
                    }
                }
            }
            match self.await_reply(req_id, expected) {
                Ok(reply) => return Ok(reply),
                // An explicit refusal is authoritative, and a closed
                // endpoint cannot recover by resending.
                Err(e @ (TransportError::Rejected(_) | TransportError::Closed)) => return Err(e),
                Err(e) => last = e,
            }
        }
        if attempts > 1 {
            self.recorder.event(
                SpanId::NONE,
                names::GAVE_UP,
                vec![
                    ("kind", msg.kind_name().into()),
                    ("attempts", u64::from(attempts).into()),
                ],
            );
            if let Some(m) = self.recorder.metrics() {
                m.add(names::GAVE_UP, 1);
            }
        }
        Err(last)
    }

    fn await_reply(&self, req_id: u64, expected: u8) -> Result<Message, TransportError> {
        let deadline = Instant::now() + self.config.timeout.max(MIN_TIMEOUT);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            let env = self.transport.recv_timeout(deadline - now)?;
            if env.from != self.node {
                continue;
            }
            let is_failure = matches!(env.msg, Message::Ack { ok: false, .. });
            if env.msg.kind() != expected && !is_failure {
                continue;
            }
            if env.req_id != req_id {
                // A reply to an attempt that already timed out:
                // returning it would answer the wrong request.
                self.recorder.event(
                    SpanId::NONE,
                    names::STALE_REPLY,
                    vec![
                        ("from", env.from.into()),
                        ("kind", env.msg.kind_name().into()),
                    ],
                );
                if let Some(m) = self.recorder.metrics() {
                    m.add(names::STALE_REPLY, 1);
                }
                continue;
            }
            if is_failure {
                return Err(TransportError::Rejected("request refused by node"));
            }
            return Ok(env.msg);
        }
    }

    /// Insert `item` into peer `peer`'s collection. Returns the item's
    /// new local index.
    pub fn put(&self, peer: u64, item: &[f64], republish: bool) -> Result<u64, TransportError> {
        match self.request(&Message::Put {
            peer,
            item: item.to_vec(),
            republish,
        })? {
            Message::PutAck { index, .. } => Ok(index),
            _ => Err(TransportError::Rejected("unexpected reply")),
        }
    }

    /// Stored summary spheres covering `key` in the level-`level` overlay.
    pub fn get(&self, level: u16, key: &[f64]) -> Result<Vec<StoredObject>, TransportError> {
        match self.request(&Message::Get {
            level,
            key: key.to_vec(),
        })? {
            Message::GetAck { objects, .. } => Ok(objects),
            _ => Err(TransportError::Rejected("unexpected reply")),
        }
    }

    /// Range query: items within `eps` of `centre`, as
    /// `(peer, local index)` pairs, plus `(hops, messages, bytes)` cost.
    #[allow(clippy::type_complexity)]
    pub fn query(
        &self,
        centre: &[f64],
        eps: f64,
        budget: Option<u32>,
    ) -> Result<(Vec<(u64, u64)>, (u64, u64, u64)), TransportError> {
        match self.request(&Message::Query {
            centre: centre.to_vec(),
            eps,
            budget: budget.unwrap_or(u32::MAX),
            ctx: self.trace,
        })? {
            Message::QueryAck {
                items,
                hops,
                messages,
                bytes,
            } => Ok((items, (hops, messages, bytes))),
            _ => Err(TransportError::Rejected("unexpected reply")),
        }
    }

    /// Who owns `key` at overlay level `level`.
    pub fn route(&self, level: u16, key: &[f64]) -> Result<u64, TransportError> {
        match self.request(&Message::Route {
            level,
            key: key.to_vec(),
        })? {
            Message::RouteAck { owner, .. } => Ok(owner),
            _ => Err(TransportError::Rejected("unexpected reply")),
        }
    }

    /// Publish a raw sphere object. Returns `(replicas, targets)`.
    pub fn publish(
        &self,
        level: u16,
        object: StoredObject,
        replicate: bool,
    ) -> Result<(u32, u32), TransportError> {
        match self.request(&Message::Publish {
            level,
            replicate,
            object,
            ctx: self.trace,
        })? {
            Message::PublishAck {
                replicas, targets, ..
            } => Ok((replicas, targets)),
            _ => Err(TransportError::Rejected("unexpected reply")),
        }
    }

    /// Direct phase-2 fetch from one peer's collection.
    pub fn fetch(&self, peer: u64, centre: &[f64], eps: f64) -> Result<Vec<u64>, TransportError> {
        match self.request(&Message::Fetch {
            peer,
            centre: centre.to_vec(),
            eps,
            ctx: self.trace,
        })? {
            Message::FetchAck { indices, .. } => Ok(indices),
            _ => Err(TransportError::Rejected("unexpected reply")),
        }
    }

    /// The node's live overlay state as JSON.
    pub fn monitor(&self) -> Result<String, TransportError> {
        match self.request(&Message::Monitor)? {
            Message::MonitorAck { json } => Ok(json),
            _ => Err(TransportError::Rejected("unexpected reply")),
        }
    }

    /// The node's sliding-window metrics snapshot as JSON.
    pub fn stats(&self) -> Result<String, TransportError> {
        match self.request(&Message::Stats)? {
            Message::StatsAck { json } => Ok(json),
            _ => Err(TransportError::Rejected("unexpected reply")),
        }
    }

    /// Ask the node to shut down; waits for its ack.
    pub fn shutdown(&self) -> Result<(), TransportError> {
        match self.request(&Message::Shutdown)? {
            Message::Ack { ok: true, .. } => Ok(()),
            _ => Err(TransportError::Rejected("shutdown refused")),
        }
    }
}
