//! Fault-injecting transport wrapper: deterministic chaos for any
//! [`Transport`].
//!
//! [`ChaosEndpoint`] wraps an inner endpoint and perturbs its **send**
//! path — drops, duplicates, delays, forced disconnects, and a partition
//! window — so the retry/reconnect machinery in the runtime and client
//! can be exercised against mem and TCP transports alike. All decisions
//! are pure functions of `(seed, destination, per-direction counter)`
//! via splitmix64, so a chaos schedule replays identically run after run
//! regardless of thread timing: the nth frame towards peer `p` meets the
//! same fate every time.
//!
//! The receive path passes through untouched (chaos on one direction of
//! a link is the other side's send chaos), and so do transport-internal
//! frames that never cross this wrapper — e.g. the TCP `Hello`
//! handshake, which [`crate::TcpEndpoint`] writes on its own socket
//! before the wrapper sees anything. Chaos therefore models a lossy
//! *link*, not a broken handshake.

use crate::{Envelope, PeerId, Transport, TransportError};
use hyperm_can::Message;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// What a [`ChaosEndpoint`] does to outbound frames. All probabilities
/// are per-mille (0..=1000); everything defaults to "no chaos".
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the per-direction decision stream.
    pub seed: u64,
    /// Probability (‰) an outbound frame is silently dropped: the send
    /// reports success but nothing is delivered — exactly what a lossy
    /// MANET link does to an unacked datagram.
    pub drop_per_mille: u16,
    /// Probability (‰) an outbound frame is delivered twice (retransmit
    /// duplicate). Duplicates carry the same `req_id`.
    pub dup_per_mille: u16,
    /// Probability (‰) an outbound frame is delayed before delivery.
    /// The delay is applied sender-side, so per-link FIFO is preserved.
    pub delay_per_mille: u16,
    /// Upper bound on an injected delay, in milliseconds (the actual
    /// delay is seeded-uniform in `1..=max_delay_ms`).
    pub max_delay_ms: u64,
    /// Every nth frame per direction fails with a truncate-disconnect
    /// (`Io`) error instead of being sent, as if the peer reset the
    /// connection mid-write. `0` disables.
    pub disconnect_every: u64,
    /// A partition window `[start, end)` in per-direction frame counts:
    /// while a direction's counter is inside it, every send fails with
    /// an `Io` error. `None` disables.
    pub partition: Option<(u64, u64)>,
}

impl ChaosConfig {
    /// A config that injects nothing (useful as a builder base).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            drop_per_mille: 0,
            dup_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ms: 0,
            disconnect_every: 0,
            partition: None,
        }
    }

    /// This config with a drop probability.
    pub fn with_drop(mut self, per_mille: u16) -> Self {
        self.drop_per_mille = per_mille;
        self
    }

    /// This config with a duplication probability.
    pub fn with_dup(mut self, per_mille: u16) -> Self {
        self.dup_per_mille = per_mille;
        self
    }

    /// This config with a delay probability and bound.
    pub fn with_delay(mut self, per_mille: u16, max_delay_ms: u64) -> Self {
        self.delay_per_mille = per_mille;
        self.max_delay_ms = max_delay_ms;
        self
    }

    /// This config with a forced disconnect every `n` frames.
    pub fn with_disconnect_every(mut self, n: u64) -> Self {
        self.disconnect_every = n;
        self
    }

    /// This config with a partition window `[start, end)`.
    pub fn with_partition(mut self, start: u64, end: u64) -> Self {
        self.partition = Some((start, end));
        self
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self::quiet(0)
    }
}

/// Counters of what the chaos layer actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames offered to the wrapper.
    pub attempted: u64,
    /// Frames silently dropped (send reported `Ok`).
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames delayed before delivery.
    pub delayed: u64,
    /// Sends failed with a forced disconnect.
    pub disconnects: u64,
    /// Sends refused inside the partition window.
    pub partitioned: u64,
}

struct ChaosState {
    /// Per-destination frame counters: the decision-stream index.
    counters: BTreeMap<PeerId, u64>,
    stats: ChaosStats,
}

/// A [`Transport`] whose outbound frames suffer seeded, deterministic
/// chaos. See the module docs for the fault model.
pub struct ChaosEndpoint<T: Transport> {
    inner: T,
    config: ChaosConfig,
    state: Mutex<ChaosState>,
}

impl<T: Transport> ChaosEndpoint<T> {
    /// Wrap `inner` with the given chaos schedule.
    pub fn new(inner: T, config: ChaosConfig) -> Self {
        Self {
            inner,
            config,
            state: Mutex::new(ChaosState {
                counters: BTreeMap::new(),
                stats: ChaosStats::default(),
            }),
        }
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// What the chaos layer has done so far.
    pub fn stats(&self) -> ChaosStats {
        self.lock().stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// The splitmix64 finalizer: a full-avalanche mix of one u64.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The decision word for frame `n` towards `to` under `seed`. Lane
/// splits the word into independent sub-streams (drop/dup/delay).
fn roll(seed: u64, to: PeerId, n: u64, lane: u64) -> u64 {
    mix(mix(seed ^ mix(to)) ^ n.wrapping_mul(2).wrapping_add(lane))
}

impl<T: Transport> Transport for ChaosEndpoint<T> {
    fn local(&self) -> PeerId {
        self.inner.local()
    }

    fn send_tagged(&self, to: PeerId, req_id: u64, msg: &Message) -> Result<(), TransportError> {
        let cfg = self.config;
        // Take this frame's slot in the direction's decision stream and
        // decide its fate while holding the lock, then act on it after
        // releasing (delays must not serialize unrelated directions).
        let (n, fate) = {
            let mut st = self.lock();
            let n = {
                let c = st.counters.entry(to).or_insert(0);
                let n = *c;
                *c += 1;
                n
            };
            st.stats.attempted += 1;
            let fate = if cfg
                .partition
                .is_some_and(|(start, end)| n >= start && n < end)
            {
                st.stats.partitioned += 1;
                Fate::Partitioned
            } else if cfg.disconnect_every > 0 && n > 0 && n % cfg.disconnect_every == 0 {
                st.stats.disconnects += 1;
                Fate::Disconnect
            } else if roll(cfg.seed, to, n, 0) % 1000 < u64::from(cfg.drop_per_mille) {
                st.stats.dropped += 1;
                Fate::Drop
            } else {
                let dup = roll(cfg.seed, to, n, 1) % 1000 < u64::from(cfg.dup_per_mille);
                let delay = cfg.max_delay_ms > 0
                    && roll(cfg.seed, to, n, 2) % 1000 < u64::from(cfg.delay_per_mille);
                if dup {
                    st.stats.duplicated += 1;
                }
                if delay {
                    st.stats.delayed += 1;
                }
                Fate::Deliver { dup, delay }
            };
            (n, fate)
        };
        match fate {
            Fate::Partitioned => Err(TransportError::Io("chaos: partitioned".into())),
            Fate::Disconnect => Err(TransportError::Io("chaos: connection truncated".into())),
            // The link ate the frame: the sender cannot tell, so this is
            // a success as far as the send contract goes.
            Fate::Drop => Ok(()),
            Fate::Deliver { dup, delay } => {
                if delay {
                    let ms = roll(cfg.seed, to, n, 3) % cfg.max_delay_ms.max(1) + 1;
                    std::thread::sleep(Duration::from_millis(ms));
                }
                self.inner.send_tagged(to, req_id, msg)?;
                if dup {
                    self.inner.send_tagged(to, req_id, msg)?;
                }
                Ok(())
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, TransportError> {
        self.inner.recv_timeout(timeout)
    }

    fn peers(&self) -> Vec<PeerId> {
        self.inner.peers()
    }

    fn close(&self) {
        self.inner.close();
    }
}

enum Fate {
    Partitioned,
    Disconnect,
    Drop,
    Deliver { dup: bool, delay: bool },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemHub;

    fn deliveries(seed: u64, frames: u64) -> Vec<u64> {
        let hub = MemHub::new(1024);
        let a = ChaosEndpoint::new(
            hub.endpoint(1),
            ChaosConfig::quiet(seed).with_drop(300).with_dup(100),
        );
        let b = hub.endpoint(2);
        for seq in 0..frames {
            a.send_tagged(2, seq + 1, &Message::Ping { seq }).unwrap();
        }
        let mut got = Vec::new();
        while let Ok(env) = b.recv_timeout(Duration::from_millis(20)) {
            got.push(env.req_id);
        }
        got
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let first = deliveries(42, 64);
        let second = deliveries(42, 64);
        assert_eq!(first, second, "same seed must replay the same fate");
        assert_ne!(
            first.len() as u64,
            64,
            "a 30% drop rate over 64 frames should lose something"
        );
        assert_ne!(deliveries(7, 64), first, "different seed, different fate");
    }

    #[test]
    fn duplicates_repeat_the_req_id() {
        let got = deliveries(42, 64);
        let mut seen = std::collections::BTreeMap::new();
        for id in &got {
            *seen.entry(*id).or_insert(0u32) += 1;
        }
        assert!(
            seen.values().any(|&c| c == 2),
            "a 10% dup rate over 64 frames should duplicate at least one"
        );
        assert!(seen.values().all(|&c| c <= 2), "at most one duplicate each");
    }

    #[test]
    fn disconnect_and_partition_fail_the_send() {
        let hub = MemHub::new(64);
        let a = ChaosEndpoint::new(
            hub.endpoint(1),
            ChaosConfig::quiet(0).with_disconnect_every(2),
        );
        let _b = hub.endpoint(2);
        assert!(a.send(2, &Message::Monitor).is_ok());
        assert!(a.send(2, &Message::Monitor).is_ok());
        assert!(matches!(
            a.send(2, &Message::Monitor),
            Err(TransportError::Io(_))
        ));
        let p = ChaosEndpoint::new(hub.endpoint(3), ChaosConfig::quiet(0).with_partition(0, 2));
        assert!(matches!(
            p.send(2, &Message::Monitor),
            Err(TransportError::Io(_))
        ));
        assert!(matches!(
            p.send(2, &Message::Monitor),
            Err(TransportError::Io(_))
        ));
        assert!(p.send(2, &Message::Monitor).is_ok());
        assert_eq!(p.stats().partitioned, 2);
        assert_eq!(a.stats().disconnects, 1);
    }
}
