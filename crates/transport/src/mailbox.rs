//! A bounded multi-producer mailbox: the per-peer inbox behind every
//! transport endpoint.
//!
//! The workspace's vendored `crossbeam` stand-in only provides scoped
//! threads, so the channel is hand-built on `Mutex` + two `Condvar`s.
//! Capacity is a hard bound: a sender faced with a full mailbox *blocks*
//! (up to its timeout) instead of growing the queue — this is the
//! backpressure contract DESIGN.md's Transport section documents. Slow
//! receivers therefore throttle their senders; on the TCP path the
//! blocked reader thread additionally stops draining the socket, so the
//! kernel's flow control extends the backpressure to the remote writer.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a send did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The mailbox was closed by the receiver.
    Closed,
    /// The mailbox stayed full for the whole timeout (backpressure).
    Full,
}

/// Why a receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// The mailbox is closed and drained.
    Closed,
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// A bounded FIFO mailbox. Cloning yields another handle to the same
/// queue (any handle may send, receive or close).
pub struct Mailbox<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Mailbox<T> {
    /// A mailbox holding at most `capacity` queued messages (min 1).
    pub fn bounded(capacity: usize) -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    closed: false,
                }),
                capacity: capacity.max(1),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            }),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the mailbox has been closed.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A poisoned mailbox means a peer thread panicked mid-push; the
        // queue itself is still structurally sound, so keep going.
        match self.shared.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Enqueue, blocking up to `timeout` while the mailbox is full.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(SendError::Closed);
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendError::Full);
            }
            let (g, _) = match self.shared.not_full.wait_timeout(state, deadline - now) {
                Ok(r) => r,
                Err(p) => p.into_inner(),
            };
            state = g;
        }
    }

    /// Enqueue without blocking.
    pub fn try_send(&self, value: T) -> Result<(), SendError> {
        self.send_timeout(value, Duration::ZERO)
    }

    /// Enqueue, blocking indefinitely while full (TCP reader threads use
    /// this so socket flow control carries the backpressure).
    pub fn send_blocking(&self, value: T) -> Result<(), SendError> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(SendError::Closed);
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = match self.shared.not_full.wait(state) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Dequeue, blocking up to `timeout` while empty.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.closed {
                return Err(RecvError::Closed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvError::Timeout);
            }
            let (g, _) = match self.shared.not_empty.wait_timeout(state, deadline - now) {
                Ok(r) => r,
                Err(p) => p.into_inner(),
            };
            state = g;
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, RecvError> {
        let mut state = self.lock();
        if let Some(v) = state.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if state.closed {
            Err(RecvError::Closed)
        } else {
            Err(RecvError::Timeout)
        }
    }

    /// Close the mailbox: senders fail immediately, receivers drain what
    /// is left and then get [`RecvError::Closed`].
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_capacity() {
        let mb = Mailbox::bounded(2);
        mb.try_send(1).unwrap();
        mb.try_send(2).unwrap();
        assert_eq!(mb.try_send(3), Err(SendError::Full));
        assert_eq!(mb.try_recv(), Ok(1));
        mb.try_send(3).unwrap();
        assert_eq!(mb.try_recv(), Ok(2));
        assert_eq!(mb.try_recv(), Ok(3));
        assert_eq!(mb.try_recv(), Err(RecvError::Timeout));
    }

    #[test]
    fn close_fails_senders_but_drains_receivers() {
        let mb = Mailbox::bounded(4);
        mb.try_send(7).unwrap();
        mb.close();
        assert_eq!(mb.try_send(8), Err(SendError::Closed));
        assert_eq!(mb.try_recv(), Ok(7));
        assert_eq!(mb.try_recv(), Err(RecvError::Closed));
        assert_eq!(
            mb.recv_timeout(Duration::from_millis(1)),
            Err(RecvError::Closed)
        );
    }

    #[test]
    fn blocked_sender_resumes_when_receiver_drains() {
        let mb = Mailbox::bounded(1);
        mb.try_send(0u64).unwrap();
        let mb2 = mb.clone();
        let t = std::thread::spawn(move || mb2.send_timeout(1, Duration::from_secs(5)));
        // Give the sender a moment to block against the full queue.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(mb.try_recv(), Ok(0));
        t.join().unwrap().unwrap();
        assert_eq!(mb.recv_timeout(Duration::from_secs(1)), Ok(1));
    }

    #[test]
    fn blocking_send_unblocked_by_close() {
        let mb = Mailbox::bounded(1);
        mb.try_send(0u64).unwrap();
        let mb2 = mb.clone();
        let t = std::thread::spawn(move || mb2.send_blocking(1));
        std::thread::sleep(Duration::from_millis(20));
        mb.close();
        assert_eq!(t.join().unwrap(), Err(SendError::Closed));
    }

    #[test]
    fn send_timeout_blocked_on_full_queue_woken_by_close() {
        // The close/backpressure race: a sender parked in `send_timeout`
        // against a full queue must be woken by `close()` with a clean
        // `Closed` — not left to run out its timeout — and the item that
        // was already queued must still drain loss-free afterwards.
        let mb = Mailbox::bounded(1);
        mb.try_send(10u64).unwrap();
        let mb2 = mb.clone();
        let t = std::thread::spawn(move || {
            let t0 = Instant::now();
            let out = mb2.send_timeout(11, Duration::from_secs(30));
            (out, t0.elapsed())
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.close();
        let (out, waited) = t.join().unwrap();
        assert_eq!(out, Err(SendError::Closed));
        assert!(
            waited < Duration::from_secs(5),
            "close must wake the blocked sender, not let it time out ({waited:?})"
        );
        assert_eq!(mb.try_recv(), Ok(10), "queued item survives the close");
        assert_eq!(mb.try_recv(), Err(RecvError::Closed));
    }

    #[test]
    fn recv_timeout_drains_everything_queued_at_close() {
        // Close with multiple items queued: every one of them must come
        // out before `Closed` surfaces, regardless of receive pacing.
        let mb = Mailbox::bounded(8);
        for v in 0..5u64 {
            mb.try_send(v).unwrap();
        }
        let mb2 = mb.clone();
        let t = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match mb2.recv_timeout(Duration::from_secs(5)) {
                    Ok(v) => got.push(v),
                    Err(RecvError::Closed) => return got,
                    Err(RecvError::Timeout) => panic!("drain must not time out"),
                }
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.close();
        assert_eq!(t.join().unwrap(), vec![0, 1, 2, 3, 4], "drain is loss-free");
    }
}
