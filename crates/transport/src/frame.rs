//! Length-prefixed framing of [`Message`] bodies over byte streams.
//!
//! ```text
//! frame: len u32 (little-endian, body length) | body (kind u8 | payload)
//! ```
//!
//! The length prefix is wire-derived and therefore untrusted: it is
//! checked against [`MAX_FRAME`] *before* the body buffer is allocated,
//! mirroring the codec's own pre-validation discipline. Everything past
//! the prefix is `hyperm_can::codec`'s message encoding, so corrupt
//! bodies surface as typed [`CodecError`]s, never panics.

use hyperm_can::codec::{decode_message, encode_message};
use hyperm_can::Message;

use crate::TransportError;
use std::io::{Read, Write};

/// Largest accepted frame body, in bytes. Generous for every legitimate
/// message (a 65 535-d object record is ~512 KiB; `Join` carries whole
/// collections) while still bounding what a hostile length prefix can
/// make a reader allocate.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Encode `msg` and write it as one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> Result<usize, TransportError> {
    let body = encode_message(msg).map_err(TransportError::Codec)?;
    if body.len() > MAX_FRAME {
        return Err(TransportError::FrameTooLarge(body.len()));
    }
    let len = u32::try_from(body.len()).map_err(|_| TransportError::FrameTooLarge(body.len()))?;
    w.write_all(&len.to_le_bytes())
        .map_err(|e| TransportError::Io(e.to_string()))?;
    w.write_all(&body)
        .map_err(|e| TransportError::Io(e.to_string()))?;
    w.flush().map_err(|e| TransportError::Io(e.to_string()))?;
    Ok(4 + body.len())
}

/// Read one length-prefixed frame and decode its body.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Message, TransportError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)
        .map_err(|e| TransportError::Io(e.to_string()))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(TransportError::FrameTooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| TransportError::Io(e.to_string()))?;
    decode_message(&body).map_err(TransportError::Codec)
}

/// Encoded frame length (prefix + body) of a message, for byte
/// accounting. Errors if the message is unencodable.
pub fn frame_len(msg: &Message) -> Result<u64, TransportError> {
    let body = encode_message(msg).map_err(TransportError::Codec)?;
    Ok(4 + body.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let msg = Message::Query {
            centre: vec![0.25, 0.5],
            eps: 0.125,
            budget: u32::MAX,
            ctx: hyperm_telemetry::TraceCtx {
                trace_id: 5,
                parent_span: 9,
            },
        };
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, &msg).unwrap();
        assert_eq!(n, buf.len());
        assert_eq!(n as u64, frame_len(&msg).unwrap());
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), msg);
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            TransportError::FrameTooLarge(_)
        ));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let msg = Message::Monitor;
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        buf.pop();
        buf[0] = 2; // still claims 2-byte body, stream has 1
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            TransportError::Io(_)
        ));
    }

    #[test]
    fn corrupt_body_is_codec_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(250); // unknown kind
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            TransportError::Codec(_)
        ));
    }
}
