//! Length-prefixed framing of [`Message`] bodies over byte streams.
//!
//! ```text
//! frame: len u32 (little-endian, body length) | req_id u64 | body (kind u8 | payload)
//! ```
//!
//! The `req_id` word is the transport-level request-correlation tag: a
//! requester stamps each attempt with a fresh non-zero id and the
//! responder echoes it on the reply, so a late reply from a timed-out
//! attempt can never be mistaken for the answer to the next request.
//! It lives in the frame header (not the codec body) so the message
//! layout — including the `TraceCtx` tail of query/fetch/publish — is
//! untouched. `0` means untagged (handshakes, fire-and-forget frames).
//!
//! The length prefix is wire-derived and therefore untrusted: it is
//! checked against [`MAX_FRAME`] *before* the body buffer is allocated,
//! mirroring the codec's own pre-validation discipline. Everything past
//! the header is `hyperm_can::codec`'s message encoding, so corrupt
//! bodies surface as typed [`CodecError`]s, never panics.
//!
//! [`CodecError`]: hyperm_can::codec::CodecError

use hyperm_can::codec::{decode_message, encode_message};
use hyperm_can::Message;

use crate::TransportError;
use std::io::{Read, Write};

/// Largest accepted frame body, in bytes. Generous for every legitimate
/// message (a 65 535-d object record is ~512 KiB; `Join` carries whole
/// collections) while still bounding what a hostile length prefix can
/// make a reader allocate.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Frame header bytes preceding the body: `len u32 | req_id u64`.
pub const HEADER_LEN: usize = 4 + 8;

/// Encode `msg` and write it as one length-prefixed frame tagged with
/// `req_id` (`0` = untagged).
pub fn write_frame<W: Write>(
    w: &mut W,
    req_id: u64,
    msg: &Message,
) -> Result<usize, TransportError> {
    let body = encode_message(msg).map_err(TransportError::Codec)?;
    if body.len() > MAX_FRAME {
        return Err(TransportError::FrameTooLarge(body.len()));
    }
    let len = u32::try_from(body.len()).map_err(|_| TransportError::FrameTooLarge(body.len()))?;
    w.write_all(&len.to_le_bytes())
        .map_err(|e| TransportError::Io(e.to_string()))?;
    w.write_all(&req_id.to_le_bytes())
        .map_err(|e| TransportError::Io(e.to_string()))?;
    w.write_all(&body)
        .map_err(|e| TransportError::Io(e.to_string()))?;
    w.flush().map_err(|e| TransportError::Io(e.to_string()))?;
    Ok(HEADER_LEN + body.len())
}

/// Read one length-prefixed frame and decode its body. Returns the
/// header's correlation tag alongside the message.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(u64, Message), TransportError> {
    // Two fixed-width reads instead of one 12-byte buffer split: the
    // arrays carry their lengths in the type, so no slice conversion
    // (and no panic path) is left in the decode; the byte layout on the
    // wire is unchanged.
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)
        .map_err(|e| TransportError::Io(e.to_string()))?;
    let mut req_id_bytes = [0u8; HEADER_LEN - 4];
    r.read_exact(&mut req_id_bytes)
        .map_err(|e| TransportError::Io(e.to_string()))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    let req_id = u64::from_le_bytes(req_id_bytes);
    if len > MAX_FRAME {
        return Err(TransportError::FrameTooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| TransportError::Io(e.to_string()))?;
    let msg = decode_message(&body).map_err(TransportError::Codec)?;
    Ok((req_id, msg))
}

/// Encoded frame length (header + body) of a message, for byte
/// accounting. Errors if the message is unencodable.
pub fn frame_len(msg: &Message) -> Result<u64, TransportError> {
    let body = encode_message(msg).map_err(TransportError::Codec)?;
    Ok(HEADER_LEN as u64 + body.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let msg = Message::Query {
            centre: vec![0.25, 0.5],
            eps: 0.125,
            budget: u32::MAX,
            ctx: hyperm_telemetry::TraceCtx {
                trace_id: 5,
                parent_span: 9,
            },
        };
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, 0xFEED_F00D, &msg).unwrap();
        assert_eq!(n, buf.len());
        assert_eq!(n as u64, frame_len(&msg).unwrap());
        let mut cursor = std::io::Cursor::new(buf);
        let (req_id, back) = read_frame(&mut cursor).unwrap();
        assert_eq!(req_id, 0xFEED_F00D);
        assert_eq!(back, msg);
    }

    #[test]
    fn req_id_rides_the_header_not_the_body() {
        // Two frames of the same message with different tags differ only
        // in the 8 header bytes after the length prefix — the codec body
        // (and therefore every body-layout test) is untouched.
        let msg = Message::Monitor;
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_frame(&mut a, 0, &msg).unwrap();
        write_frame(&mut b, u64::MAX, &msg).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[..4], b[..4]);
        assert_ne!(a[4..12], b[4..12]);
        assert_eq!(a[12..], b[12..]);
    }

    #[test]
    fn header_truncated_mid_header_is_io_error() {
        // Six bytes: a full length prefix but only half the req_id tag.
        // Must surface as an Io error from the second fixed-width read,
        // never a slice-conversion panic.
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 2]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            TransportError::Io(_)
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 24]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            TransportError::FrameTooLarge(_)
        ));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let msg = Message::Monitor;
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, &msg).unwrap();
        buf.pop();
        buf[0] = 2; // still claims 2-byte body, stream has 1
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            TransportError::Io(_)
        ));
    }

    #[test]
    fn corrupt_body_is_codec_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.push(250); // unknown kind
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            TransportError::Codec(_)
        ));
    }
}
