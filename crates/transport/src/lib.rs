//! The Hyper-M transport layer: real message passing behind the overlay.
//!
//! Everything above this crate — CAN routing, publication, queries — was
//! built against a single-process simulator. This crate extracts the
//! boundary those components actually need as the [`Transport`] trait
//! (addressed, framed, backpressured message exchange) and provides three
//! implementations:
//!
//! * [`SimHub`]/[`SimEndpoint`] — the existing simulation underlay as a
//!   `Transport`: deterministic, instant, single-threaded delivery that
//!   charges [`hyperm_sim::OpStats`] per frame (hops from an optional
//!   [`hyperm_sim::Underlay`] hop table). The `transport_equivalence`
//!   integration test asserts that driving the network through this
//!   implementation is **bit-identical** to calling it directly —
//!   results, `OpStats`, and telemetry event streams.
//! * [`MemHub`]/[`MemEndpoint`] — peers as long-lived threads exchanging
//!   messages over bounded in-memory mailboxes; full backpressure, no
//!   sockets. The unit-test transport.
//! * [`TcpEndpoint`] — loopback/LAN TCP with length-prefixed frames
//!   ([`frame`]), one reader thread per connection, and the same bounded
//!   inbox. This is what the `hyperm-node` / `hyperm-client` /
//!   `hyperm-monitor` binaries speak.
//!
//! On top of the trait, [`NodeRuntime`] serves the full [`Message`]
//! protocol (join/route/publish/put/get/fetch/query/monitor) around a
//! [`hyperm_core::HypermNetwork`], and [`Client`] is the request/response
//! wrapper the CLI binaries use.
//!
//! Backpressure contract: every endpoint owns a bounded inbox
//! ([`mailbox::Mailbox`]). Senders block up to a timeout when it is full
//! and then fail with [`TransportError::Backpressure`]; TCP reader
//! threads block indefinitely, so kernel flow control pushes back on the
//! remote writer instead.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod frame;
pub mod mailbox;
pub mod mem;
pub mod runtime;
pub mod sim;
pub mod tcp;

pub use chaos::{ChaosConfig, ChaosEndpoint, ChaosStats};
pub use frame::{frame_len, read_frame, write_frame, HEADER_LEN, MAX_FRAME};
pub use mem::{MemEndpoint, MemHub};
pub use runtime::{Client, ClientConfig, NodeRuntime, Role, ServeOutcome};
pub use sim::{SimEndpoint, SimHub};
pub use tcp::TcpEndpoint;

use hyperm_can::codec::CodecError;
use hyperm_can::Message;
use std::time::Duration;

/// Transport-level peer address. Distinct from overlay node ids: a
/// client has a `PeerId` but no overlay zone.
pub type PeerId = u64;

/// A received message, stamped with its sender and the frame header's
/// request-correlation tag (`0` = untagged).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Transport peer that sent the message.
    pub from: PeerId,
    /// Request-correlation tag echoed from the frame header.
    pub req_id: u64,
    /// The decoded message.
    pub msg: Message,
}

/// Errors surfaced by transports and the node runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The endpoint (or its counterparty) is closed.
    Closed,
    /// The destination inbox stayed full for the whole send timeout.
    Backpressure,
    /// Nothing arrived within the receive timeout.
    Timeout,
    /// No route/connection to this peer.
    UnknownPeer(PeerId),
    /// Socket-level failure.
    Io(String),
    /// The peer sent bytes that do not decode.
    Codec(CodecError),
    /// A frame exceeded [`MAX_FRAME`] (hostile length prefix or oversized
    /// payload).
    FrameTooLarge(usize),
    /// The counterparty answered, but with an unexpected or failure
    /// message (e.g. `Ack { ok: false }`).
    Rejected(&'static str),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "endpoint closed"),
            TransportError::Backpressure => write!(f, "destination inbox full (backpressure)"),
            TransportError::Timeout => write!(f, "timed out"),
            TransportError::UnknownPeer(p) => write!(f, "no route to peer {p}"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Codec(e) => write!(f, "codec error: {e}"),
            TransportError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            TransportError::Rejected(what) => write!(f, "request rejected: {what}"),
        }
    }
}

impl TransportError {
    /// Stable machine-readable name of this error's kind, for typed JSON
    /// error objects in the CLI binaries (the human-readable `Display`
    /// string is free to change; this is not).
    pub fn kind_name(&self) -> &'static str {
        match self {
            TransportError::Closed => "closed",
            TransportError::Backpressure => "backpressure",
            TransportError::Timeout => "timeout",
            TransportError::UnknownPeer(_) => "unknown_peer",
            TransportError::Io(_) => "io",
            TransportError::Codec(_) => "codec",
            TransportError::FrameTooLarge(_) => "frame_too_large",
            TransportError::Rejected(_) => "rejected",
        }
    }
}

impl std::error::Error for TransportError {}

/// Addressed, framed message exchange between peers.
///
/// Contract:
/// * `send` is atomic per message: the receiver sees whole [`Message`]s
///   or nothing, never partial frames;
/// * per-sender FIFO: two sends to the same destination arrive in order;
/// * bounded buffering: a full destination inbox blocks the sender and
///   eventually fails with [`TransportError::Backpressure`] — transports
///   never buffer unboundedly;
/// * `recv_timeout` returns messages stamped with the true sender id
///   (on TCP, the id announced by the connection's `Hello` handshake).
pub trait Transport: Send {
    /// This endpoint's peer id.
    fn local(&self) -> PeerId;

    /// Send one message to `to`, untagged (`req_id` 0).
    fn send(&self, to: PeerId, msg: &Message) -> Result<(), TransportError> {
        self.send_tagged(to, 0, msg)
    }

    /// Send one message to `to` with a request-correlation tag stamped
    /// into the frame header. Requesters use a fresh non-zero `req_id`
    /// per attempt; responders echo the request's tag on the reply.
    fn send_tagged(&self, to: PeerId, req_id: u64, msg: &Message) -> Result<(), TransportError>;

    /// Receive the next message, waiting up to `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, TransportError>;

    /// Peers currently reachable from this endpoint (connected or
    /// routable), excluding itself. Sorted ascending.
    fn peers(&self) -> Vec<PeerId>;

    /// Shut the endpoint down: closes the inbox and tears down
    /// connections. Further sends and receives fail with
    /// [`TransportError::Closed`].
    fn close(&self);
}
