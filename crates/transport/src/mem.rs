//! In-memory transport: peers as threads, bounded mailboxes as links.
//!
//! A [`MemHub`] is the shared switchboard; each [`MemEndpoint`] owns a
//! bounded inbox registered with the hub. `send` encodes the message
//! (so every frame that crosses this transport is proven round-trippable
//! — the same codec path TCP uses) and enqueues the envelope with a
//! bounded-wait, surfacing [`TransportError::Backpressure`] when the
//! destination stays full.

use crate::mailbox::{Mailbox, RecvError, SendError};
use crate::{Envelope, PeerId, Transport, TransportError};
use hyperm_can::codec::{decode_message, encode_message};
use hyperm_can::Message;
use hyperm_telemetry::{names, Recorder, SpanId};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default per-endpoint inbox bound.
pub const DEFAULT_INBOX: usize = 256;

/// Default time a sender blocks against a full inbox before giving up.
pub const DEFAULT_SEND_TIMEOUT: Duration = Duration::from_secs(5);

struct HubState {
    inboxes: BTreeMap<PeerId, Mailbox<Envelope>>,
}

/// The shared switchboard connecting [`MemEndpoint`]s.
#[derive(Clone)]
pub struct MemHub {
    state: Arc<Mutex<HubState>>,
    inbox_capacity: usize,
    send_timeout: Duration,
}

impl MemHub {
    /// A hub whose endpoints get inboxes bounded at `inbox_capacity`.
    pub fn new(inbox_capacity: usize) -> Self {
        Self {
            state: Arc::new(Mutex::new(HubState {
                inboxes: BTreeMap::new(),
            })),
            inbox_capacity,
            send_timeout: DEFAULT_SEND_TIMEOUT,
        }
    }

    /// Override how long senders block on a full inbox before failing
    /// with [`TransportError::Backpressure`].
    pub fn with_send_timeout(mut self, timeout: Duration) -> Self {
        self.send_timeout = timeout;
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Register peer `id` and return its endpoint. Re-registering an id
    /// replaces the previous inbox (the old endpoint is orphaned).
    pub fn endpoint(&self, id: PeerId) -> MemEndpoint {
        self.endpoint_traced(id, Recorder::disabled())
    }

    /// Like [`MemHub::endpoint`], with a telemetry recorder attached:
    /// the endpoint emits `frame_tx` / `frame_rx` / `backpressure`
    /// events under a `transport` span.
    pub fn endpoint_traced(&self, id: PeerId, recorder: Recorder) -> MemEndpoint {
        let inbox = Mailbox::bounded(self.inbox_capacity);
        self.lock().inboxes.insert(id, inbox.clone());
        let span = recorder.span(SpanId::NONE, names::TRANSPORT, vec![("peer", id.into())]);
        MemEndpoint {
            hub: self.clone(),
            id,
            inbox,
            recorder,
            span,
        }
    }
}

/// One peer's attachment to a [`MemHub`].
pub struct MemEndpoint {
    hub: MemHub,
    id: PeerId,
    inbox: Mailbox<Envelope>,
    recorder: Recorder,
    span: SpanId,
}

impl MemEndpoint {
    /// The telemetry span covering this endpoint's lifetime.
    pub fn telemetry_span(&self) -> SpanId {
        self.span
    }
}

impl Transport for MemEndpoint {
    fn local(&self) -> PeerId {
        self.id
    }

    fn send_tagged(&self, to: PeerId, req_id: u64, msg: &Message) -> Result<(), TransportError> {
        if self.inbox.is_closed() {
            return Err(TransportError::Closed);
        }
        // Round-trip through the codec: in-memory peers exchange exactly
        // the bytes TCP peers would, so an unencodable message fails here
        // too, not only in production.
        let body = encode_message(msg).map_err(TransportError::Codec)?;
        let msg = decode_message(&body).map_err(TransportError::Codec)?;
        let target = self
            .hub
            .lock()
            .inboxes
            .get(&to)
            .cloned()
            .ok_or(TransportError::UnknownPeer(to))?;
        let env = Envelope {
            from: self.id,
            req_id,
            msg,
        };
        match target.send_timeout(env, self.hub.send_timeout) {
            Ok(()) => {
                self.recorder.event(
                    self.span,
                    names::FRAME_TX,
                    vec![
                        ("to", to.into()),
                        (
                            "bytes",
                            (crate::frame::HEADER_LEN as u64 + body.len() as u64).into(),
                        ),
                    ],
                );
                Ok(())
            }
            Err(SendError::Closed) => Err(TransportError::Closed),
            Err(SendError::Full) => {
                self.recorder
                    .event(self.span, names::BACKPRESSURE, vec![("to", to.into())]);
                Err(TransportError::Backpressure)
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, TransportError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(env) => {
                self.recorder
                    .event(self.span, names::FRAME_RX, vec![("from", env.from.into())]);
                Ok(env)
            }
            Err(RecvError::Timeout) => Err(TransportError::Timeout),
            Err(RecvError::Closed) => Err(TransportError::Closed),
        }
    }

    fn peers(&self) -> Vec<PeerId> {
        self.hub
            .lock()
            .inboxes
            .keys()
            .copied()
            .filter(|&p| p != self.id)
            .collect()
    }

    fn close(&self) {
        self.inbox.close();
        self.hub.lock().inboxes.remove(&self.id);
        self.recorder.end(self.span, names::TRANSPORT, vec![]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip_with_sender_stamp() {
        let hub = MemHub::new(8);
        let a = hub.endpoint(1);
        let b = hub.endpoint(2);
        a.send(2, &Message::Monitor).unwrap();
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.from, 1);
        assert_eq!(env.msg, Message::Monitor);
        assert_eq!(a.peers(), vec![2]);
    }

    #[test]
    fn unknown_peer_rejected() {
        let hub = MemHub::new(8);
        let a = hub.endpoint(1);
        assert_eq!(
            a.send(9, &Message::Monitor).unwrap_err(),
            TransportError::UnknownPeer(9)
        );
    }

    #[test]
    fn full_inbox_is_backpressure() {
        let hub = MemHub::new(1).with_send_timeout(Duration::from_millis(10));
        let a = hub.endpoint(1);
        let _b = hub.endpoint(2);
        a.send(2, &Message::Monitor).unwrap();
        assert_eq!(
            a.send(2, &Message::Monitor).unwrap_err(),
            TransportError::Backpressure
        );
    }

    #[test]
    fn close_unregisters() {
        let hub = MemHub::new(8);
        let a = hub.endpoint(1);
        let b = hub.endpoint(2);
        b.close();
        assert_eq!(
            a.send(2, &Message::Monitor).unwrap_err(),
            TransportError::UnknownPeer(2)
        );
        assert_eq!(
            b.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            TransportError::Closed
        );
    }
}
