//! Loopback/LAN TCP transport with length-prefixed frames.
//!
//! One [`TcpEndpoint`] per process: it binds a listener, spawns an accept
//! thread, and gives every connection a reader thread that decodes frames
//! ([`crate::frame`]) into the endpoint's bounded inbox. The first frame
//! on every connection must be [`Message::Hello`] naming the sender —
//! that id stamps all subsequent envelopes from the connection, and
//! registers its write half so replies can be addressed by peer id.
//!
//! Outbound connections open on demand: `send(to, …)` uses a registered
//! route (`add_route`) when no connection to `to` exists yet, and sends
//! its own `Hello` first. Backpressure: a reader thread whose inbox is
//! full *blocks* (it stops reading the socket), so the kernel's receive
//! window fills and the remote writer stalls — bounded buffering end to
//! end, no unbounded queues.

use crate::frame::{read_frame, write_frame};
use crate::mailbox::{Mailbox, RecvError};
use crate::{Envelope, PeerId, Transport, TransportError};
use hyperm_can::Message;
use hyperm_sim::Backoff;
use hyperm_telemetry::{names, Recorder, SpanId};
use std::collections::{BTreeMap, BTreeSet};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default inbox bound (frames, not bytes).
pub const DEFAULT_INBOX: usize = 256;

/// Default dial attempts per `ensure_conn` (first try + redials).
pub const DEFAULT_DIAL_ATTEMPTS: u32 = 3;

/// Default wall-clock length of one backoff tick between dial attempts.
pub const DEFAULT_DIAL_TICK: Duration = Duration::from_millis(25);

struct Shared {
    id: PeerId,
    inbox: Mailbox<Envelope>,
    /// Write halves of live connections, by announced peer id.
    conns: Mutex<BTreeMap<PeerId, TcpStream>>,
    /// Dial addresses for peers we may need to connect to.
    routes: Mutex<BTreeMap<PeerId, SocketAddr>>,
    /// Peers we held a connection to at some point: a fresh dial to one
    /// of these is a *re*connect, reported as such.
    known: Mutex<BTreeSet<PeerId>>,
    closed: AtomicBool,
    recorder: Recorder,
    span: SpanId,
}

impl Shared {
    fn lock_conns(&self) -> std::sync::MutexGuard<'_, BTreeMap<PeerId, TcpStream>> {
        match self.conns.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn lock_routes(&self) -> std::sync::MutexGuard<'_, BTreeMap<PeerId, SocketAddr>> {
        match self.routes.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn lock_known(&self) -> std::sync::MutexGuard<'_, BTreeSet<PeerId>> {
        match self.known.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Serve one accepted or dialed connection: handshake (inbound only),
    /// then pump frames into the inbox until EOF/close.
    fn run_reader(self: &Arc<Self>, stream: TcpStream, announced: Option<PeerId>) {
        let peer = match announced {
            Some(p) => p,
            None => {
                // Inbound connection: the first frame must be Hello.
                let mut r = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                match read_frame(&mut r) {
                    Ok((_, Message::Hello { peer })) => {
                        self.register(peer, &stream);
                        self.pump(peer, r);
                        return;
                    }
                    Ok(_) | Err(_) => {
                        self.recorder.event(
                            self.span,
                            names::FRAME_DROP,
                            vec![("reason", "no_hello".into())],
                        );
                        return;
                    }
                }
            }
        };
        let r = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        self.register(peer, &stream);
        self.pump(peer, r);
    }

    fn register(&self, peer: PeerId, stream: &TcpStream) {
        if let Ok(write_half) = stream.try_clone() {
            self.lock_conns().insert(peer, write_half);
            let rejoined = !self.lock_known().insert(peer);
            self.recorder
                .event(self.span, names::CONNECT, vec![("peer", peer.into())]);
            if rejoined {
                self.recorder
                    .event(self.span, names::RECONNECT, vec![("peer", peer.into())]);
            }
        }
    }

    fn pump(&self, peer: PeerId, mut r: BufReader<TcpStream>) {
        loop {
            if self.closed.load(Ordering::SeqCst) {
                break;
            }
            match read_frame(&mut r) {
                Ok((req_id, msg)) => {
                    self.recorder
                        .event(self.span, names::FRAME_RX, vec![("from", peer.into())]);
                    // Blocking push: a full inbox stops this reader, the
                    // socket buffer fills, and TCP flow control pushes
                    // back on the remote writer.
                    if self
                        .inbox
                        .send_blocking(Envelope {
                            from: peer,
                            req_id,
                            msg,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                Err(TransportError::Codec(_)) | Err(TransportError::FrameTooLarge(_)) => {
                    // Undecodable peer: drop the connection, not the node.
                    self.recorder
                        .event(self.span, names::FRAME_DROP, vec![("from", peer.into())]);
                    break;
                }
                Err(_) => break, // EOF or socket error
            }
        }
        self.lock_conns().remove(&peer);
        self.recorder
            .event(self.span, names::DISCONNECT, vec![("peer", peer.into())]);
    }
}

/// A TCP transport endpoint (listener + connection pool + bounded inbox).
pub struct TcpEndpoint {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    /// Dial attempts per [`TcpEndpoint::connect`]/`send` (≥ 1).
    dial_attempts: u32,
    /// Gap schedule (in ticks) between dial attempts.
    dial_backoff: Backoff,
    /// Wall-clock length of one backoff tick.
    dial_tick: Duration,
}

impl TcpEndpoint {
    /// Bind `addr` (e.g. `127.0.0.1:0`) as peer `id` and start accepting.
    pub fn bind(id: PeerId, addr: &str) -> Result<Self, TransportError> {
        Self::bind_traced(id, addr, DEFAULT_INBOX, Recorder::disabled())
    }

    /// [`TcpEndpoint::bind`] with an explicit inbox bound and a telemetry
    /// recorder for `connect`/`disconnect`/`frame_*` events.
    pub fn bind_traced(
        id: PeerId,
        addr: &str,
        inbox_capacity: usize,
        recorder: Recorder,
    ) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr).map_err(|e| TransportError::Io(e.to_string()))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let span = recorder.span(SpanId::NONE, names::TRANSPORT, vec![("peer", id.into())]);
        let shared = Arc::new(Shared {
            id,
            inbox: Mailbox::bounded(inbox_capacity),
            conns: Mutex::new(BTreeMap::new()),
            routes: Mutex::new(BTreeMap::new()),
            known: Mutex::new(BTreeSet::new()),
            closed: AtomicBool::new(false),
            recorder,
            span,
        });
        let accept_shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.closed.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || conn_shared.run_reader(stream, None));
            }
        });
        Ok(Self {
            shared,
            local_addr,
            dial_attempts: DEFAULT_DIAL_ATTEMPTS,
            dial_backoff: Backoff::exponential(1, 8),
            dial_tick: DEFAULT_DIAL_TICK,
        })
    }

    /// Override the dial-retry policy: `attempts` total tries per
    /// connection establishment (clamped to ≥ 1), spaced by `backoff`
    /// gaps of `tick` each. `attempts = 1` restores fail-fast dialing.
    pub fn with_dial_retry(mut self, attempts: u32, backoff: Backoff, tick: Duration) -> Self {
        self.dial_attempts = attempts.max(1);
        self.dial_backoff = backoff;
        self.dial_tick = tick;
        self
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Register where `peer` can be dialed. `send` connects on demand.
    pub fn add_route(&self, peer: PeerId, addr: SocketAddr) {
        self.shared.lock_routes().insert(peer, addr);
    }

    /// Dial `peer` now (handshaking with `Hello`) instead of waiting for
    /// the first send. Also registers the route.
    pub fn connect(&self, peer: PeerId, addr: SocketAddr) -> Result<(), TransportError> {
        self.add_route(peer, addr);
        self.ensure_conn(peer)?;
        Ok(())
    }

    /// A live write half to `peer`: the pooled connection when one
    /// exists, otherwise a fresh dial — retried up to `dial_attempts`
    /// times with backoff, because an evicted connection usually means
    /// the peer is restarting, not gone.
    fn ensure_conn(&self, peer: PeerId) -> Result<TcpStream, TransportError> {
        if let Some(s) = self.shared.lock_conns().get(&peer) {
            if let Ok(clone) = s.try_clone() {
                return Ok(clone);
            }
        }
        let addr = self
            .shared
            .lock_routes()
            .get(&peer)
            .copied()
            .ok_or(TransportError::UnknownPeer(peer))?;
        let mut last = TransportError::UnknownPeer(peer);
        for attempt in 0..self.dial_attempts.max(1) {
            if self.shared.closed.load(Ordering::SeqCst) {
                return Err(TransportError::Closed);
            }
            if attempt > 0 {
                let gap = u32::try_from(self.dial_backoff.gap(attempt - 1)).unwrap_or(u32::MAX);
                std::thread::sleep(self.dial_tick.saturating_mul(gap));
                self.shared.recorder.event(
                    self.shared.span,
                    names::RETRY,
                    vec![
                        ("peer", peer.into()),
                        ("attempt", u64::from(attempt).into()),
                    ],
                );
            }
            match self.dial(peer, addr) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// One dial + `Hello` handshake to `peer` at `addr`, registering the
    /// pooled write half and its reader thread.
    fn dial(&self, peer: PeerId, addr: SocketAddr) -> Result<TcpStream, TransportError> {
        let mut stream = TcpStream::connect(addr).map_err(|e| TransportError::Io(e.to_string()))?;
        write_frame(
            &mut stream,
            0,
            &Message::Hello {
                peer: self.shared.id,
            },
        )?;
        let reader_stream = stream
            .try_clone()
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let shared = Arc::clone(&self.shared);
        std::thread::spawn(move || shared.run_reader(reader_stream, Some(peer)));
        let clone = stream
            .try_clone()
            .map_err(|e| TransportError::Io(e.to_string()))?;
        self.shared.lock_conns().insert(peer, stream);
        let rejoined = !self.shared.lock_known().insert(peer);
        self.shared.recorder.event(
            self.shared.span,
            names::CONNECT,
            vec![("peer", peer.into())],
        );
        if rejoined {
            self.shared.recorder.event(
                self.shared.span,
                names::RECONNECT,
                vec![("peer", peer.into())],
            );
        }
        Ok(clone)
    }
}

impl Transport for TcpEndpoint {
    fn local(&self) -> PeerId {
        self.shared.id
    }

    fn send_tagged(&self, to: PeerId, req_id: u64, msg: &Message) -> Result<(), TransportError> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Closed);
        }
        // Two passes: if the pooled connection turns out to be dead at
        // write time, evict it and redial once (with ensure_conn's own
        // backoff) before giving up.
        let mut last = TransportError::UnknownPeer(to);
        for _pass in 0..2 {
            let mut stream = self.ensure_conn(to)?;
            match write_frame(&mut stream, req_id, msg) {
                Ok(n) => {
                    self.shared.recorder.event(
                        self.shared.span,
                        names::FRAME_TX,
                        vec![("to", to.into()), ("bytes", (n as u64).into())],
                    );
                    return Ok(());
                }
                Err(e) => {
                    // The pooled connection died; drop it so the retry
                    // (and any later send) redials.
                    self.shared.lock_conns().remove(&to);
                    last = e;
                }
            }
        }
        Err(last)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, TransportError> {
        match self.shared.inbox.recv_timeout(timeout) {
            Ok(env) => Ok(env),
            Err(RecvError::Timeout) => Err(TransportError::Timeout),
            Err(RecvError::Closed) => Err(TransportError::Closed),
        }
    }

    fn peers(&self) -> Vec<PeerId> {
        let mut ids: Vec<PeerId> = self.shared.lock_conns().keys().copied().collect();
        for &p in self.shared.lock_routes().keys() {
            if !ids.contains(&p) {
                ids.push(p);
            }
        }
        ids.sort_unstable();
        ids.retain(|&p| p != self.shared.id);
        ids
    }

    fn close(&self) {
        if self.shared.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.inbox.close();
        let conns = std::mem::take(&mut *self.shared.lock_conns());
        for (_, s) in conns {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        // Wake the accept thread so it observes `closed` and exits.
        let _ = TcpStream::connect(self.local_addr);
        self.shared
            .recorder
            .end(self.shared.span, names::TRANSPORT, vec![]);
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip_with_hello_handshake() {
        let a = TcpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        let b = TcpEndpoint::bind(2, "127.0.0.1:0").unwrap();
        a.add_route(2, b.local_addr());
        a.send(2, &Message::Ack { seq: 5, ok: true }).unwrap();
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.from, 1);
        assert_eq!(env.msg, Message::Ack { seq: 5, ok: true });
        // b can reply over the same connection without a route to a.
        b.send(1, &Message::Ack { seq: 6, ok: false }).unwrap();
        let env = a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.from, 2);
        assert_eq!(env.msg, Message::Ack { seq: 6, ok: false });
        a.close();
        b.close();
    }

    #[test]
    fn send_without_route_is_unknown_peer() {
        let a = TcpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        assert_eq!(
            a.send(9, &Message::Monitor).unwrap_err(),
            TransportError::UnknownPeer(9)
        );
    }

    #[test]
    fn closed_endpoint_refuses() {
        let a = TcpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        a.close();
        assert_eq!(
            a.send(1, &Message::Monitor).unwrap_err(),
            TransportError::Closed
        );
        assert_eq!(
            a.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            TransportError::Closed
        );
    }
}
