//! The simulation underlay as a [`Transport`] implementation.
//!
//! This is the extraction the Transport refactor is anchored on: the
//! single-process delivery the simulator always performed — instant,
//! in-order, loss-free — expressed through the same trait the real
//! (threaded, TCP) transports implement. Delivery is deterministic:
//! state lives in `BTreeMap`s, nothing depends on thread timing, and
//! `recv_timeout` never blocks (an empty inbox is immediately
//! [`TransportError::Timeout`] — in a discrete-event world, "waiting"
//! cannot make a message appear).
//!
//! Cost accounting mirrors the simulator's: every delivered frame
//! charges one message, its encoded frame length in bytes, and a hop
//! count taken from an optional [`hyperm_sim::Underlay`] BFS hop table
//! (1 without one). [`SimHub::stats`] exposes the accumulated
//! [`OpStats`], so a runtime driven over this transport reports the same
//! cost vocabulary as the in-process simulation.

use crate::{Envelope, PeerId, Transport, TransportError};
use hyperm_can::codec::{decode_message, encode_message};
use hyperm_can::Message;
use hyperm_sim::{NodeId, OpStats, Underlay};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct SimState {
    inboxes: BTreeMap<PeerId, VecDeque<Envelope>>,
    underlay: Option<Underlay>,
    stats: OpStats,
}

/// Deterministic single-process switchboard for [`SimEndpoint`]s.
#[derive(Clone)]
pub struct SimHub {
    state: Arc<Mutex<SimState>>,
    inbox_capacity: usize,
}

impl SimHub {
    /// A hub with per-peer inboxes bounded at `inbox_capacity`.
    pub fn new(inbox_capacity: usize) -> Self {
        Self {
            state: Arc::new(Mutex::new(SimState {
                inboxes: BTreeMap::new(),
                underlay: None,
                stats: OpStats::zero(),
            })),
            inbox_capacity,
        }
    }

    /// Attach a MANET underlay: frames between peers `a` and `b` charge
    /// `underlay.hops(a, b)` hops instead of 1. Peer ids beyond the
    /// underlay's node count charge 1.
    pub fn with_underlay(self, underlay: Underlay) -> Self {
        self.lock().underlay = Some(underlay);
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SimState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Register peer `id` and return its endpoint.
    pub fn endpoint(&self, id: PeerId) -> SimEndpoint {
        self.lock().inboxes.entry(id).or_default();
        SimEndpoint {
            hub: self.clone(),
            id,
        }
    }

    /// Accumulated delivery cost across every endpoint of this hub.
    pub fn stats(&self) -> OpStats {
        self.lock().stats
    }
}

/// One peer's attachment to a [`SimHub`].
pub struct SimEndpoint {
    hub: SimHub,
    id: PeerId,
}

impl Transport for SimEndpoint {
    fn local(&self) -> PeerId {
        self.id
    }

    fn send_tagged(&self, to: PeerId, req_id: u64, msg: &Message) -> Result<(), TransportError> {
        let body = encode_message(msg).map_err(TransportError::Codec)?;
        let msg = decode_message(&body).map_err(TransportError::Codec)?;
        let mut state = self.hub.lock();
        let hops = match &state.underlay {
            Some(u) if (self.id as usize) < u.len() && (to as usize) < u.len() && self.id != to => {
                u64::from(u.hops(NodeId(self.id as usize), NodeId(to as usize)))
            }
            _ => 1,
        };
        let cap = self.hub.inbox_capacity;
        let inbox = state
            .inboxes
            .get_mut(&to)
            .ok_or(TransportError::UnknownPeer(to))?;
        if inbox.len() >= cap {
            // No time passes in a discrete-event hub, so a full inbox
            // cannot drain "while we wait": fail immediately.
            return Err(TransportError::Backpressure);
        }
        inbox.push_back(Envelope {
            from: self.id,
            req_id,
            msg,
        });
        state.stats.messages += 1;
        state.stats.bytes += crate::frame::HEADER_LEN as u64 + body.len() as u64;
        state.stats.hops += hops;
        Ok(())
    }

    fn recv_timeout(&self, _timeout: Duration) -> Result<Envelope, TransportError> {
        let mut state = self.hub.lock();
        match state.inboxes.get_mut(&self.id) {
            Some(q) => q.pop_front().ok_or(TransportError::Timeout),
            None => Err(TransportError::Closed),
        }
    }

    fn peers(&self) -> Vec<PeerId> {
        self.hub
            .lock()
            .inboxes
            .keys()
            .copied()
            .filter(|&p| p != self.id)
            .collect()
    }

    fn close(&self) {
        self.hub.lock().inboxes.remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_fifo_delivery_with_cost() {
        let hub = SimHub::new(16);
        let a = hub.endpoint(0);
        let b = hub.endpoint(1);
        a.send(1, &Message::Monitor).unwrap();
        a.send(1, &Message::Shutdown).unwrap();
        let e1 = b.recv_timeout(Duration::ZERO).unwrap();
        let e2 = b.recv_timeout(Duration::ZERO).unwrap();
        assert_eq!(e1.msg, Message::Monitor);
        assert_eq!(e2.msg, Message::Shutdown);
        assert_eq!(b.recv_timeout(Duration::ZERO), Err(TransportError::Timeout));
        let stats = hub.stats();
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.hops, 2);
        // 12-byte header (len + req_id) + 1-byte kind, twice.
        assert_eq!(stats.bytes, 26);
    }

    #[test]
    fn bounded_inbox_fails_fast() {
        let hub = SimHub::new(1);
        let a = hub.endpoint(0);
        let _b = hub.endpoint(1);
        a.send(1, &Message::Monitor).unwrap();
        assert_eq!(
            a.send(1, &Message::Monitor),
            Err(TransportError::Backpressure)
        );
    }
}
