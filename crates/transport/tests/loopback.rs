//! Loopback cluster integration tests: a head runtime serving real
//! client traffic over the in-memory and TCP transports.
//!
//! The shape mirrors the paper's deployment story — one head owning the
//! overlay network, members joining over the wire and relaying client
//! requests — and asserts the no-false-dismissal contract end to end:
//! range queries served over frames have recall 1.0 against brute-force
//! ground truth computed from the same seeded collections.

use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork};
use hyperm_datagen::{generate_aloi_like, AloiConfig};
use hyperm_transport::{Client, MemHub, NodeRuntime, Role, TcpEndpoint};
use std::collections::BTreeSet;
use std::time::Duration;

const DIM: usize = 16;
const ITEMS: usize = 20;
const SEED: u64 = 11;

/// One peer's collection, disjoint per slot.
fn collection(slot: u64) -> Dataset {
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 1,
        views_per_class: ITEMS,
        bins: DIM,
        view_jitter: 0.15,
        seed: SEED.wrapping_add(slot),
    });
    corpus.data
}

fn config() -> HypermConfig {
    HypermConfig::new(DIM)
        .with_levels(3)
        .with_clusters_per_peer(4)
        .with_seed(SEED)
        .with_parallel_query(false)
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Brute-force ground truth: `(peer, index)` of every item within `eps`
/// of `q` across the given collections (dead peers pass `None`).
fn truth(collections: &[Option<&Dataset>], q: &[f64], eps: f64) -> BTreeSet<(u64, u64)> {
    let e2 = eps * eps;
    let mut out = BTreeSet::new();
    for (p, ds) in collections.iter().enumerate() {
        let Some(ds) = ds else { continue };
        for i in 0..ds.len() {
            if sq_dist(ds.row(i), q) <= e2 {
                out.insert((p as u64, i as u64));
            }
        }
    }
    out
}

fn assert_recall_one(got: &[(u64, u64)], want: &BTreeSet<(u64, u64)>) {
    let got: BTreeSet<(u64, u64)> = got.iter().copied().collect();
    for t in want {
        assert!(
            got.contains(t),
            "false dismissal over the wire: truth item {t:?} missing from {got:?}"
        );
    }
}

/// In-memory cluster: put/get/query through `Client` frames, recall 1.0
/// against brute force, then a clean protocol shutdown.
#[test]
fn mem_cluster_serves_put_get_query_with_full_recall() {
    let data: Vec<Dataset> = (0..4).map(collection).collect();
    let (net, _) = HypermNetwork::build(data.clone(), config()).unwrap();
    let level0_dim = net.overlay(0).dim(); // subspace width, not DIM

    let hub = MemHub::new(256);
    let mut runtime = NodeRuntime::new(hub.endpoint(0), Role::Head(Box::new(net)));
    let head = std::thread::spawn(move || runtime.serve_until_shutdown());

    let client = Client::new(hub.endpoint(50), 0);

    // Range queries centred on known rows: recall must be 1.0.
    let eps = 0.25;
    for (peer, row) in [(0usize, 0usize), (1, 5), (3, ITEMS - 1)] {
        let q = data[peer].row(row).to_vec();
        let (items, (hops, messages, _bytes)) = client.query(&q, eps, None).unwrap();
        let refs: Vec<Option<&Dataset>> = data.iter().map(Some).collect();
        let want = truth(&refs, &q, eps);
        assert!(want.contains(&(peer as u64, row as u64)));
        assert_recall_one(&items, &want);
        assert!(messages > 0 && hops > 0, "query must charge simulated cost");
    }

    // Put a fresh item, then find it again through the overlay.
    let new_item: Vec<f64> = collection(900).row(0).to_vec();
    let index = client.put(2, &new_item, true).unwrap();
    assert_eq!(index, ITEMS as u64, "appended after the seed collection");
    let (items, _) = client.query(&new_item, 0.05, None).unwrap();
    assert!(
        items.contains(&(2, index)),
        "freshly put item must be retrievable: got {items:?}"
    );

    // Get: level-0 summary spheres covering a key are served verbatim.
    let key = vec![0.5; level0_dim];
    let objects = client.get(0, &key).unwrap();
    for o in &objects {
        assert_eq!(o.centre.len(), level0_dim);
        assert!(o.radius >= 0.0);
    }

    // Monitor reports the head role and all four overlay nodes.
    let json = client.monitor().unwrap();
    assert!(json.contains("\"role\": \"head\""), "monitor json: {json}");
    assert!(json.contains("\"members\": 4"), "monitor json: {json}");

    client.shutdown().unwrap();
    head.join().unwrap().unwrap();
}

/// TCP loopback cluster in the chordht shape: a member node joins the
/// overlay *after* a peer failure, its keys and summaries transfer, and
/// a client pointed at the member gets recall 1.0 through forwarding.
#[test]
fn tcp_cluster_member_joins_after_failure_with_full_recall() {
    let data: Vec<Dataset> = (0..4).map(collection).collect();
    let (mut net, _) = HypermNetwork::build(data.clone(), config()).unwrap();

    // The failure: peer 1 crashes before the member joins. Zone takeover
    // plus soft-state summary refresh is the documented repair story —
    // survivors republish so their keys stay reachable afterwards.
    net.crash_peer(1, true);
    assert!(!net.is_alive(1));
    net.repair_overlays(4);
    for p in [0, 2, 3] {
        net.refresh_peer_summaries(p);
    }

    let head_ep = TcpEndpoint::bind(0, "127.0.0.1:0").unwrap();
    let head_addr = head_ep.local_addr();
    let mut head_rt = NodeRuntime::new(head_ep, Role::Head(Box::new(net)));
    let head = std::thread::spawn(move || head_rt.serve_until_shutdown());

    // The member joins over the wire with its own collection.
    let member_data = collection(1000);
    let member_ep = TcpEndpoint::bind(1, "127.0.0.1:0").unwrap();
    let member_addr = member_ep.local_addr();
    member_ep.connect(0, head_addr).unwrap();
    let mut member_rt = NodeRuntime::new(
        member_ep,
        Role::Member {
            head: 0,
            peer: None,
        },
    );
    let joined = member_rt
        .join_network(&member_data, Duration::from_secs(30))
        .unwrap();
    assert_eq!(joined, 4, "member becomes overlay peer 4");
    let member = std::thread::spawn(move || member_rt.serve_until_shutdown());

    // Client speaks to the MEMBER; every request is forwarded to the head.
    let client_ep = TcpEndpoint::bind(77, "127.0.0.1:0").unwrap();
    client_ep.connect(1, member_addr).unwrap();
    let client = Client::new(client_ep, 1);

    // Ground truth spans the surviving seed peers plus the member's
    // collection as overlay peer 4; the crashed peer's items are gone.
    let collections: Vec<Option<&Dataset>> = vec![
        Some(&data[0]),
        None, // crashed
        Some(&data[2]),
        Some(&data[3]),
        Some(&member_data),
    ];

    let eps = 0.25;
    for q in [
        member_data.row(0).to_vec(),
        member_data.row(ITEMS - 1).to_vec(),
        data[3].row(2).to_vec(),
    ] {
        let (items, _) = client.query(&q, eps, None).unwrap();
        let want = truth(&collections, &q, eps);
        assert!(!want.is_empty());
        assert_recall_one(&items, &want);
    }

    // The member's keys specifically are findable: its summaries made it
    // into the overlays via the Join frame.
    let q = member_data.row(3).to_vec();
    let (items, _) = client.query(&q, 0.05, None).unwrap();
    assert!(
        items.contains(&(4, 3)),
        "member item must be retrievable after joining: got {items:?}"
    );

    // Monitor through the member reports the head's live overlay state.
    let monitor_ep = TcpEndpoint::bind(78, "127.0.0.1:0").unwrap();
    monitor_ep.connect(0, head_addr).unwrap();
    let monitor = Client::new(monitor_ep, 0);
    let json = monitor.monitor().unwrap();
    assert!(json.contains("\"members\": 5"), "monitor json: {json}");
    assert!(json.contains("\"alive\""), "monitor json: {json}");

    // Clean protocol shutdown: member first, then the head.
    client.shutdown().unwrap();
    member.join().unwrap().unwrap();
    monitor.shutdown().unwrap();
    head.join().unwrap().unwrap();
}

#[test]
fn retry_set_is_subset_of_idempotent_kinds() {
    // The protocol layer declares which requests tolerate duplicate
    // delivery; the client may only auto-resend those. hyperm-lint's
    // proto-retry-set rule enforces this statically — this is the
    // runtime twin so a local `cargo test` catches the drift too.
    use hyperm_can::codec::kind;
    for &k in hyperm_transport::runtime::RESENDABLE_KINDS {
        assert!(
            kind::IDEMPOTENT.contains(&k),
            "RESENDABLE_KINDS contains non-idempotent kind {k}"
        );
    }
    assert!(!hyperm_transport::runtime::RESENDABLE_KINDS.is_empty());
}
