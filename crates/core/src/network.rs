//! The Hyper-M network: N peers, one CAN overlay per wavelet subspace.
//!
//! [`HypermNetwork::build`] performs the paper's Figure-2 insertion
//! pipeline for every peer: summarisation (offline, parallelised across
//! peers with scoped threads) followed by publication of each cluster
//! sphere into its subspace's overlay. Costs are tracked per level and per
//! peer; the **makespan** (max per-peer cumulative hops) is the paper's
//! "parallel execution" view of dissemination time, while total hops is its
//! Figure-8 metric.

// hyperm-lint: allow-file(panic-index) — level indices iterate 0..levels() and peer ids index the dense peer table built at construction
use crate::config::HypermConfig;
use crate::overlay::Overlay;
use crate::peer::Peer;
use crate::query::cache::SummaryCache;
use crate::HypermError;
use hyperm_can::{KeyMap, ObjectRef};
use hyperm_cluster::Dataset;
use hyperm_sim::{LoadLedger, LoadProbe, NodeId, OpStats, Scheduler};
use hyperm_telemetry::{names, OpKind, Recorder, SpanId};
use hyperm_wavelet::{decompose, radius_contraction, Decomposition, Subspace};
use std::sync::Arc;

/// Cost report of a network build.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildReport {
    /// Total publication cost across all levels (excludes overlay
    /// bootstrap, reported separately).
    pub insertion: OpStats,
    /// Publication cost per level.
    pub per_level: Vec<OpStats>,
    /// One-off overlay construction cost (node joins), all levels.
    pub bootstrap: OpStats,
    /// Cluster spheres published.
    pub clusters_published: u64,
    /// Total replicas stored (≥ clusters when replication is on).
    pub replicas: u64,
    /// Total data items summarised.
    pub items_total: u64,
    /// Parallel makespan: the maximum cumulative insertion hops any single
    /// peer pays (peers publish concurrently, their own inserts serially).
    pub makespan_hops: u64,
    /// Parallel makespan in *rounds*, from a discrete-event simulation in
    /// which each peer publishes its clusters back-to-back while all peers
    /// run concurrently, and replication floods fan out one depth level per
    /// round (tighter than `makespan_hops`, which serialises the floods).
    pub makespan_rounds: u64,
}

impl BuildReport {
    /// The paper's Figure-8 y-axis: average insertion hops **per data
    /// item** — "some values … are smaller than 1 because we are averaging
    /// over the number of items on a peer, but insert only cluster
    /// centroids".
    pub fn avg_hops_per_item(&self) -> f64 {
        if self.items_total == 0 {
            0.0
        } else {
            self.insertion.hops as f64 / self.items_total as f64
        }
    }
}

/// A built Hyper-M network.
#[derive(Debug, Clone)]
pub struct HypermNetwork {
    /// The configuration the network was built with.
    pub config: HypermConfig,
    peers: Vec<Peer>,
    overlays: Vec<Overlay>,
    keymaps: Vec<KeyMap>,
    subspaces: Vec<Subspace>,
    contractions: Vec<f64>,
    /// Fail-stop flags, one per peer (see the `churn` module).
    failed: Vec<bool>,
    /// Active network partition as a peer → component map (see the
    /// `publish` module); `None` = fully connected.
    partition: Option<Vec<u32>>,
    /// Telemetry handle (disabled by default; see `hyperm_telemetry`).
    recorder: Recorder,
    /// Popular-summary cache consulted by phase-1 range lookups (`None` —
    /// the default — keeps the query path bit-identical to the uncached
    /// build; see `hyperm-load`). Clones share the cache via the `Arc`.
    cache: Option<Arc<SummaryCache>>,
    /// Per-peer load ledger (`None` — the default — charges nothing).
    /// Installed via [`HypermNetwork::set_load_ledger`], which also hands
    /// each level's overlay a level-scoped probe. Clones share the ledger.
    load: Option<Arc<LoadLedger>>,
}

impl HypermNetwork {
    /// Build a network from per-peer collections.
    pub fn build(
        peers_data: Vec<Dataset>,
        config: HypermConfig,
    ) -> Result<(Self, BuildReport), HypermError> {
        Self::build_traced(peers_data, config, Recorder::disabled())
    }

    /// Like [`HypermNetwork::build`], but with a telemetry [`Recorder`]
    /// installed *before* publication, so the build's publish floods are
    /// traced too. The recorder only observes host-side: the returned
    /// network and [`BuildReport`] are bit-identical to an untraced build
    /// (asserted by the `telemetry` integration tests).
    pub fn build_traced(
        peers_data: Vec<Dataset>,
        config: HypermConfig,
        recorder: Recorder,
    ) -> Result<(Self, BuildReport), HypermError> {
        if peers_data.is_empty() {
            return Err(HypermError::NoPeers);
        }
        if !config.data_dim.is_power_of_two() || config.data_dim == 0 {
            return Err(HypermError::BadDimension(config.data_dim));
        }
        if config.levels == 0 || config.levels > config.max_levels() {
            return Err(HypermError::TooManyLevels {
                requested: config.levels,
                max: config.max_levels(),
            });
        }
        for (i, p) in peers_data.iter().enumerate() {
            if p.is_empty() || p.dim() != config.data_dim {
                return Err(HypermError::DimensionMismatch {
                    peer: i,
                    got: p.dim(),
                    expected: config.data_dim,
                });
            }
        }

        // ---- Offline phase: summarise every peer (parallel). ----
        let peers = summarize_all(peers_data, &config);

        // ---- Overlay construction (one CAN per subspace). ----
        let subspaces = config.subspaces();
        let n = peers.len();
        let mut overlays = Vec::with_capacity(subspaces.len());
        let mut keymaps = Vec::with_capacity(subspaces.len());
        let mut contractions = Vec::with_capacity(subspaces.len());
        let mut bootstrap = OpStats::zero();
        for (l, &s) in subspaces.iter().enumerate() {
            let dim = config.can_dim(s);
            let overlay = Overlay::bootstrap(
                config.overlay_backend,
                dim,
                config.seed.wrapping_add(l as u64 + 1),
                n,
            );
            bootstrap += overlay.bootstrap_stats();
            let (lo, hi) = config.subspace_bounds(s);
            keymaps.push(KeyMap::uniform(dim, lo, hi));
            contractions.push(radius_contraction(config.data_dim, s, config.normalization));
            overlays.push(overlay);
        }
        for (l, overlay) in overlays.iter_mut().enumerate() {
            overlay.set_recorder(recorder.scoped(l));
        }

        // ---- Publication phase (step i3). ----
        let mut per_level = vec![OpStats::zero(); subspaces.len()];
        let mut per_peer_hops = vec![0u64; n];
        let mut per_peer_insert_rounds: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut clusters_published = 0u64;
        let mut replicas = 0u64;
        for peer in &peers {
            for (l, summary) in peer.summaries.iter().enumerate() {
                for (c, sphere) in summary.iter().enumerate() {
                    // Centroids outside the configured bounds get clamped
                    // into key space; widening the published radius by the
                    // clamp slack keeps the stored sphere covering the
                    // images of all its items (no false dismissals). The
                    // slack is exactly 0 for in-bounds centroids, so the
                    // common path is bit-identical to the plain conversion.
                    let (key, slack) = keymaps[l].to_key_slack(&sphere.centroid);
                    let key_radius = keymaps[l].to_key_radius(sphere.radius) + slack;
                    let ltel = overlays[l].recorder();
                    let span = if ltel.is_enabled() {
                        let s = ltel.span(
                            SpanId::NONE,
                            names::PUBLISH,
                            vec![("peer", peer.id.into()), ("cluster", c.into())],
                        );
                        ltel.set_scope(s);
                        s
                    } else {
                        SpanId::NONE
                    };
                    let out = overlays[l].insert_sphere(
                        NodeId(peer.id),
                        key,
                        key_radius,
                        ObjectRef {
                            peer: peer.id,
                            tag: c as u64,
                            items: sphere.items as u32,
                        },
                        config.replicate,
                    );
                    if ltel.is_enabled() {
                        ltel.set_scope(SpanId::NONE);
                        ltel.end(
                            span,
                            names::PUBLISH,
                            vec![
                                ("hops", out.stats.hops.into()),
                                ("messages", out.stats.messages.into()),
                                ("bytes", out.stats.bytes.into()),
                                ("replicas", out.replicas.into()),
                                ("rounds", out.rounds.into()),
                            ],
                        );
                        ltel.record_op(OpKind::Publish, Some(l), out.stats);
                        ltel.record_op(OpKind::Publish, None, out.stats);
                    }
                    per_level[l] += out.stats;
                    per_peer_hops[peer.id] += out.stats.hops;
                    per_peer_insert_rounds[peer.id].push(out.rounds);
                    clusters_published += 1;
                    replicas += out.replicas as u64;
                }
            }
        }

        let insertion: OpStats = per_level.iter().copied().sum();
        let items_total = peers.iter().map(|p| p.len() as u64).sum();
        let makespan_hops = per_peer_hops.iter().copied().max().unwrap_or(0);
        let makespan_rounds = simulate_parallel_publication(&per_peer_insert_rounds);
        let report = BuildReport {
            insertion,
            per_level,
            bootstrap,
            clusters_published,
            replicas,
            items_total,
            makespan_hops,
            makespan_rounds,
        };
        let failed = vec![false; n];
        Ok((
            HypermNetwork {
                config,
                peers,
                overlays,
                keymaps,
                subspaces,
                contractions,
                failed,
                partition: None,
                recorder,
                cache: None,
                load: None,
            },
            report,
        ))
    }

    /// Install a telemetry recorder on a built network: every level's
    /// overlay gets a level-scoped clone, and query/churn spans are emitted
    /// through the base handle. Pass [`Recorder::disabled`] to turn
    /// tracing off again.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        for (l, overlay) in self.overlays.iter_mut().enumerate() {
            overlay.set_recorder(recorder.scoped(l));
        }
        self.recorder = recorder;
    }

    /// The network's telemetry handle (disabled unless installed via
    /// [`HypermNetwork::set_recorder`] or [`HypermNetwork::build_traced`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the network has no peers (never true post-build).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Borrow a peer.
    pub fn peer(&self, id: usize) -> &Peer {
        &self.peers[id]
    }

    /// Mutably borrow a peer (used by maintenance).
    pub(crate) fn peer_mut(&mut self, id: usize) -> &mut Peer {
        &mut self.peers[id]
    }

    /// Fail-stop flags (churn module).
    pub(crate) fn failed(&self) -> &[bool] {
        &self.failed
    }

    /// Install (or clear) a network partition: the component map is pushed
    /// into every level's overlay (severing routing and flood links across
    /// components) and kept here for phase-2 direct-fetch reachability.
    pub fn set_partition(&mut self, map: Option<Vec<u32>>) {
        for overlay in self.overlays.iter_mut() {
            overlay.set_partition(map.clone());
        }
        // Partition install *and* heal change which candidates a flood can
        // reach — cached phase-1 answers are stale either way.
        if let Some(c) = &self.cache {
            c.bump_epoch();
        }
        self.partition = map;
    }

    /// Whether a partition is currently in force.
    pub fn partition_active(&self) -> bool {
        self.partition.is_some()
    }

    /// Whether peers `a` and `b` can exchange direct messages under the
    /// active partition (always true when none is installed). Peers
    /// outside the component map are severed from everyone but themselves.
    pub fn peers_connected(&self, a: usize, b: usize) -> bool {
        match &self.partition {
            None => true,
            Some(map) => {
                a == b
                    || matches!(
                        (map.get(a), map.get(b)),
                        (Some(ca), Some(cb)) if ca == cb
                    )
            }
        }
    }

    /// Mutable fail-stop flags (churn module).
    pub(crate) fn failed_mut(&mut self) -> &mut [bool] {
        &mut self.failed
    }

    /// Append a freshly summarised peer (live join module).
    pub(crate) fn push_peer(&mut self, peer: Peer) {
        assert_eq!(peer.id, self.peers.len(), "peer ids must stay dense");
        self.peers.push(peer);
        self.failed.push(false);
    }

    /// Iterate over peers.
    pub fn peers(&self) -> impl ExactSizeIterator<Item = &Peer> {
        self.peers.iter()
    }

    /// Number of published levels.
    pub fn levels(&self) -> usize {
        self.subspaces.len()
    }

    /// Original-space data dimensionality (what queries and items must
    /// match).
    pub fn data_dim(&self) -> usize {
        self.config.data_dim
    }

    /// The subspace of a level.
    pub fn subspace(&self, level: usize) -> Subspace {
        self.subspaces[level]
    }

    /// Borrow a level's overlay.
    pub fn overlay(&self, level: usize) -> &Overlay {
        &self.overlays[level]
    }

    /// Mutably borrow a level's overlay (used by maintenance). Every
    /// mutable access conservatively invalidates the popular-summary
    /// cache: publish, refresh, churn and repair all route through here,
    /// so a cached phase-1 answer can never outlive the overlay state it
    /// was computed against.
    pub(crate) fn overlay_mut(&mut self, level: usize) -> &mut Overlay {
        if let Some(c) = &self.cache {
            c.bump_epoch();
        }
        &mut self.overlays[level]
    }

    /// Install (or clear) the popular-summary cache consulted by phase-1
    /// range lookups. `None` (the default) keeps queries bit-identical to
    /// an uncached network. The cache is shared: clones of this network
    /// see the same `Arc`, so comparative experiments should install
    /// separate caches (or `None`) per clone.
    pub fn set_summary_cache(&mut self, cache: Option<Arc<SummaryCache>>) {
        self.cache = cache;
    }

    /// The installed popular-summary cache, if any.
    pub fn summary_cache(&self) -> Option<&Arc<SummaryCache>> {
        self.cache.as_ref()
    }

    /// Install (or clear) the per-peer load ledger: each level's overlay
    /// gets a level-scoped [`LoadProbe`] so floods, served lookups and
    /// retries are attributed exactly once; phase-2 direct fetches are
    /// charged by the query path. `None` (the default) charges nothing
    /// and keeps the hot path free.
    pub fn set_load_ledger(&mut self, ledger: Option<Arc<LoadLedger>>) {
        for (l, overlay) in self.overlays.iter_mut().enumerate() {
            let probe = ledger
                .as_ref()
                .map_or_else(LoadProbe::disabled, |lg| LoadProbe::new(lg.clone(), l));
            overlay.set_load_probe(probe);
        }
        self.load = ledger;
    }

    /// The installed load ledger, if any.
    pub fn load_ledger(&self) -> Option<&Arc<LoadLedger>> {
        self.load.as_ref()
    }

    /// Load-balancing hook: split the level-`level` zone covering `point`
    /// and grant the half containing it to `to_peer` (replicas are
    /// *copied*, so the candidate set only grows — Theorem 4.1 holds).
    /// `None` when the substrate is not CAN, the point is unowned, the
    /// beneficiary is dead, or the zone is too thin to split. The overlay
    /// mutation invalidates the summary cache like any other.
    pub fn split_zone(&mut self, level: usize, point: &[f64], to_peer: usize) -> Option<OpStats> {
        if level >= self.levels() || to_peer >= self.len() {
            return None;
        }
        self.overlay_mut(level).split_adopt(point, NodeId(to_peer))
    }

    /// Load-balancing hook: migrate the largest zone fragment adopted by
    /// `from_peer` in the level-`level` overlay to `to_peer`, reusing the
    /// leave/takeover handoff (replicas copied first). `None` when the
    /// substrate is not CAN, either peer is dead, or `from_peer` holds no
    /// fragments.
    pub fn migrate_zone(
        &mut self,
        level: usize,
        from_peer: usize,
        to_peer: usize,
    ) -> Option<OpStats> {
        if level >= self.levels() || from_peer >= self.len() || to_peer >= self.len() {
            return None;
        }
        self.overlay_mut(level)
            .migrate_fragment(NodeId(from_peer), NodeId(to_peer))
            .map(|(_, stats)| stats)
    }

    /// Transport entry point: publish a raw sphere `object` into the
    /// level-`level` overlay. Unlike the internal publication paths this
    /// validates every field — the object may have been decoded from an
    /// untrusted frame — and returns `None` (instead of panicking) when
    /// the level is out of range, the centre dimensionality does not match
    /// the overlay, a coordinate is non-finite, or the publishing peer is
    /// unknown or dead.
    pub fn publish_object(
        &mut self,
        level: usize,
        object: hyperm_can::StoredObject,
        replicate: bool,
    ) -> Option<hyperm_can::InsertOutcome> {
        if level >= self.levels() {
            return None;
        }
        if object.centre.len() != self.overlay(level).dim() {
            return None;
        }
        if !object.centre.iter().all(|c| c.is_finite())
            || !object.radius.is_finite()
            || object.radius < 0.0
        {
            return None;
        }
        if object.payload.peer >= self.len() || !self.is_alive(object.payload.peer) {
            return None;
        }
        let from = NodeId(object.payload.peer);
        Some(self.overlay_mut(level).insert_sphere(
            from,
            object.centre,
            object.radius,
            object.payload,
            replicate,
        ))
    }

    /// Borrow a level's key map.
    pub fn keymap(&self, level: usize) -> &KeyMap {
        &self.keymaps[level]
    }

    /// Theorem-3.1 radius divisor of a level.
    pub fn contraction(&self, level: usize) -> f64 {
        self.contractions[level]
    }

    /// Decompose a query vector once for all levels.
    pub fn decompose_query(&self, q: &[f64]) -> Decomposition {
        assert_eq!(q.len(), self.config.data_dim, "query dimension mismatch");
        // hyperm-lint: allow(panic-unwrap) — config builder asserts data_dim is a power of two at construction
        decompose(q, self.config.normalization).expect("power-of-two dim")
    }

    /// The query's coefficients in a level's subspace, as a key-space point.
    pub fn query_key(&self, dec: &Decomposition, level: usize) -> Vec<f64> {
        // hyperm-lint: allow(panic-unwrap) — level index comes from 0..self.levels(), which indexes self.subspaces
        let coeffs = dec.subspace(self.subspaces[level]).expect("level exists");
        self.keymaps[level].to_key(coeffs)
    }

    /// An original-space radius translated into a level's key space:
    /// contracted per Theorem 3.1, then affinely scaled by the key map.
    pub fn query_key_radius(&self, eps: f64, level: usize) -> f64 {
        self.keymaps[level].to_key_radius(eps / self.contractions[level])
    }

    /// Like [`HypermNetwork::query_key`], but also report the clamp slack
    /// (see [`KeyMap::to_key_slack`]): query points whose subspace
    /// coefficients fall outside the configured bounds get clamped, and
    /// widening the key-space search radius by the returned slack restores
    /// the covering property. Slack is 0 for in-bounds queries.
    pub fn query_key_with_slack(&self, dec: &Decomposition, level: usize) -> (Vec<f64>, f64) {
        // hyperm-lint: allow(panic-unwrap) — level index comes from 0..self.levels(), which indexes self.subspaces
        let coeffs = dec.subspace(self.subspaces[level]).expect("level exists");
        self.keymaps[level].to_key_slack(coeffs)
    }

    /// Run `f(level)` for every published level and collect the results in
    /// level order. With `parallel` set (and more than one level), each
    /// level runs on its own scoped thread; results are written into
    /// per-level slots, so the returned vector — and any stats merged from
    /// it in level order — is bit-identical to the serial path.
    pub(crate) fn run_levels<T, F>(&self, parallel: bool, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let levels = self.levels();
        if !parallel || levels <= 1 {
            return (0..levels).map(f).collect();
        }
        let mut slots: Vec<Option<T>> = (0..levels).map(|_| None).collect();
        let f = &f;
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..levels)
                .map(|l| scope.spawn(move |_| (l, f(l))))
                .collect();
            for h in handles {
                // hyperm-lint: allow(panic-unwrap) — re-raising a worker panic on the coordinator thread is the intended propagation
                let (l, v) = h.join().expect("level query thread panicked");
                slots[l] = Some(v);
            }
        })
        // hyperm-lint: allow(panic-unwrap) — crossbeam scope only errs when a child panicked; propagating is intended
        .expect("crossbeam scope");
        slots
            .into_iter()
            // hyperm-lint: allow(panic-unwrap) — the join loop above filled every slot or panicked
            .map(|s| s.expect("every level produced a result"))
            .collect()
    }
}

/// Replay the publication schedule on the discrete-event scheduler: every
/// peer fires its first insert at t = 0 and chains the next one when the
/// previous completes (`rounds` ticks later), emulating the paper's
/// "parallel execution is simulated by emptying the queue". The returned
/// makespan is the time the last insert completes.
fn simulate_parallel_publication(per_peer_rounds: &[Vec<u64>]) -> u64 {
    // Payload: (peer, index of the insert that just *completed*).
    let mut sched: Scheduler<(usize, usize)> = Scheduler::new();
    let mut makespan = 0u64;
    for (peer, rounds) in per_peer_rounds.iter().enumerate() {
        if let Some(&first) = rounds.first() {
            // An insert of zero rounds (local store only) completes at t=0.
            sched.schedule_in(first, NodeId(peer), (peer, 0));
        }
    }
    let end = sched.run(u64::MAX, |sched, ev| {
        let (peer, idx) = ev.payload;
        if let Some(&next) = per_peer_rounds[peer].get(idx + 1) {
            sched.schedule_in(next, NodeId(peer), (peer, idx + 1));
        }
    });
    makespan = makespan.max(end.0);
    makespan
}

/// Summarise all peers, in parallel when the corpus is large enough to pay
/// for thread startup.
fn summarize_all(peers_data: Vec<Dataset>, config: &HypermConfig) -> Vec<Peer> {
    let total_items: usize = peers_data.iter().map(Dataset::len).sum();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if threads <= 1 || total_items < 2_000 || peers_data.len() < 2 {
        return peers_data
            .into_iter()
            .enumerate()
            .map(|(id, items)| Peer::summarize(id, items, config))
            .collect();
    }
    // Scoped threads: deal peers round-robin, collect by index.
    let indexed: Vec<(usize, Dataset)> = peers_data.into_iter().enumerate().collect();
    let chunks: Vec<Vec<(usize, Dataset)>> = {
        let mut cs: Vec<Vec<(usize, Dataset)>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, item) in indexed.into_iter().enumerate() {
            cs[i % threads].push(item);
        }
        cs
    };
    let mut out: Vec<Peer> = Vec::new();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move |_| {
                    chunk
                        .into_iter()
                        .map(|(id, items)| Peer::summarize(id, items, config))
                        .collect::<Vec<Peer>>()
                })
            })
            .collect();
        for h in handles {
            // hyperm-lint: allow(panic-unwrap) — re-raising a worker panic on the coordinator thread is the intended propagation
            out.extend(h.join().expect("summarisation thread panicked"));
        }
        out.sort_by_key(|p| p.id);
    })
    // hyperm-lint: allow(panic-unwrap) — crossbeam scope only errs when a child panicked; propagating is intended
    .expect("crossbeam scope");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn peers_data(n_peers: usize, items: usize, dim: usize, seed: u64) -> Vec<Dataset> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_peers)
            .map(|_| {
                let mut ds = Dataset::new(dim);
                let mut row = vec![0.0; dim];
                for _ in 0..items {
                    for x in row.iter_mut() {
                        *x = rng.gen();
                    }
                    ds.push_row(&row);
                }
                ds
            })
            .collect()
    }

    fn config() -> HypermConfig {
        HypermConfig::new(16)
            .with_levels(3)
            .with_clusters_per_peer(4)
            .with_seed(1)
    }

    #[test]
    fn build_produces_consistent_network() {
        let (net, report) = HypermNetwork::build(peers_data(8, 30, 16, 1), config()).unwrap();
        assert_eq!(net.len(), 8);
        assert_eq!(net.levels(), 3);
        assert_eq!(report.items_total, 240);
        // ≤ 4 clusters × 3 levels × 8 peers.
        assert!(report.clusters_published <= 96);
        assert!(report.clusters_published >= 24);
        assert!(report.replicas >= report.clusters_published);
        for l in 0..3 {
            assert_eq!(net.overlay(l).len(), 8);
            net.overlay(l).check_invariants();
        }
    }

    #[test]
    fn summaries_land_in_overlays() {
        let (net, report) = HypermNetwork::build(peers_data(6, 20, 16, 2), config()).unwrap();
        let stored: u64 = (0..net.levels())
            .map(|l| net.overlay(l).store_sizes().iter().sum::<usize>() as u64)
            .sum();
        assert_eq!(stored, report.replicas);
    }

    #[test]
    fn insertion_cost_scales_with_clusters_not_items() {
        let few_items = HypermNetwork::build(peers_data(6, 20, 16, 3), config())
            .unwrap()
            .1;
        let many_items = HypermNetwork::build(peers_data(6, 200, 16, 3), config())
            .unwrap()
            .1;
        // Ten times the items, same cluster count → per-item hops drop ~10×.
        assert!(
            many_items.avg_hops_per_item() < few_items.avg_hops_per_item() / 4.0,
            "{} vs {}",
            many_items.avg_hops_per_item(),
            few_items.avg_hops_per_item()
        );
    }

    #[test]
    fn makespan_bounded_by_total() {
        let (_, report) = HypermNetwork::build(peers_data(8, 25, 16, 4), config()).unwrap();
        assert!(report.makespan_hops <= report.insertion.hops);
        assert!(report.makespan_hops * 8 >= report.insertion.hops);
    }

    #[test]
    fn build_is_deterministic() {
        let a = HypermNetwork::build(peers_data(5, 15, 16, 5), config())
            .unwrap()
            .1;
        let b = HypermNetwork::build(peers_data(5, 15, 16, 5), config())
            .unwrap()
            .1;
        assert_eq!(a, b);
    }

    #[test]
    fn query_translation_helpers() {
        let (net, _) = HypermNetwork::build(peers_data(4, 10, 16, 6), config()).unwrap();
        let q = vec![0.5; 16];
        let dec = net.decompose_query(&q);
        for l in 0..net.levels() {
            let key = net.query_key(&dec, l);
            assert_eq!(key.len(), net.overlay(l).dim());
            assert!(key.iter().all(|&x| (0.0..1.0).contains(&x)));
            // Radius shrinks per Theorem 3.1 (levels here have contraction
            // √16=4 or lower) before the affine map rescales it.
            assert!(net.query_key_radius(0.4, l) > 0.0);
        }
    }

    #[test]
    fn error_paths() {
        assert_eq!(
            HypermNetwork::build(vec![], config()).unwrap_err(),
            HypermError::NoPeers
        );
        let bad_levels = config().with_levels(9); // 16-d supports max 5
        assert!(matches!(
            HypermNetwork::build(peers_data(2, 5, 16, 7), bad_levels).unwrap_err(),
            HypermError::TooManyLevels { .. }
        ));
        let cfg24 = HypermConfig::new(24);
        assert!(matches!(
            HypermNetwork::build(peers_data(2, 5, 24, 8), cfg24).unwrap_err(),
            HypermError::BadDimension(24)
        ));
        let mismatched = peers_data(2, 5, 8, 9);
        assert!(matches!(
            HypermNetwork::build(mismatched, config()).unwrap_err(),
            HypermError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn parallel_and_serial_summarisation_agree() {
        // Over the 2k-item threshold the parallel path kicks in; the result
        // must be identical to the serial path (same seeds per peer).
        let data = peers_data(8, 300, 16, 10); // 2400 items total
        let (net_par, _) = HypermNetwork::build(data.clone(), config()).unwrap();
        // Force serial by building tiny slices and comparing one peer.
        let serial_peer = Peer::summarize(3, data[3].clone(), &config());
        assert_eq!(net_par.peer(3).summaries, serial_peer.summaries);
    }
}
