//! Post-creation insertion (Section 6.1, Figure 10c).
//!
//! Hyper-M's scenario emphasises creation speed: "during the short
//! life-time of the network, we expect that most new data items fit into
//! the existing clusters". Items arriving after the overlay was built can
//! be handled two ways:
//!
//! * [`InsertPolicy::StaleSummaries`] — the paper's measured behaviour:
//!   the item is stored locally and the published summaries are left
//!   untouched. Queries can still find it *if* it falls inside one of the
//!   peer's published spheres at every level; otherwise recall decays —
//!   Figure 10c shows "even if we insert as much as 45% new documents, the
//!   recall loses only up to 33%".
//! * [`InsertPolicy::Republish`] — the repair extension: the item is
//!   absorbed into its nearest cluster per level (growing the sphere and
//!   its count) and the updated sphere is re-published, at overlay cost.

use crate::network::HypermNetwork;
use hyperm_can::ObjectRef;
use hyperm_geometry::vecmath::dist;
use hyperm_sim::{NodeId, OpStats};

/// How a post-creation item is integrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InsertPolicy {
    /// Store locally only; published summaries go stale (paper behaviour).
    #[default]
    StaleSummaries,
    /// Absorb into the nearest cluster per level and re-publish it.
    Republish,
}

impl HypermNetwork {
    /// Insert `item` (original space) at `peer` after the network was
    /// built. Returns the message cost (zero for stale summaries).
    pub fn insert_item(&mut self, peer: usize, item: &[f64], policy: InsertPolicy) -> OpStats {
        assert_eq!(item.len(), self.config.data_dim, "item dimension mismatch");
        let dec = self.decompose_query(item);
        let levels = self.levels();
        let mut stats = OpStats::zero();

        // Always: the item joins the peer's local collection and views.
        {
            let subspaces: Vec<_> = (0..levels).map(|l| self.subspace(l)).collect();
            let p = self.peer_mut(peer);
            p.items.push_row(item);
            for (l, &s) in subspaces.iter().enumerate() {
                let coeffs = dec.subspace(s).expect("level exists");
                p.level_views[l].push_row(coeffs);
            }
        }

        if policy == InsertPolicy::Republish {
            for l in 0..levels {
                let s = self.subspace(l);
                let coeffs = dec.subspace(s).expect("level exists").to_vec();
                // Nearest cluster at this level.
                let (best, grew) = {
                    let p = self.peer_mut(peer);
                    let (best, _) = p.summaries[l]
                        .iter()
                        .enumerate()
                        .map(|(c, sp)| (c, dist(&sp.centroid, &coeffs)))
                        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                        .expect("peer has clusters");
                    let sphere = &mut p.summaries[l][best];
                    let old_radius = sphere.radius;
                    sphere.absorb(&coeffs);
                    (best, sphere.radius > old_radius)
                };
                // Re-publish the updated sphere: first invalidate the old
                // replicas (costed per replica), then insert the refreshed
                // sphere — the overlay never accumulates stale versions.
                let (key, key_radius, items) = {
                    let sp = &self.peer(peer).summaries[l][best];
                    // Clamp-slack widening, as in the build-time
                    // publication loop.
                    let (key, slack) = self.keymap(l).to_key_slack(&sp.centroid);
                    (
                        key,
                        self.keymap(l).to_key_radius(sp.radius) + slack,
                        sp.items as u32,
                    )
                };
                let replicate = self.config.replicate;
                if grew || items % 16 == 0 {
                    let (_, invalidation) = self.overlay_mut(l).remove_objects(peer, best as u64);
                    stats += invalidation;
                    let out = self.overlay_mut(l).insert_sphere(
                        NodeId(peer),
                        key,
                        key_radius,
                        ObjectRef {
                            peer,
                            tag: best as u64,
                            items,
                        },
                        replicate,
                    );
                    stats += out.stats;
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HypermConfig;
    use hyperm_cluster::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(seed: u64) -> HypermNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let peers: Vec<Dataset> = (0..5)
            .map(|_| {
                let centre: f64 = rng.gen::<f64>() * 0.5;
                let mut ds = Dataset::new(8);
                let mut row = [0.0f64; 8];
                for _ in 0..25 {
                    for x in row.iter_mut() {
                        *x = (centre + rng.gen::<f64>() * 0.3).clamp(0.0, 1.0);
                    }
                    ds.push_row(&row);
                }
                ds
            })
            .collect();
        let cfg = HypermConfig::new(8)
            .with_levels(3)
            .with_clusters_per_peer(3)
            .with_seed(seed);
        HypermNetwork::build(peers, cfg).unwrap().0
    }

    #[test]
    fn stale_insert_is_free_and_local() {
        let mut net = build(1);
        let before = net.peer(2).len();
        let item = vec![0.4; 8];
        let cost = net.insert_item(2, &item, InsertPolicy::StaleSummaries);
        assert_eq!(cost, OpStats::zero());
        assert_eq!(net.peer(2).len(), before + 1);
        assert_eq!(net.peer(2).level_views[0].len(), before + 1);
    }

    #[test]
    fn stale_item_near_existing_data_is_still_found() {
        let mut net = build(2);
        // Clone of an existing item: inside every published sphere.
        let item = net.peer(1).items.row(0).to_vec();
        net.insert_item(1, &item, InsertPolicy::StaleSummaries);
        let new_idx = net.peer(1).len() - 1;
        let res = net.range_query(0, &item, 0.05, None);
        assert!(res.items.contains(&(1, new_idx)));
    }

    #[test]
    fn republish_updates_summaries_and_costs_messages() {
        let mut net = build(3);
        // An outlier far from peer 0's region.
        let item = vec![0.95; 8];
        let before_counts: usize = net.peer(0).summaries[0].iter().map(|s| s.items).sum();
        let cost = net.insert_item(0, &item, InsertPolicy::Republish);
        assert!(cost.messages > 0, "republish should send messages");
        let after_counts: usize = net.peer(0).summaries[0].iter().map(|s| s.items).sum();
        assert_eq!(after_counts, before_counts + 1);
    }

    #[test]
    fn republished_outlier_becomes_findable() {
        let mut net = build(4);
        let item = vec![0.97; 8];
        net.insert_item(0, &item, InsertPolicy::Republish);
        let new_idx = net.peer(0).len() - 1;
        let res = net.range_query(1, &item, 0.05, None);
        assert!(
            res.items.contains(&(0, new_idx)),
            "republished item not found; ranked: {:?}",
            res.ranked
        );
    }
}

#[cfg(test)]
mod invalidation_tests {
    use super::*;
    use crate::config::HypermConfig;
    use hyperm_cluster::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Repeated republishes must not accumulate stale object versions in
    /// the overlays: per (peer, cluster) at most one version exists.
    #[test]
    fn republish_leaves_no_stale_versions() {
        let mut rng = StdRng::seed_from_u64(11);
        let peers: Vec<Dataset> = (0..4)
            .map(|_| {
                let mut ds = Dataset::new(8);
                let mut row = [0.0f64; 8];
                for _ in 0..20 {
                    for x in row.iter_mut() {
                        *x = rng.gen::<f64>() * 0.5;
                    }
                    ds.push_row(&row);
                }
                ds
            })
            .collect();
        let cfg = HypermConfig::new(8)
            .with_levels(3)
            .with_clusters_per_peer(3)
            .with_seed(12);
        let (mut net, _) = HypermNetwork::build(peers, cfg).unwrap();

        // Hammer the same peer with outliers that grow its spheres.
        for i in 0..10 {
            let item = vec![0.6 + 0.04 * i as f64; 8];
            net.insert_item(0, &item, InsertPolicy::Republish);
        }
        // Count distinct ids per (peer, tag) in every overlay: replicas of
        // one version share an id, so the id set per tag must have size 1.
        for l in 0..net.levels() {
            let mut ids: std::collections::HashMap<(usize, u64), std::collections::HashSet<u64>> =
                std::collections::HashMap::new();
            let overlay = net.overlay(l);
            // Walk all stores via stored_items_per_node length and the
            // public store accessors per backend (Can here).
            if let crate::overlay::Overlay::Can(can) = overlay {
                for node in can.nodes() {
                    for obj in &node.store {
                        ids.entry((obj.payload.peer, obj.payload.tag))
                            .or_default()
                            .insert(obj.id);
                    }
                }
            }
            for ((peer, tag), versions) in ids {
                assert_eq!(
                    versions.len(),
                    1,
                    "level {l}: peer {peer} tag {tag} has {} versions",
                    versions.len()
                );
            }
        }
    }
}
