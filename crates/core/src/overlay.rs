//! Overlay-substrate abstraction.
//!
//! The paper: "Our method has been designed independent of the underlying
//! peer-to-peer overlays, and it could be implemented on top of BATON,
//! VBI-tree, CAN or any peer-to-peer overlays … so long as they can
//! support multi-dimensional indexing." This module delivers that
//! independence: every per-subspace overlay is an [`Overlay`] — either a
//! CAN ([`hyperm_can::CanOverlay`]), a BATON tree with Z-order key mapping
//! ([`hyperm_baton::BatonOverlay`]), or a VBI-tree
//! ([`hyperm_vbi::VbiOverlay`]) — selected by [`OverlayBackend`] in the
//! network configuration. All three overlays the paper names are therefore
//! actually runnable.

use hyperm_baton::{BatonConfig, BatonOverlay};
use hyperm_can::{
    CanConfig, CanOverlay, InsertOutcome, ObjectRef, RangeOutcome, RepairOutcome, StoredObject,
};
use hyperm_sim::{FaultConfig, FaultReport, NodeId, OpStats};
use hyperm_telemetry::{Recorder, SpanId};
use hyperm_vbi::{VbiConfig, VbiOverlay};

/// Which overlay substrate to build per wavelet subspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlayBackend {
    /// Content-Addressable Network (the paper's evaluation substrate).
    #[default]
    Can,
    /// BATON balanced tree over a Z-order linearisation of the subspace.
    Baton,
    /// VBI-tree: a virtual binary index over a kd-partition of the subspace.
    Vbi,
}

/// A per-subspace overlay of either substrate.
// The CAN variant dominates the footprint (fault injector slot +
// partition map), but networks hold a handful of overlays, never
// collections of them, so per-variant boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Overlay {
    /// CAN substrate.
    Can(CanOverlay),
    /// BATON substrate.
    Baton(BatonOverlay),
    /// VBI-tree substrate.
    Vbi(VbiOverlay),
}

impl Overlay {
    /// Bootstrap an overlay of `n` nodes over a `dim`-dimensional key box.
    pub fn bootstrap(backend: OverlayBackend, dim: usize, seed: u64, n: usize) -> Overlay {
        match backend {
            OverlayBackend::Can => Overlay::Can(CanOverlay::bootstrap(
                CanConfig::new(dim).with_seed(seed),
                n,
            )),
            OverlayBackend::Baton => Overlay::Baton(BatonOverlay::bootstrap(
                BatonConfig::new(dim).with_seed(seed),
                n,
            )),
            OverlayBackend::Vbi => Overlay::Vbi(VbiOverlay::bootstrap(
                VbiConfig::new(dim).with_seed(seed),
                n,
            )),
        }
    }

    /// Key-space dimensionality.
    pub fn dim(&self) -> usize {
        match self {
            Overlay::Can(o) => o.dim(),
            Overlay::Baton(o) => o.dim(),
            Overlay::Vbi(o) => o.dim(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        match self {
            Overlay::Can(o) => o.len(),
            Overlay::Baton(o) => o.len(),
            Overlay::Vbi(o) => o.len(),
        }
    }

    /// Whether the overlay has no nodes (never true post-bootstrap).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Construction (join) cost.
    pub fn bootstrap_stats(&self) -> OpStats {
        match self {
            Overlay::Can(o) => o.bootstrap_stats(),
            Overlay::Baton(o) => o.bootstrap_stats(),
            Overlay::Vbi(o) => o.bootstrap_stats(),
        }
    }

    /// Insert a sphere object (see the substrate docs for replication
    /// semantics).
    pub fn insert_sphere(
        &mut self,
        from: NodeId,
        centre: Vec<f64>,
        radius: f64,
        payload: ObjectRef,
        replicate: bool,
    ) -> InsertOutcome {
        match self {
            Overlay::Can(o) => o.insert_sphere(from, centre, radius, payload, replicate),
            Overlay::Baton(o) => o.insert_sphere(from, centre, radius, payload, replicate),
            Overlay::Vbi(o) => o.insert_sphere(from, centre, radius, payload, replicate),
        }
    }

    /// Fallible, fault-aware sphere insertion: the reliable-publish data
    /// path (see [`hyperm_can::CanOverlay::try_insert_sphere`]). On the
    /// tree substrates — which carry no fault injection, matching the
    /// paper's evaluation substrate — this is the plain insert and always
    /// succeeds.
    pub fn try_insert_sphere(
        &mut self,
        from: NodeId,
        centre: Vec<f64>,
        radius: f64,
        payload: ObjectRef,
        replicate: bool,
    ) -> Result<InsertOutcome, OpStats> {
        match self {
            Overlay::Can(o) => o.try_insert_sphere(from, centre, radius, payload, replicate),
            Overlay::Baton(o) => Ok(o.insert_sphere(from, centre, radius, payload, replicate)),
            Overlay::Vbi(o) => Ok(o.insert_sphere(from, centre, radius, payload, replicate)),
        }
    }

    /// Flooding range query.
    pub fn range_query(&self, from: NodeId, centre: &[f64], radius: f64) -> RangeOutcome {
        match self {
            Overlay::Can(o) => o.range_query(from, centre, radius),
            Overlay::Baton(o) => o.range_query(from, centre, radius),
            Overlay::Vbi(o) => o.range_query(from, centre, radius),
        }
    }

    /// Point lookup: stored spheres containing the point.
    pub fn point_lookup(&self, from: NodeId, point: &[f64]) -> (Vec<StoredObject>, OpStats) {
        match self {
            Overlay::Can(o) => o.point_lookup(from, point),
            Overlay::Baton(o) => o.point_lookup(from, point),
            Overlay::Vbi(o) => o.point_lookup(from, point),
        }
    }

    /// Remove all replicas/versions of the object `peer` published under
    /// `tag` (summary invalidation); returns (removed, cost).
    pub fn remove_objects(&mut self, peer: usize, tag: u64) -> (usize, OpStats) {
        match self {
            Overlay::Can(o) => o.remove_objects(peer, tag),
            Overlay::Baton(o) => o.remove_objects(peer, tag),
            Overlay::Vbi(o) => o.remove_objects(peer, tag),
        }
    }

    /// Stored objects per node (replicas counted everywhere).
    pub fn store_sizes(&self) -> Vec<usize> {
        match self {
            Overlay::Can(o) => o.store_sizes(),
            Overlay::Baton(o) => o.store_sizes(),
            Overlay::Vbi(o) => o.store_sizes(),
        }
    }

    /// Summarised item mass per node.
    pub fn stored_items_per_node(&self) -> Vec<u64> {
        match self {
            Overlay::Can(o) => o.stored_items_per_node(),
            Overlay::Baton(o) => o.stored_items_per_node(),
            Overlay::Vbi(o) => o.stored_items_per_node(),
        }
    }

    /// Structural invariant checks (test support).
    pub fn check_invariants(&self) {
        match self {
            Overlay::Can(o) => o.check_invariants(),
            Overlay::Baton(o) => o.check_invariants(),
            Overlay::Vbi(o) => o.check_invariants(),
        }
    }

    /// The CAN overlay inside, if this is the CAN substrate.
    pub fn as_can(&self) -> Option<&CanOverlay> {
        match self {
            Overlay::Can(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the repair subsystem (leave/fail/takeover) is available —
    /// the CAN substrate only; BATON/VBI tree repair is a different
    /// protocol family, out of scope exactly as in the paper.
    pub fn supports_repair(&self) -> bool {
        matches!(self, Overlay::Can(_))
    }

    fn can_mut(&mut self, what: &str) -> &mut CanOverlay {
        match self {
            Overlay::Can(o) => o,
            _ => panic!("{what} requires the CAN substrate"),
        }
    }

    /// Whether a node participates in the overlay (always true on
    /// substrates without a departure protocol).
    pub fn is_node_alive(&self, id: NodeId) -> bool {
        match self {
            Overlay::Can(o) => o.is_alive(id),
            _ => true,
        }
    }

    /// Graceful departure with zone + replica handoff (CAN only; panics on
    /// other substrates — gate on [`Overlay::supports_repair`]).
    pub fn leave(&mut self, id: NodeId) -> RepairOutcome {
        self.can_mut("leave").leave(id)
    }

    /// Crash-stop failure with neighbour takeover (CAN only).
    pub fn fail_node(&mut self, id: NodeId) -> RepairOutcome {
        self.can_mut("fail").fail(id)
    }

    /// Crash-stop failure with **no** takeover — the repair-off baseline
    /// (CAN only). The zone becomes a routing hole.
    pub fn fail_no_takeover(&mut self, id: NodeId) -> OpStats {
        self.can_mut("fail_no_takeover").fail_no_takeover(id)
    }

    /// Run background fragment merges until quiescence (CAN only; a no-op
    /// cost on substrates without fragments).
    pub fn repair_to_quiescence(&mut self, max_passes: usize) -> OpStats {
        match self {
            Overlay::Can(o) => o.repair_to_quiescence(max_passes),
            _ => OpStats::zero(),
        }
    }

    /// Zone fragments awaiting background merge (0 on non-CAN substrates).
    pub fn fragment_count(&self) -> usize {
        match self {
            Overlay::Can(o) => o.fragment_count(),
            _ => 0,
        }
    }

    /// Install the per-peer load probe (CAN only; the tree substrates are
    /// not instrumented, like fault injection and telemetry).
    pub fn set_load_probe(&mut self, probe: hyperm_sim::LoadProbe) {
        if let Overlay::Can(o) = self {
            o.set_load_probe(probe);
        }
    }

    /// Load-balancing split: halve the zone covering `point` and grant the
    /// half containing it to `to` (CAN only; `None` elsewhere). Replicas
    /// are copied, never moved — the candidate set only grows.
    pub fn split_adopt(&mut self, point: &[f64], to: NodeId) -> Option<OpStats> {
        match self {
            Overlay::Can(o) => o.split_adopt(point, to),
            _ => None,
        }
    }

    /// Load-balancing migration: hand `from`'s largest adopted zone
    /// fragment to `to` via the leave/takeover handoff (CAN only; `None`
    /// elsewhere or when `from` holds no fragments).
    pub fn migrate_fragment(
        &mut self,
        from: NodeId,
        to: NodeId,
    ) -> Option<(hyperm_can::Zone, OpStats)> {
        match self {
            Overlay::Can(o) => o.migrate_fragment(from, to),
            _ => None,
        }
    }

    /// Install (or clear) message-level fault injection on query traffic
    /// (CAN only; ignored elsewhere).
    pub fn set_faults(&mut self, cfg: Option<FaultConfig>) {
        if let Overlay::Can(o) = self {
            o.set_faults(cfg);
        }
    }

    /// Install (or clear) a network partition component map on overlay
    /// traffic (CAN only; ignored elsewhere, like fault injection).
    pub fn set_partition(&mut self, map: Option<Vec<u32>>) {
        if let Overlay::Can(o) = self {
            o.set_partition(map);
        }
    }

    /// Fault counters accumulated so far (`None` when injection is off or
    /// the substrate has none).
    pub fn fault_report(&self) -> Option<FaultReport> {
        match self {
            Overlay::Can(o) => o.fault_report(),
            _ => None,
        }
    }

    /// Install a telemetry recorder (CAN only; the tree substrates are not
    /// instrumented — like fault injection, tracing follows the paper's
    /// evaluation substrate).
    pub fn set_recorder(&mut self, rec: Recorder) {
        if let Overlay::Can(o) = self {
            o.set_recorder(rec);
        }
    }

    /// The overlay's recorder handle (a cheap clone; disabled on non-CAN
    /// substrates).
    pub fn recorder(&self) -> Recorder {
        match self {
            Overlay::Can(o) => o.recorder().clone(),
            _ => Recorder::disabled(),
        }
    }

    /// Point the overlay's trace scope at `span`: overlay-internal events
    /// (route hops, floods, takeovers) attach there. No-op on non-CAN
    /// substrates or when tracing is off.
    pub fn set_scope(&self, span: SpanId) {
        if let Overlay::Can(o) = self {
            o.recorder().set_scope(span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_bootstrap_and_answer() {
        for backend in [
            OverlayBackend::Can,
            OverlayBackend::Baton,
            OverlayBackend::Vbi,
        ] {
            let mut overlay = Overlay::bootstrap(backend, 2, 1, 16);
            assert_eq!(overlay.len(), 16);
            assert_eq!(overlay.dim(), 2);
            overlay.check_invariants();
            let out = overlay.insert_sphere(
                NodeId(0),
                vec![0.4, 0.6],
                0.1,
                ObjectRef {
                    peer: 3,
                    tag: 0,
                    items: 7,
                },
                true,
            );
            assert!(out.replicas >= 1);
            let res = overlay.range_query(NodeId(1), &[0.42, 0.6], 0.05);
            assert_eq!(res.matches.len(), 1, "{backend:?}");
            assert_eq!(res.matches[0].payload.peer, 3);
            let (hits, _) = overlay.point_lookup(NodeId(2), &[0.45, 0.6]);
            assert_eq!(hits.len(), 1, "{backend:?}");
            let total_mass: u64 = overlay.stored_items_per_node().iter().sum();
            assert!(total_mass >= 7);
        }
    }
}
