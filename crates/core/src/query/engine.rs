//! Batch query engine.
//!
//! A workload of many queries against the same network repeats work the
//! single-shot APIs cannot amortise: the per-level key-space radii of a
//! range batch depend only on `ε` (computed once here, reused for every
//! query), and the queries themselves are independent, so the engine fans
//! them out over a bounded worker pool. Inside a worker each query runs its
//! levels serially — parallelism across queries saturates the cores
//! already, and nesting level threads under query threads would only add
//! contention.
//!
//! Results are written into per-query slots, so every batch method returns
//! results in input order and each result is bit-identical to the
//! corresponding single-shot call (asserted by `tests/parallel_query.rs`).

// hyperm-lint: allow-file(panic-index) — slot vectors are pre-sized to the batch length and indexed by enumerate()
use crate::network::HypermNetwork;
use crate::query::knn::{KnnOptions, KnnResult};
use crate::query::point::PointResult;
use crate::query::range::RangeResult;

/// Batch executor over a borrowed [`HypermNetwork`].
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine<'a> {
    net: &'a HypermNetwork,
    threads: usize,
}

impl<'a> QueryEngine<'a> {
    /// An engine sized to the host's available parallelism.
    pub fn new(net: &'a HypermNetwork) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self { net, threads }
    }

    /// Override the worker-pool size (1 = fully serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// The network this engine queries.
    pub fn network(&self) -> &'a HypermNetwork {
        self.net
    }

    /// Run `f(i)` for every query index, striding the indices over the
    /// worker pool, and collect results in input order.
    fn map_queries<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let f = &f;
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move |_| {
                        (w..n)
                            .step_by(workers)
                            .map(|i| (i, f(i)))
                            .collect::<Vec<(usize, T)>>()
                    })
                })
                .collect();
            for h in handles {
                // hyperm-lint: allow(panic-unwrap) — re-raising a worker panic on the coordinator thread is the intended propagation
                for (i, v) in h.join().expect("query worker panicked") {
                    slots[i] = Some(v);
                }
            }
        })
        // hyperm-lint: allow(panic-unwrap) — crossbeam scope only errs when a child panicked; propagating is intended
        .expect("crossbeam scope");
        slots
            .into_iter()
            // hyperm-lint: allow(panic-unwrap) — the join loop above filled every slot or panicked
            .map(|s| s.expect("every query answered"))
            .collect()
    }

    /// Range-query every vector in `queries` (shared `eps`/budget),
    /// returning results in input order. The per-level key-space radii are
    /// translated once for the whole batch.
    pub fn range_batch(
        &self,
        from_peer: usize,
        queries: &[Vec<f64>],
        eps: f64,
        peer_budget: Option<usize>,
    ) -> Vec<RangeResult> {
        assert!(eps >= 0.0, "negative radius {eps}");
        let base: Vec<f64> = (0..self.net.levels())
            .map(|l| self.net.query_key_radius(eps, l))
            .collect();
        let base = &base;
        self.map_queries(queries.len(), |i| {
            let q = &queries[i];
            let dec = self.net.decompose_query(q);
            self.net.range_query_with(
                from_peer,
                q,
                eps,
                peer_budget,
                &dec,
                Some(base),
                false,
                None,
            )
        })
    }

    /// k-nn-query every vector in `queries`, results in input order.
    pub fn knn_batch(
        &self,
        from_peer: usize,
        queries: &[Vec<f64>],
        k: usize,
        opts: KnnOptions,
    ) -> Vec<KnnResult> {
        assert!(k > 0, "k must be positive");
        self.map_queries(queries.len(), |i| {
            let q = &queries[i];
            let dec = self.net.decompose_query(q);
            self.net
                .knn_query_with(from_peer, q, k, opts, &dec, false, None)
        })
    }

    /// Point-query every vector in `queries`, results in input order.
    pub fn point_batch(&self, from_peer: usize, queries: &[Vec<f64>]) -> Vec<PointResult> {
        self.map_queries(queries.len(), |i| {
            let q = &queries[i];
            let dec = self.net.decompose_query(q);
            self.net.point_query_with(from_peer, q, &dec, false, None)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HypermConfig;
    use hyperm_cluster::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(seed: u64) -> (HypermNetwork, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let peers: Vec<Dataset> = (0..6)
            .map(|_| {
                let centre: f64 = rng.gen();
                let mut ds = Dataset::new(16);
                let mut row = [0.0f64; 16];
                for _ in 0..25 {
                    for x in row.iter_mut() {
                        *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                    }
                    ds.push_row(&row);
                }
                ds
            })
            .collect();
        let queries: Vec<Vec<f64>> = (0..10)
            .map(|i| peers[i % peers.len()].row(i).to_vec())
            .collect();
        let cfg = HypermConfig::new(16)
            .with_levels(3)
            .with_clusters_per_peer(4)
            .with_seed(seed);
        (HypermNetwork::build(peers, cfg).unwrap().0, queries)
    }

    #[test]
    fn range_batch_matches_single_shot() {
        let (net, queries) = build(1);
        let engine = QueryEngine::new(&net).with_threads(4);
        let batch = engine.range_batch(0, &queries, 0.3, None);
        assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(&batch) {
            let single = net.range_query(0, q, 0.3, None);
            assert_eq!(single.items, b.items);
            assert_eq!(single.stats, b.stats);
            assert_eq!(single.peers_contacted, b.peers_contacted);
        }
    }

    #[test]
    fn knn_batch_matches_single_shot() {
        let (net, queries) = build(2);
        let engine = QueryEngine::new(&net).with_threads(3);
        let batch = engine.knn_batch(0, &queries, 5, KnnOptions::default());
        for (q, b) in queries.iter().zip(&batch) {
            let single = net.knn_query(0, q, 5, KnnOptions::default());
            assert_eq!(single.topk, b.topk);
            assert_eq!(single.stats, b.stats);
            assert_eq!(single.epsilons, b.epsilons);
        }
    }

    #[test]
    fn point_batch_matches_single_shot() {
        let (net, queries) = build(3);
        let engine = QueryEngine::new(&net).with_threads(2);
        let batch = engine.point_batch(1, &queries);
        for (q, b) in queries.iter().zip(&batch) {
            let single = net.point_query(1, q);
            assert_eq!(single.matches, b.matches);
            assert_eq!(single.stats, b.stats);
        }
    }

    #[test]
    fn serial_engine_matches_threaded_engine() {
        let (net, queries) = build(4);
        let serial = QueryEngine::new(&net).with_threads(1);
        let threaded = QueryEngine::new(&net).with_threads(5);
        let a = serial.range_batch(2, &queries, 0.25, Some(3));
        let b = threaded.range_batch(2, &queries, 0.25, Some(3));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.items, y.items);
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let (net, _) = build(5);
        let engine = QueryEngine::new(&net);
        assert!(engine.range_batch(0, &[], 0.1, None).is_empty());
        assert!(engine.point_batch(0, &[]).is_empty());
    }
}
