//! Point (exact-match) queries.
//!
//! "Point queries are straight forward" (Section 4): the query vector is
//! decomposed, each overlay routes to the owner of the corresponding
//! subspace key, and any cluster sphere *containing* the key marks its peer
//! as a candidate. A peer holding the exact item has that item inside one
//! of its cluster spheres at every level (spheres cover their members), so
//! the min-policy candidate set always contains the true holder — then a
//! direct exact-match request settles it.

use crate::config::ScorePolicy;
use crate::network::HypermNetwork;
use crate::query::{direct_fetch_cost, timed_out_fetch_cost, QueryBudget};
use hyperm_sim::{NodeId, OpStats};
use hyperm_telemetry::{names, OpKind, SpanId};
use hyperm_wavelet::Decomposition;
use std::collections::BTreeMap;

/// Outcome of a point query.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Peers holding an exact copy, with the local index of the match.
    pub matches: Vec<(usize, usize)>,
    /// Candidate peers after aggregation (diagnostics).
    pub candidates: Vec<usize>,
    /// Whether a [`QueryBudget`] deadline cut the probe loop short — some
    /// candidates were never asked. Always `false` without a budget.
    pub truncated: bool,
    /// Total message cost.
    pub stats: OpStats,
}

impl HypermNetwork {
    /// Find every peer holding an item exactly equal to `q`.
    pub fn point_query(&self, from_peer: usize, q: &[f64]) -> PointResult {
        let dec = self.decompose_query(q);
        self.point_query_with(from_peer, q, &dec, self.config.parallel_query, None)
    }

    /// Point query with a failure-tolerance [`QueryBudget`]: probes to
    /// unreachable (dead or partition-severed) candidates time out after
    /// `budget.fetch_timeout` ticks, and an optional phase-2 hop deadline
    /// stops probing early with [`PointResult::truncated`] set. Fallback
    /// does not apply — every candidate is probed anyway.
    pub fn point_query_budgeted(
        &self,
        from_peer: usize,
        q: &[f64],
        budget: QueryBudget,
    ) -> PointResult {
        let dec = self.decompose_query(q);
        self.point_query_with(from_peer, q, &dec, self.config.parallel_query, Some(budget))
    }

    /// Shared inner point query (public API and [`crate::QueryEngine`]);
    /// see `HypermNetwork::range_query_with` for the parameter contract.
    pub(crate) fn point_query_with(
        &self,
        from_peer: usize,
        q: &[f64],
        dec: &Decomposition,
        parallel: bool,
        budget: Option<QueryBudget>,
    ) -> PointResult {
        let tel = self.recorder();
        let traced = tel.is_enabled();
        // hyperm-lint: allow(det-wall-clock) — host-latency metric for the trace only; never feeds simulated results or routing decisions
        let t0 = traced.then(std::time::Instant::now);
        let qspan = if traced {
            tel.span(
                // Roots under the ambient scope (serve span when remote).
                tel.scope(),
                names::QUERY,
                vec![("kind", "point".into()), ("from", from_peer.into())],
            )
        } else {
            SpanId::NONE
        };

        // Candidate = sphere containment per level, folded like scores.
        let level_out = self.run_levels(parallel, |l| {
            let key = self.query_key(dec, l);
            let ltel = self.overlay(l).recorder();
            let lspan = if ltel.is_enabled() {
                let s = ltel.span(qspan, names::OVERLAY_LOOKUP, vec![]);
                ltel.set_scope(s);
                s
            } else {
                SpanId::NONE
            };
            let (hits, op) = self.overlay(l).point_lookup(NodeId(from_peer), &key);
            let mut level: BTreeMap<usize, f64> = BTreeMap::new();
            for obj in &hits {
                *level.entry(obj.payload.peer).or_insert(0.0) += obj.payload.items as f64;
            }
            if ltel.is_enabled() {
                ltel.set_scope(SpanId::NONE);
                ltel.end(
                    lspan,
                    names::OVERLAY_LOOKUP,
                    vec![
                        ("hops", op.hops.into()),
                        ("messages", op.messages.into()),
                        ("bytes", op.bytes.into()),
                        ("hits", hits.len().into()),
                    ],
                );
                ltel.record_op(OpKind::PointQuery, Some(l), op);
            }
            (op, level)
        });
        let mut stats = OpStats::zero();
        let mut per_level: Vec<BTreeMap<usize, f64>> = Vec::with_capacity(level_out.len());
        for (op, level) in level_out {
            stats += op;
            per_level.push(level);
        }
        let ranked = crate::score::aggregate(&per_level, self.config.score_policy);
        let candidates: Vec<usize> = ranked.iter().map(|p| p.peer).collect();

        // Direct exact-match probes.
        let q_bytes = 8 * (q.len() as u64 + 1) + 16;
        let mut matches = Vec::new();
        let mut truncated = false;
        match budget {
            None => {
                // Legacy probe loop — byte-identical to the pre-budget path.
                for &peer in &candidates {
                    if !self.is_alive(peer) {
                        stats += OpStats {
                            hops: 1,
                            messages: 1,
                            bytes: q_bytes,
                            ..OpStats::zero()
                        };
                        if traced {
                            tel.event(
                                qspan,
                                names::FETCH,
                                vec![
                                    ("peer", peer.into()),
                                    ("alive", false.into()),
                                    ("matched", false.into()),
                                ],
                            );
                        }
                        continue;
                    }
                    stats += direct_fetch_cost(q_bytes, 24);
                    // Exactly-once load attribution: the answering peer.
                    if let Some(ledger) = self.load_ledger() {
                        ledger.charge_fetch_answered(peer, 24);
                    }
                    let hit = self.peer(peer).local_point(q);
                    if traced {
                        tel.event(
                            qspan,
                            names::FETCH,
                            vec![
                                ("peer", peer.into()),
                                ("alive", true.into()),
                                ("matched", hit.is_some().into()),
                            ],
                        );
                    }
                    if let Some(idx) = hit {
                        matches.push((peer, idx));
                    }
                }
            }
            Some(b) => {
                let ticks = b.timeout_ticks();
                let mut phase2_hops = 0u64;
                for &peer in &candidates {
                    if let Some(d) = b.deadline {
                        if phase2_hops >= d {
                            truncated = true;
                            break;
                        }
                    }
                    if !(self.is_alive(peer) && self.peers_connected(from_peer, peer)) {
                        phase2_hops += ticks;
                        stats += timed_out_fetch_cost(q_bytes, ticks);
                        if traced {
                            tel.event(
                                qspan,
                                names::FETCH_TIMEOUT,
                                vec![
                                    ("peer", peer.into()),
                                    ("ticks", ticks.into()),
                                    ("bytes", q_bytes.into()),
                                ],
                            );
                        }
                        if let Some(m) = tel.metrics() {
                            m.add(names::FETCH_TIMEOUT, 1);
                        }
                        continue;
                    }
                    stats += direct_fetch_cost(q_bytes, 24);
                    // Exactly-once load attribution: the answering peer.
                    if let Some(ledger) = self.load_ledger() {
                        ledger.charge_fetch_answered(peer, 24);
                    }
                    phase2_hops += 2;
                    let hit = self.peer(peer).local_point(q);
                    if traced {
                        tel.event(
                            qspan,
                            names::FETCH,
                            vec![
                                ("peer", peer.into()),
                                ("alive", true.into()),
                                ("matched", hit.is_some().into()),
                            ],
                        );
                    }
                    if let Some(idx) = hit {
                        matches.push((peer, idx));
                    }
                }
            }
        }
        if traced {
            tel.end(
                qspan,
                names::QUERY,
                vec![
                    ("hops", stats.hops.into()),
                    ("messages", stats.messages.into()),
                    ("bytes", stats.bytes.into()),
                    ("matches", matches.len().into()),
                    ("candidates", candidates.len().into()),
                ],
            );
            tel.record_op(OpKind::PointQuery, None, stats);
            if let Some(t0) = t0 {
                tel.record_latency_s(OpKind::PointQuery, None, t0.elapsed().as_secs_f64());
            }
        }
        PointResult {
            matches,
            candidates,
            truncated,
            stats,
        }
    }
}

// Re-export for the doc-comment path used in lib.rs.
#[allow(unused_imports)]
use ScorePolicy as _;

#[cfg(test)]
mod tests {
    use crate::config::HypermConfig;
    use crate::network::HypermNetwork;
    use hyperm_cluster::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(seed: u64) -> (HypermNetwork, Vec<Dataset>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let peers: Vec<Dataset> = (0..6)
            .map(|_| {
                let mut ds = Dataset::new(8);
                let mut row = [0.0f64; 8];
                for _ in 0..30 {
                    for x in row.iter_mut() {
                        *x = rng.gen();
                    }
                    ds.push_row(&row);
                }
                ds
            })
            .collect();
        let cfg = HypermConfig::new(8)
            .with_levels(3)
            .with_clusters_per_peer(4)
            .with_seed(seed);
        let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();
        (net, peers)
    }

    #[test]
    fn finds_existing_items() {
        let (net, peers) = build(1);
        for (p, i) in [(0usize, 0usize), (3, 10), (5, 29)] {
            let q = peers[p].row(i).to_vec();
            let res = net.point_query(1, &q);
            assert!(res.matches.contains(&(p, i)), "missed exact item ({p},{i})");
        }
    }

    #[test]
    fn absent_items_return_empty() {
        let (net, _) = build(2);
        let q = vec![0.123456789; 8];
        let res = net.point_query(0, &q);
        assert!(res.matches.is_empty());
    }

    #[test]
    fn duplicated_items_found_on_all_holders() {
        let mut rng = StdRng::seed_from_u64(3);
        let shared: Vec<f64> = (0..8).map(|_| rng.gen()).collect();
        let peers: Vec<Dataset> = (0..4)
            .map(|_| {
                let mut ds = Dataset::new(8);
                ds.push_row(&shared);
                for _ in 0..10 {
                    let row: Vec<f64> = (0..8).map(|_| rng.gen()).collect();
                    ds.push_row(&row);
                }
                ds
            })
            .collect();
        let cfg = HypermConfig::new(8)
            .with_levels(3)
            .with_clusters_per_peer(3)
            .with_seed(4);
        let (net, _) = HypermNetwork::build(peers, cfg).unwrap();
        let res = net.point_query(0, &shared);
        let holders: std::collections::HashSet<usize> =
            res.matches.iter().map(|&(p, _)| p).collect();
        assert_eq!(holders.len(), 4, "all four holders should be found");
    }

    #[test]
    fn candidates_superset_of_matches() {
        let (net, peers) = build(5);
        let q = peers[2].row(2).to_vec();
        let res = net.point_query(0, &q);
        for (p, _) in &res.matches {
            assert!(res.candidates.contains(p));
        }
    }
}
