//! Query processing (Section 4 of the paper).
//!
//! All three query types share the two-phase structure of Figure 3:
//!
//! 1. **Peer selection** — translate the query into every published wavelet
//!    subspace, run an overlay lookup there, score peers with Eq. 1 and
//!    aggregate across levels;
//! 2. **Item retrieval** — contact the selected peers directly and let them
//!    answer exactly from their local collections (which is why precision
//!    of range queries is always 100%).
//!
//! * [`range`] — ε-range queries, no false dismissals (Theorem 4.1);
//! * [`knn`] — the Figure-5 heuristic with the Eq. 8 radius estimation and
//!   the `C` precision/recall knob;
//! * [`point`] — exact-match lookups;
//! * [`engine`] — batch execution over a query workload, amortising the
//!   per-level radius translation and fanning queries out over threads.

pub mod engine;
pub mod knn;
pub mod point;
pub mod range;

use hyperm_sim::OpStats;

/// Cost of contacting a peer directly (request + response), in overlay
/// message terms: the paper's phase-2 retrieval bypasses the overlay, so we
/// charge one hop each way.
pub(crate) fn direct_fetch_cost(query_bytes: u64, response_bytes: u64) -> OpStats {
    OpStats {
        hops: 2,
        messages: 2,
        bytes: query_bytes + response_bytes,
        ..OpStats::zero()
    }
}
