//! Query processing (Section 4 of the paper).
//!
//! All three query types share the two-phase structure of Figure 3:
//!
//! 1. **Peer selection** — translate the query into every published wavelet
//!    subspace, run an overlay lookup there, score peers with Eq. 1 and
//!    aggregate across levels;
//! 2. **Item retrieval** — contact the selected peers directly and let them
//!    answer exactly from their local collections (which is why precision
//!    of range queries is always 100%).
//!
//! * [`range`] — ε-range queries, no false dismissals (Theorem 4.1);
//! * [`knn`] — the Figure-5 heuristic with the Eq. 8 radius estimation and
//!   the `C` precision/recall knob;
//! * [`point`] — exact-match lookups;
//! * [`engine`] — batch execution over a query workload, amortising the
//!   per-level radius translation and fanning queries out over threads;
//! * [`cache`] — the popular-summary cache entry peers may consult before
//!   a phase-1 overlay lookup (hot-spot relief; see `hyperm-load`).

pub mod cache;
pub mod engine;
pub mod knn;
pub mod point;
pub mod range;

use hyperm_sim::OpStats;

/// Failure-tolerance budget for the phase-2 direct fetch.
///
/// The paper assumes selected peers answer; on a lossy or partitioned MANET
/// they may not. A `QueryBudget` makes the degradation explicit: unanswered
/// fetches cost `fetch_timeout` ticks instead of hanging, `fallback` slides
/// the contact window to the next-scored candidates so the intended number
/// of peers still answers, and `deadline` caps the total phase-2 hop spend —
/// when it runs out the query returns what it has with `truncated = true`.
///
/// Passing no budget (the legacy entry points) keeps phase 2 bit-identical
/// to the original fetch loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryBudget {
    /// Ticks (charged as hops) burnt waiting on an unanswered direct fetch
    /// before declaring the peer unreachable. Clamped to ≥ 1.
    pub fetch_timeout: u64,
    /// Slide the contact window past unreachable peers to the next-scored
    /// candidates, preserving the intended number of answering peers.
    pub fallback: bool,
    /// Optional phase-2 hop budget: checked before each contact; once spent
    /// the query stops fetching and flags its result `truncated`.
    pub deadline: Option<u64>,
}

impl Default for QueryBudget {
    fn default() -> Self {
        Self {
            fetch_timeout: 1,
            fallback: true,
            deadline: None,
        }
    }
}

impl QueryBudget {
    /// Builder-style timeout override.
    pub fn with_fetch_timeout(mut self, ticks: u64) -> Self {
        self.fetch_timeout = ticks;
        self
    }

    /// Builder-style deadline override.
    pub fn with_deadline(mut self, hops: u64) -> Self {
        self.deadline = Some(hops);
        self
    }

    /// Builder-style fallback toggle.
    pub fn with_fallback(mut self, on: bool) -> Self {
        self.fallback = on;
        self
    }

    /// Effective per-probe tick charge (the configured timeout, ≥ 1).
    pub(crate) fn timeout_ticks(&self) -> u64 {
        self.fetch_timeout.max(1)
    }
}

/// Cost of contacting a peer directly (request + response), in overlay
/// message terms: the paper's phase-2 retrieval bypasses the overlay, so we
/// charge one hop each way.
pub(crate) fn direct_fetch_cost(query_bytes: u64, response_bytes: u64) -> OpStats {
    OpStats {
        hops: 2,
        messages: 2,
        bytes: query_bytes + response_bytes,
        ..OpStats::zero()
    }
}

/// Cost of a direct fetch that timed out: the request went out, `ticks`
/// ticks were burnt waiting, no response came back.
pub(crate) fn timed_out_fetch_cost(query_bytes: u64, ticks: u64) -> OpStats {
    OpStats {
        hops: ticks,
        messages: 1,
        bytes: query_bytes,
        failed_routes: 1,
        ..OpStats::zero()
    }
}
