//! Popular-summary cache on query entry peers (hot-spot relief).
//!
//! Zipf-skewed workloads hammer the overlay nodes whose zones cover the
//! popular query centres: phase 1 of every repeated query re-floods the
//! same region and re-charges the same owners. The [`SummaryCache`] lets a
//! query *entry* peer remember the per-level score map a phase-1 lookup
//! produced, keyed by the exact `(entry peer, level, key, ε)` tuple, and
//! answer repeats locally — zero overlay traffic, zero load on the hot
//! zone's host.
//!
//! **Correctness contract (Theorem 4.1 preserved).** A hit replays the
//! *exact* candidate map the cold path produced, so the cache never prunes
//! a candidate — and conservative invalidation guarantees the replay is
//! never stale:
//!
//! * an **epoch counter** is bumped by [`crate::HypermNetwork`] on every
//!   mutable overlay access (publish, refresh, churn, repair, partition
//!   changes all route through `overlay_mut`) — one bump invalidates every
//!   cached entry, so a hit can only serve a map computed against the
//!   overlay state *currently in force*;
//! * a **TTL in refresh rounds** bounds the lifetime of entries even on a
//!   mutation-free timeline, mirroring the soft-state TTL of the published
//!   summaries themselves;
//! * the cache deactivates itself while message-level fault injection is
//!   live: a hit would skip the injector's RNG draws and desynchronise
//!   the fault timeline of later queries.
//!
//! The cache is shared behind an `Arc` (entry peers of one simulated
//! network share the host process), guarded by a `Mutex` over a `BTreeMap`
//! so iteration order — and therefore eviction — is deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A per-level phase-1 score map: peer → Eq.-1 score.
pub type LevelScores = BTreeMap<usize, f64>;

/// Exact identity of one cached phase-1 lookup.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CacheKey {
    level: usize,
    from_peer: usize,
    /// Query key coordinates, bit-exact (`f64::to_bits`).
    key_bits: Vec<u64>,
    /// Key-space search radius, bit-exact.
    eps_bits: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    scores: LevelScores,
    /// Epoch the entry was computed in; any later mutation invalidates it.
    epoch: u64,
    /// Refresh round the entry was inserted in (TTL base).
    round: u64,
    /// Insertion sequence number — the eviction order when full.
    seq: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: BTreeMap<CacheKey, CacheEntry>,
    seq: u64,
}

/// Entry-peer cache of phase-1 level score maps. See the module docs for
/// the invalidation contract.
#[derive(Debug)]
pub struct SummaryCache {
    ttl_rounds: u64,
    max_entries: usize,
    active: AtomicBool,
    epoch: AtomicU64,
    round: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inner: Mutex<Inner>,
}

impl SummaryCache {
    /// A cache whose entries survive `ttl_rounds` refresh rounds (min 1)
    /// and that holds at most `max_entries` lookups (min 1), evicting the
    /// oldest insertion when full.
    pub fn new(ttl_rounds: u64, max_entries: usize) -> Self {
        SummaryCache {
            ttl_rounds: ttl_rounds.max(1),
            max_entries: max_entries.max(1),
            active: AtomicBool::new(true),
            epoch: AtomicU64::new(0),
            round: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // hyperm-lint: allow(panic-unwrap) — cache operations cannot panic while holding the lock, so it is never poisoned
        self.inner.lock().expect("summary cache lock poisoned")
    }

    fn key(&self, from_peer: usize, level: usize, key: &[f64], eps: f64) -> CacheKey {
        CacheKey {
            level,
            from_peer,
            key_bits: key.iter().map(|x| x.to_bits()).collect(),
            eps_bits: eps.to_bits(),
        }
    }

    /// Look up the score map of a previous identical phase-1 lookup.
    /// Returns `None` (a miss) when absent, epoch-stale, TTL-expired, or
    /// while the cache is deactivated; stale entries are dropped on sight.
    pub fn lookup(
        &self,
        from_peer: usize,
        level: usize,
        key: &[f64],
        eps: f64,
    ) -> Option<LevelScores> {
        if !self.active.load(Ordering::Relaxed) {
            return None;
        }
        let k = self.key(from_peer, level, key, eps);
        let epoch = self.epoch.load(Ordering::Relaxed);
        let round = self.round.load(Ordering::Relaxed);
        let mut inner = self.lock();
        match inner.map.get(&k) {
            Some(e) if e.epoch == epoch && round.saturating_sub(e.round) < self.ttl_rounds => {
                let scores = e.scores.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(scores)
            }
            Some(_) => {
                inner.map.remove(&k);
                drop(inner);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Remember the score map a cold phase-1 lookup just produced. Evicts
    /// the oldest insertion when the cache is full. No-op while
    /// deactivated.
    pub fn insert(
        &self,
        from_peer: usize,
        level: usize,
        key: &[f64],
        eps: f64,
        scores: &LevelScores,
    ) {
        if !self.active.load(Ordering::Relaxed) {
            return;
        }
        let k = self.key(from_peer, level, key, eps);
        let epoch = self.epoch.load(Ordering::Relaxed);
        let round = self.round.load(Ordering::Relaxed);
        let mut inner = self.lock();
        if !inner.map.contains_key(&k) && inner.map.len() >= self.max_entries {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.map.insert(
            k,
            CacheEntry {
                scores: scores.clone(),
                epoch,
                round,
                seq,
            },
        );
    }

    /// Invalidate every entry: called on any mutable overlay access
    /// (publish, refresh, churn, repair, partition install/heal).
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Advance the refresh-round clock and sweep entries whose TTL (or
    /// epoch) has expired. Returns how many entries were evicted.
    pub fn advance_round(&self) -> u64 {
        let round = self.round.fetch_add(1, Ordering::Relaxed) + 1;
        let epoch = self.epoch.load(Ordering::Relaxed);
        let mut inner = self.lock();
        let before = inner.map.len();
        let ttl = self.ttl_rounds;
        inner
            .map
            .retain(|_, e| e.epoch == epoch && round.saturating_sub(e.round) < ttl);
        let evicted = (before - inner.map.len()) as u64;
        drop(inner);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// (De)activate the cache. Deactivated while a message-level fault
    /// plan is installed: hits would skip the injector's RNG draws and
    /// desynchronise the fault timeline of subsequent queries.
    pub fn set_active(&self, on: bool) {
        self.active.store(on, Ordering::Relaxed);
    }

    /// Whether lookups are currently served.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Served lookups so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Missed lookups so far (includes stale drops).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted so far (staleness, TTL sweeps, capacity).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Live entries (some may be stale until touched or swept).
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores(pairs: &[(usize, f64)]) -> LevelScores {
        pairs.iter().copied().collect()
    }

    #[test]
    fn hit_after_insert_is_exact() {
        let c = SummaryCache::new(4, 64);
        let s = scores(&[(3, 1.5), (7, 0.25)]);
        assert!(c.lookup(0, 1, &[0.5, 0.5], 0.1).is_none());
        c.insert(0, 1, &[0.5, 0.5], 0.1, &s);
        assert_eq!(c.lookup(0, 1, &[0.5, 0.5], 0.1), Some(s));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn key_is_exact_per_peer_level_point_and_radius() {
        let c = SummaryCache::new(4, 64);
        let s = scores(&[(1, 1.0)]);
        c.insert(0, 1, &[0.5], 0.1, &s);
        assert!(c.lookup(1, 1, &[0.5], 0.1).is_none(), "other entry peer");
        assert!(c.lookup(0, 2, &[0.5], 0.1).is_none(), "other level");
        assert!(c.lookup(0, 1, &[0.5001], 0.1).is_none(), "other point");
        assert!(c.lookup(0, 1, &[0.5], 0.2).is_none(), "other radius");
        assert!(c.lookup(0, 1, &[0.5], 0.1).is_some());
    }

    #[test]
    fn epoch_bump_invalidates_everything() {
        let c = SummaryCache::new(4, 64);
        c.insert(0, 0, &[0.5], 0.1, &scores(&[(1, 1.0)]));
        c.bump_epoch();
        assert!(c.lookup(0, 0, &[0.5], 0.1).is_none());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn ttl_expires_after_configured_rounds() {
        let c = SummaryCache::new(2, 64);
        c.insert(0, 0, &[0.5], 0.1, &scores(&[(1, 1.0)]));
        assert_eq!(c.advance_round(), 0);
        assert!(c.lookup(0, 0, &[0.5], 0.1).is_some(), "one round: alive");
        assert_eq!(c.advance_round(), 1, "second round sweeps it");
        assert!(c.lookup(0, 0, &[0.5], 0.1).is_none());
    }

    #[test]
    fn capacity_evicts_oldest_insertion() {
        let c = SummaryCache::new(8, 2);
        c.insert(0, 0, &[0.1], 0.1, &scores(&[(1, 1.0)]));
        c.insert(0, 0, &[0.2], 0.1, &scores(&[(2, 1.0)]));
        c.insert(0, 0, &[0.3], 0.1, &scores(&[(3, 1.0)]));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(0, 0, &[0.1], 0.1).is_none(), "oldest evicted");
        assert!(c.lookup(0, 0, &[0.2], 0.1).is_some());
        assert!(c.lookup(0, 0, &[0.3], 0.1).is_some());
    }

    #[test]
    fn deactivated_cache_serves_and_stores_nothing() {
        let c = SummaryCache::new(4, 64);
        c.insert(0, 0, &[0.5], 0.1, &scores(&[(1, 1.0)]));
        c.set_active(false);
        assert!(c.lookup(0, 0, &[0.5], 0.1).is_none());
        c.insert(0, 0, &[0.6], 0.1, &scores(&[(2, 1.0)]));
        c.set_active(true);
        assert!(
            c.lookup(0, 0, &[0.6], 0.1).is_none(),
            "not stored while off"
        );
        assert!(c.lookup(0, 0, &[0.5], 0.1).is_some(), "old entry intact");
    }
}
