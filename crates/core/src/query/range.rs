//! Range queries (Section 4.1): retrieve all items within `ε` of `q`.
//!
//! Per level `l`, the query sphere is contracted by Theorem 3.1
//! (`ε_l = ε / √(2^{log d − l})`) and resolved as an overlay range query;
//! any cluster sphere intersecting the contracted query can contain an
//! answer, so its peer gets an Eq.-1 score. The **min** aggregation keeps
//! exactly the peers scored positive at *every* level — Theorem 4.1
//! guarantees no true answer is lost this way. Contacting all positive
//! peers yields recall 1.0 against a flat scan; a `peer_budget` contacts
//! only the top-scored ones, which is the recall-vs-peers trade-off the
//! paper plots in Figure 10a.

// hyperm-lint: allow-file(panic-index) — per-level vectors are built with len == levels() and indexed by the same 0..levels() range
use crate::network::HypermNetwork;
use crate::query::{direct_fetch_cost, timed_out_fetch_cost, QueryBudget};
use crate::score::{aggregate, level_scores, PeerScore};
use hyperm_sim::{NodeId, OpStats};
use hyperm_telemetry::{names, OpKind, SpanId};
use hyperm_wavelet::Decomposition;

/// Outcome of a distributed range query.
#[derive(Debug, Clone)]
pub struct RangeResult {
    /// Retrieved items as `(peer, local index)` — exact, so precision is 1.
    pub items: Vec<(usize, usize)>,
    /// Peers ranked by aggregated score (the candidate list).
    pub ranked: Vec<PeerScore>,
    /// How many of them were actually contacted.
    pub peers_contacted: usize,
    /// Whether a [`QueryBudget`] deadline cut phase 2 short — the items are
    /// a partial (but still exact) answer. Always `false` without a budget.
    pub truncated: bool,
    /// Total message cost: overlay lookups + direct fetches.
    pub stats: OpStats,
}

impl HypermNetwork {
    /// Run a range query from `from_peer` for all items within `eps` of `q`
    /// (original space). `peer_budget = None` contacts every candidate
    /// (guaranteed full recall); `Some(p)` contacts only the `p` best.
    pub fn range_query(
        &self,
        from_peer: usize,
        q: &[f64],
        eps: f64,
        peer_budget: Option<usize>,
    ) -> RangeResult {
        assert!(eps >= 0.0, "negative radius {eps}");
        let dec = self.decompose_query(q);
        self.range_query_with(
            from_peer,
            q,
            eps,
            peer_budget,
            &dec,
            None,
            self.config.parallel_query,
            None,
        )
    }

    /// Range query with a failure-tolerance [`QueryBudget`]: unanswered
    /// direct fetches time out after `budget.fetch_timeout` ticks, the
    /// contact window slides past unreachable (dead or partition-severed)
    /// peers when `budget.fallback` is set, and an optional phase-2 hop
    /// `deadline` degrades gracefully to a partial answer with
    /// [`RangeResult::truncated`] set.
    pub fn range_query_budgeted(
        &self,
        from_peer: usize,
        q: &[f64],
        eps: f64,
        peer_budget: Option<usize>,
        budget: QueryBudget,
    ) -> RangeResult {
        assert!(eps >= 0.0, "negative radius {eps}");
        let dec = self.decompose_query(q);
        self.range_query_with(
            from_peer,
            q,
            eps,
            peer_budget,
            &dec,
            None,
            self.config.parallel_query,
            Some(budget),
        )
    }

    /// Shared inner range query: the public API and the batch
    /// [`crate::QueryEngine`] both land here. `dec` is the query's (possibly
    /// reused) wavelet decomposition; `base_radii` optionally supplies the
    /// per-level key-space radii (the engine precomputes them once per
    /// batch); `parallel` selects per-level scoped threads. All paths
    /// produce bit-identical results: levels are independent and stats are
    /// merged in level order. `budget = None` keeps phase 2 on the legacy
    /// fetch loop, byte for byte.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn range_query_with(
        &self,
        from_peer: usize,
        q: &[f64],
        eps: f64,
        peer_budget: Option<usize>,
        dec: &Decomposition,
        base_radii: Option<&[f64]>,
        parallel: bool,
        budget: Option<QueryBudget>,
    ) -> RangeResult {
        let tel = self.recorder();
        let traced = tel.is_enabled();
        // hyperm-lint: allow(det-wall-clock) — host-latency metric for the trace only; never feeds simulated results or routing decisions
        let t0 = traced.then(std::time::Instant::now);
        let qspan = if traced {
            tel.span(
                // Roots under the recorder's ambient scope — NONE standalone,
                // the serve span when a node runtime is dispatching us.
                tel.scope(),
                names::QUERY,
                vec![
                    ("kind", "range".into()),
                    ("from", from_peer.into()),
                    ("eps", eps.into()),
                ],
            )
        } else {
            SpanId::NONE
        };

        // Phase 1: per-level overlay lookups + scoring. The clamp slack
        // widens the search radius for query points whose subspace
        // coefficients fall outside the configured bounds (zero otherwise),
        // matching the publish-side widening — no false dismissals either
        // way.
        let level_out = self.run_levels(parallel, |l| {
            let (key, slack) = self.query_key_with_slack(dec, l);
            let base = base_radii.map_or_else(|| self.query_key_radius(eps, l), |r| r[l]);
            let key_eps = base + slack;
            let ltel = self.overlay(l).recorder();
            // Popular-summary cache (hot-spot relief): an identical
            // phase-1 lookup seen since the last overlay mutation is
            // answered from the entry peer's cache — the exact score map
            // the cold path produced, at zero overlay cost. See
            // `query::cache` for why a hit can never be stale.
            if let Some(cache) = self.summary_cache() {
                if let Some(scores) = cache.lookup(from_peer, l, &key, key_eps) {
                    if ltel.is_enabled() {
                        ltel.event(
                            qspan,
                            names::CACHE_HIT,
                            vec![("level", l.into()), ("peers", scores.len().into())],
                        );
                    }
                    return (OpStats::zero(), scores);
                }
            }
            let lspan = if ltel.is_enabled() {
                let s = ltel.span(
                    qspan,
                    names::OVERLAY_LOOKUP,
                    vec![("key_eps", key_eps.into())],
                );
                ltel.set_scope(s);
                s
            } else {
                SpanId::NONE
            };
            let out = self
                .overlay(l)
                .range_query(NodeId(from_peer), &key, key_eps);
            let scores = level_scores(&out.matches, &key, key_eps, self.overlay(l).dim() as u32);
            if ltel.is_enabled() {
                ltel.set_scope(SpanId::NONE);
                ltel.end(
                    lspan,
                    names::OVERLAY_LOOKUP,
                    vec![
                        ("hops", out.stats.hops.into()),
                        ("messages", out.stats.messages.into()),
                        ("bytes", out.stats.bytes.into()),
                        ("matches", out.matches.len().into()),
                        ("peers", scores.len().into()),
                    ],
                );
                ltel.record_op(OpKind::RangeQuery, Some(l), out.stats);
            }
            if let Some(cache) = self.summary_cache() {
                cache.insert(from_peer, l, &key, key_eps, &scores);
                if ltel.is_enabled() {
                    ltel.event(qspan, names::CACHE_MISS, vec![("level", l.into())]);
                }
            }
            (out.stats, scores)
        });
        let mut stats = OpStats::zero();
        let mut per_level = Vec::with_capacity(level_out.len());
        for (op, scores) in level_out {
            stats += op;
            per_level.push(scores);
        }
        let ranked = aggregate(&per_level, self.config.score_policy);
        if traced {
            for ps in &ranked {
                tel.event(
                    qspan,
                    names::SCORE,
                    vec![("peer", ps.peer.into()), ("score", ps.score.into())],
                );
            }
        }

        // Phase 2: contact the selected peers; they answer exactly.
        let target = peer_budget.map_or(ranked.len(), |b| b.min(ranked.len()));
        let mut items = Vec::new();
        let mut truncated = false;
        let mut contacted = 0usize;
        let q_bytes = 8 * (q.len() as u64 + 1) + 16;
        match budget {
            None => {
                // Legacy fetch loop — byte-identical to the pre-budget path.
                for ps in &ranked[..target] {
                    if !self.is_alive(ps.peer) {
                        // Timed-out probe: one unanswered request.
                        stats += hyperm_sim::OpStats {
                            hops: 1,
                            messages: 1,
                            bytes: q_bytes,
                            ..OpStats::zero()
                        };
                        if traced {
                            tel.event(
                                qspan,
                                names::FETCH,
                                vec![
                                    ("peer", ps.peer.into()),
                                    ("alive", false.into()),
                                    ("items", 0u64.into()),
                                    ("bytes", q_bytes.into()),
                                ],
                            );
                        }
                        continue;
                    }
                    let local = self.peer(ps.peer).local_range(q, eps);
                    let resp_bytes = 8 * q.len() as u64 * local.len() as u64 + 16;
                    stats += direct_fetch_cost(q_bytes, resp_bytes);
                    // The answering peer (and only it) is charged for the
                    // phase-2 fetch; timed-out probes charge no one.
                    if let Some(ledger) = self.load_ledger() {
                        ledger.charge_fetch_answered(ps.peer, resp_bytes);
                    }
                    if traced {
                        tel.event(
                            qspan,
                            names::FETCH,
                            vec![
                                ("peer", ps.peer.into()),
                                ("alive", true.into()),
                                ("items", local.len().into()),
                                ("bytes", (q_bytes + resp_bytes).into()),
                            ],
                        );
                    }
                    items.extend(local.into_iter().map(|i| (ps.peer, i)));
                }
                contacted = target;
            }
            Some(b) => {
                // Failure-aware fetch: answered fetches count toward the
                // target, unreachable peers cost a timeout, and (with
                // fallback) the window slides to the next-scored candidate.
                let ticks = b.timeout_ticks();
                let mut phase2_hops = 0u64;
                for (idx, ps) in ranked.iter().enumerate() {
                    if contacted == target {
                        break;
                    }
                    if !b.fallback && idx >= target {
                        break;
                    }
                    if let Some(d) = b.deadline {
                        if phase2_hops >= d {
                            truncated = true;
                            break;
                        }
                    }
                    let reachable =
                        self.is_alive(ps.peer) && self.peers_connected(from_peer, ps.peer);
                    if !reachable {
                        phase2_hops += ticks;
                        stats += timed_out_fetch_cost(q_bytes, ticks);
                        if traced {
                            tel.event(
                                qspan,
                                names::FETCH_TIMEOUT,
                                vec![
                                    ("peer", ps.peer.into()),
                                    ("ticks", ticks.into()),
                                    ("bytes", q_bytes.into()),
                                ],
                            );
                        }
                        if let Some(m) = tel.metrics() {
                            m.add(names::FETCH_TIMEOUT, 1);
                        }
                        continue;
                    }
                    if idx >= target {
                        if traced {
                            tel.event(
                                qspan,
                                names::FETCH_FALLBACK,
                                vec![("peer", ps.peer.into()), ("rank", idx.into())],
                            );
                        }
                        if let Some(m) = tel.metrics() {
                            m.add(names::FETCH_FALLBACK, 1);
                        }
                    }
                    let local = self.peer(ps.peer).local_range(q, eps);
                    let resp_bytes = 8 * q.len() as u64 * local.len() as u64 + 16;
                    stats += direct_fetch_cost(q_bytes, resp_bytes);
                    // The answering peer (and only it) is charged for the
                    // phase-2 fetch; timed-out probes charge no one.
                    if let Some(ledger) = self.load_ledger() {
                        ledger.charge_fetch_answered(ps.peer, resp_bytes);
                    }
                    phase2_hops += 2;
                    if traced {
                        tel.event(
                            qspan,
                            names::FETCH,
                            vec![
                                ("peer", ps.peer.into()),
                                ("alive", true.into()),
                                ("items", local.len().into()),
                                ("bytes", (q_bytes + resp_bytes).into()),
                            ],
                        );
                    }
                    items.extend(local.into_iter().map(|i| (ps.peer, i)));
                    contacted += 1;
                }
            }
        }
        if traced {
            tel.end(
                qspan,
                names::QUERY,
                vec![
                    ("hops", stats.hops.into()),
                    ("messages", stats.messages.into()),
                    ("bytes", stats.bytes.into()),
                    ("items", items.len().into()),
                    ("peers_contacted", contacted.into()),
                ],
            );
            tel.record_op(OpKind::RangeQuery, None, stats);
            if let Some(t0) = t0 {
                tel.record_latency_s(OpKind::RangeQuery, None, t0.elapsed().as_secs_f64());
            }
        }
        RangeResult {
            items,
            ranked,
            peers_contacted: contacted,
            truncated,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::HypermConfig;
    use crate::network::HypermNetwork;
    use hyperm_baseline::FlatIndex;
    use hyperm_cluster::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(seed: u64) -> (HypermNetwork, Vec<Dataset>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let peers: Vec<Dataset> = (0..8)
            .map(|_| {
                let mut ds = Dataset::new(16);
                let mut row = [0.0f64; 16];
                // Each peer draws from a couple of soft interest regions.
                let centre: f64 = rng.gen();
                for _ in 0..40 {
                    for x in row.iter_mut() {
                        *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                    }
                    ds.push_row(&row);
                }
                ds
            })
            .collect();
        let cfg = HypermConfig::new(16)
            .with_levels(4)
            .with_clusters_per_peer(5)
            .with_seed(seed);
        let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();
        (net, peers)
    }

    #[test]
    fn full_budget_recall_is_one() {
        let (net, peers) = build(1);
        let flat = FlatIndex::from_peers(&peers);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let q: Vec<f64> = {
                // Query near an existing item so answers exist.
                let p = rng.gen_range(0..peers.len());
                let i = rng.gen_range(0..peers[p].len());
                peers[p].row(i).to_vec()
            };
            let eps = 0.3;
            let truth = flat.range(&q, eps);
            let got = net.range_query(0, &q, eps, None);
            let got_set: std::collections::HashSet<_> = got.items.iter().copied().collect();
            for t in &truth {
                assert!(got_set.contains(t), "missed {t:?} — false dismissal!");
            }
            // Precision 1: everything retrieved is within eps.
            assert_eq!(got_set.len(), truth.len());
        }
    }

    #[test]
    fn smaller_budget_cannot_increase_cost() {
        let (net, peers) = build(2);
        let q = peers[0].row(0).to_vec();
        let full = net.range_query(0, &q, 0.4, None);
        let tight = net.range_query(0, &q, 0.4, Some(1));
        assert!(tight.peers_contacted <= 1);
        assert!(tight.stats.messages <= full.stats.messages);
        assert!(tight.items.len() <= full.items.len());
    }

    #[test]
    fn zero_radius_finds_exact_item() {
        let (net, peers) = build(3);
        let q = peers[3].row(7).to_vec();
        let got = net.range_query(0, &q, 0.0, None);
        assert!(got.items.contains(&(3, 7)));
    }

    #[test]
    fn empty_region_returns_nothing() {
        let (net, _) = build(4);
        // All data is in [0,1]^16; query far outside (clamped keys still
        // resolve, but no local item is within eps).
        let q = vec![-10.0; 16];
        let got = net.range_query(0, &q, 0.5, None);
        assert!(got.items.is_empty());
    }

    #[test]
    fn ranked_peers_hold_the_answers() {
        let (net, peers) = build(5);
        let flat = FlatIndex::from_peers(&peers);
        let q = peers[5].row(0).to_vec();
        let truth = flat.range(&q, 0.25);
        let got = net.range_query(1, &q, 0.25, None);
        let candidate_peers: std::collections::HashSet<usize> =
            got.ranked.iter().map(|p| p.peer).collect();
        for (peer, _) in truth {
            assert!(
                candidate_peers.contains(&peer),
                "peer {peer} not even a candidate"
            );
        }
    }
}

impl HypermNetwork {
    /// Range query that picks its own peer budget: contact the fewest
    /// top-scored peers whose cumulative Eq.-1 score mass reaches
    /// `target_recall` of the total (0 < target ≤ 1).
    ///
    /// The Eq.-1 score of a peer estimates how many relevant items it
    /// holds, so the cumulative score fraction is an *a-priori* recall
    /// estimate — the knob Figure 10a sweeps by hand, automated. With
    /// `target_recall = 1.0` every candidate is contacted and the
    /// no-false-dismissal guarantee applies unchanged.
    pub fn range_query_adaptive(
        &self,
        from_peer: usize,
        q: &[f64],
        eps: f64,
        target_recall: f64,
    ) -> RangeResult {
        assert!(
            target_recall > 0.0 && target_recall <= 1.0,
            "target recall must be in (0, 1], got {target_recall}"
        );
        // Phase 1 once, unbudgeted, to obtain the ranking.
        let ranked = self.range_query(from_peer, q, eps, Some(0)).ranked;
        let total: f64 = ranked.iter().map(|p| p.score).sum();
        let mut budget = ranked.len();
        if total > 0.0 && target_recall < 1.0 {
            let mut acc = 0.0;
            for (i, ps) in ranked.iter().enumerate() {
                acc += ps.score;
                if acc / total >= target_recall {
                    budget = i + 1;
                    break;
                }
            }
        }
        self.range_query(from_peer, q, eps, Some(budget))
    }
}

#[cfg(test)]
mod adaptive_tests {
    use crate::config::HypermConfig;
    use crate::network::HypermNetwork;
    use hyperm_cluster::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(seed: u64) -> HypermNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let peers: Vec<Dataset> = (0..12)
            .map(|_| {
                let centre: f64 = rng.gen();
                let mut ds = Dataset::new(16);
                let mut row = [0.0f64; 16];
                for _ in 0..30 {
                    for x in row.iter_mut() {
                        *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                    }
                    ds.push_row(&row);
                }
                ds
            })
            .collect();
        let cfg = HypermConfig::new(16)
            .with_levels(4)
            .with_clusters_per_peer(5)
            .with_seed(seed);
        HypermNetwork::build(peers, cfg).unwrap().0
    }

    #[test]
    fn full_target_equals_unbudgeted_query() {
        let net = build(1);
        let q = net.peer(3).items.row(0).to_vec();
        let full = net.range_query(0, &q, 0.3, None);
        let adaptive = net.range_query_adaptive(0, &q, 0.3, 1.0);
        let mut a = full.items.clone();
        let mut b = adaptive.items.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn lower_targets_contact_fewer_peers() {
        let net = build(2);
        let q = net.peer(5).items.row(1).to_vec();
        let half = net.range_query_adaptive(0, &q, 0.4, 0.5);
        let full = net.range_query_adaptive(0, &q, 0.4, 1.0);
        assert!(half.peers_contacted <= full.peers_contacted);
        assert!(half.items.len() <= full.items.len());
        // The achieved recall (vs the full answer) should be near or above
        // the requested mass fraction on this well-clustered data.
        if !full.items.is_empty() {
            let got: std::collections::HashSet<_> = half.items.iter().collect();
            let recall = full.items.iter().filter(|i| got.contains(i)).count() as f64
                / full.items.len() as f64;
            assert!(recall >= 0.3, "achieved recall {recall}");
        }
    }

    #[test]
    #[should_panic(expected = "target recall")]
    fn zero_target_rejected() {
        let net = build(3);
        let q = net.peer(0).items.row(0).to_vec();
        net.range_query_adaptive(0, &q, 0.2, 0.0);
    }
}
