//! k-nearest-neighbour queries — the Figure-5 heuristic.
//!
//! The summaries cannot say exactly where the k closest items live, so the
//! paper estimates, per level, the range-query radius ε whose *expected*
//! retrieval is k items (Eq. 8, inverted numerically), merges the per-level
//! results into peer scores, picks the top `P` peers whose cumulative score
//! covers k, and requests from each a share proportional to its score:
//!
//! ```text
//! no_items_p = C · k · score_p / Σ_top-P score      (Figure 5, step 8)
//! ```
//!
//! `C` trades bandwidth for recall (the paper reports +14.51% recall,
//! −21.05% precision going from C = 1 to 1.5).
//!
//! One departure from the paper, documented in DESIGN.md: Eq. 8 needs "the
//! number of all reachable clusters", which a centralized solver would just
//! read off. Distributedly we *discover* the clusters with an expanding-ring
//! overlay query (doubling radius until enough summarised items are in
//! view), then run the estimation on what was found.

// hyperm-lint: allow-file(panic-index) — per-level vectors are built with len == levels() and indexed by the same 0..levels() range
use crate::network::HypermNetwork;
use crate::query::{direct_fetch_cost, timed_out_fetch_cost, QueryBudget};
use crate::score::{aggregate, level_scores, peers_to_cover, PeerScore};
use hyperm_geometry::vecmath::dist;
use hyperm_geometry::{solve_epsilon_for_k, ClusterView};
use hyperm_sim::{NodeId, OpStats};
use hyperm_telemetry::{names, OpKind, SpanId};
use hyperm_wavelet::Decomposition;

/// Tuning of the k-nn heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnOptions {
    /// The `C` knob of Figure 5 (reasonable values 1–2 per the paper).
    pub c: f64,
    /// Optional hard cap on peers contacted.
    pub peer_budget: Option<usize>,
    /// Initial expanding-ring radius as a fraction of the key-space
    /// diagonal (the ring doubles until enough clusters are in view).
    pub probe_start: f64,
}

impl Default for KnnOptions {
    fn default() -> Self {
        Self {
            c: 1.0,
            peer_budget: None,
            probe_start: 0.05,
        }
    }
}

impl KnnOptions {
    /// Builder-style `C` override.
    pub fn with_c(mut self, c: f64) -> Self {
        assert!(c > 0.0, "C must be positive");
        self.c = c;
        self
    }
}

/// Outcome of a k-nn query.
#[derive(Debug, Clone)]
pub struct KnnResult {
    /// Every item fetched from the contacted peers, sorted by true
    /// distance — the paper's *retrieved set* (size ≈ C·k), the basis of
    /// its precision numbers.
    pub retrieved: Vec<((usize, usize), f64)>,
    /// The best k of [`KnnResult::retrieved`] — the final answer.
    pub topk: Vec<((usize, usize), f64)>,
    /// Per-level estimated radii (key space), for diagnostics.
    pub epsilons: Vec<f64>,
    /// Peers ranked by aggregated score.
    pub ranked: Vec<PeerScore>,
    /// Peers actually contacted (`P`).
    pub peers_contacted: usize,
    /// Whether a [`QueryBudget`] deadline cut phase 2 short — the retrieved
    /// set is partial. Always `false` without a budget.
    pub truncated: bool,
    /// Total message cost.
    pub stats: OpStats,
}

impl HypermNetwork {
    /// Retrieve the `k` items nearest to `q` (original space), following
    /// the retrieveKnn algorithm of Figure 5.
    pub fn knn_query(&self, from_peer: usize, q: &[f64], k: usize, opts: KnnOptions) -> KnnResult {
        let dec = self.decompose_query(q);
        self.knn_query_with(
            from_peer,
            q,
            k,
            opts,
            &dec,
            self.config.parallel_query,
            None,
        )
    }

    /// k-nn query with a failure-tolerance [`QueryBudget`]: unreachable
    /// peers are skipped after a timeout (with fallback to the next-scored
    /// candidates, so `P` answering peers are still assembled when
    /// possible), and an optional phase-2 hop deadline degrades to a
    /// partial retrieved set with [`KnnResult::truncated`] set.
    pub fn knn_query_budgeted(
        &self,
        from_peer: usize,
        q: &[f64],
        k: usize,
        opts: KnnOptions,
        budget: QueryBudget,
    ) -> KnnResult {
        let dec = self.decompose_query(q);
        self.knn_query_with(
            from_peer,
            q,
            k,
            opts,
            &dec,
            self.config.parallel_query,
            Some(budget),
        )
    }

    /// Shared inner k-nn query (public API and [`crate::QueryEngine`]);
    /// see [`HypermNetwork::range_query_with`] for the parameter contract.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn knn_query_with(
        &self,
        from_peer: usize,
        q: &[f64],
        k: usize,
        opts: KnnOptions,
        dec: &Decomposition,
        parallel: bool,
        budget: Option<QueryBudget>,
    ) -> KnnResult {
        assert!(k > 0, "k must be positive");
        let tel = self.recorder();
        let traced = tel.is_enabled();
        // hyperm-lint: allow(det-wall-clock) — host-latency metric for the trace only; never feeds simulated results or routing decisions
        let t0 = traced.then(std::time::Instant::now);
        let qspan = if traced {
            tel.span(
                // Roots under the ambient scope (serve span when remote).
                tel.scope(),
                names::QUERY,
                vec![
                    ("kind", "knn".into()),
                    ("from", from_peer.into()),
                    ("k", k.into()),
                    ("c", opts.c.into()),
                ],
            )
        } else {
            SpanId::NONE
        };
        let level_out = self.run_levels(parallel, |l| {
            let mut lstats = OpStats::zero();
            let (key, slack) = self.query_key_with_slack(dec, l);
            let dim = self.overlay(l).dim() as u32;
            let diag = (dim as f64).sqrt();
            let ltel = self.overlay(l).recorder();
            let lspan = if ltel.is_enabled() {
                let s = ltel.span(qspan, names::OVERLAY_LOOKUP, vec![]);
                ltel.set_scope(s);
                s
            } else {
                SpanId::NONE
            };

            // Step 2 (adapted): discover candidate clusters by expanding
            // ring, then invert Eq. 8 on them.
            let mut probe = (opts.probe_start * diag).max(1e-6);
            let mut clusters;
            loop {
                let out = self.overlay(l).range_query(NodeId(from_peer), &key, probe);
                lstats += out.stats;
                let in_view: f64 = out.matches.iter().map(|o| o.payload.items as f64).sum();
                clusters = out.matches;
                if ltel.is_enabled() {
                    ltel.event(
                        lspan,
                        names::PROBE,
                        vec![("radius", probe.into()), ("in_view", in_view.into())],
                    );
                }
                if in_view >= 2.0 * k as f64 || probe >= diag {
                    break;
                }
                probe *= 2.0;
            }
            let views: Vec<ClusterView> = clusters
                .iter()
                .map(|o| ClusterView {
                    centre_dist: dist(&o.centre, &key),
                    radius: o.radius,
                    items: o.payload.items as f64,
                })
                .collect();
            let eps_l = solve_epsilon_for_k(dim, &views, k as f64, 1e-6);

            // Step 3: the level's range query at the estimated radius,
            // clamp-slack widened (zero for in-bounds queries).
            let search = eps_l + slack;
            let out = self.overlay(l).range_query(NodeId(from_peer), &key, search);
            lstats += out.stats;
            let scores = level_scores(&out.matches, &key, search, dim);
            if ltel.is_enabled() {
                ltel.set_scope(SpanId::NONE);
                ltel.end(
                    lspan,
                    names::OVERLAY_LOOKUP,
                    vec![
                        ("hops", lstats.hops.into()),
                        ("messages", lstats.messages.into()),
                        ("bytes", lstats.bytes.into()),
                        ("eps_l", eps_l.into()),
                        ("peers", scores.len().into()),
                    ],
                );
                ltel.record_op(OpKind::KnnQuery, Some(l), lstats);
            }
            (lstats, eps_l, scores)
        });
        let mut stats = OpStats::zero();
        let mut epsilons = Vec::with_capacity(level_out.len());
        let mut per_level = Vec::with_capacity(level_out.len());
        for (lstats, eps_l, scores) in level_out {
            stats += lstats;
            epsilons.push(eps_l);
            per_level.push(scores);
        }

        // Step 4: merge returned results.
        let ranked = aggregate(&per_level, self.config.score_policy);

        // Steps 5–6: P = peers whose cumulative score covers k.
        let mut p = peers_to_cover(&ranked, k as f64);
        if p == 0 && !ranked.is_empty() {
            p = 1;
        }
        if let Some(budget) = opts.peer_budget {
            p = p.min(budget);
        }
        let mut truncated = false;
        let mut retrieved: Vec<((usize, usize), f64)> = Vec::new();
        let q_bytes = 8 * (q.len() as u64 + 1) + 16;
        let peers_contacted = match budget {
            None => {
                // Legacy fetch loop — byte-identical to the pre-budget path.
                let selected = &ranked[..p.min(ranked.len())];
                let sum: f64 = selected.iter().map(|s| s.score).sum();

                // Steps 7–9: request a proportional share from each
                // selected peer.
                for ps in selected {
                    if !self.is_alive(ps.peer) {
                        stats += OpStats {
                            hops: 1,
                            messages: 1,
                            bytes: q_bytes,
                            ..OpStats::zero()
                        };
                        if traced {
                            tel.event(
                                qspan,
                                names::FETCH,
                                vec![
                                    ("peer", ps.peer.into()),
                                    ("alive", false.into()),
                                    ("items", 0u64.into()),
                                    ("bytes", q_bytes.into()),
                                ],
                            );
                        }
                        continue;
                    }
                    let share = if sum > 0.0 {
                        ps.score / sum
                    } else {
                        1.0 / selected.len() as f64
                    };
                    let want = ((opts.c * k as f64 * share).ceil() as usize).max(1);
                    let local = self.peer(ps.peer).local_knn(q, want);
                    let resp_bytes = 8 * q.len() as u64 * local.len() as u64 + 16;
                    stats += direct_fetch_cost(q_bytes, resp_bytes);
                    // Exactly-once load attribution: the answering peer.
                    if let Some(ledger) = self.load_ledger() {
                        ledger.charge_fetch_answered(ps.peer, resp_bytes);
                    }
                    if traced {
                        tel.event(
                            qspan,
                            names::FETCH,
                            vec![
                                ("peer", ps.peer.into()),
                                ("alive", true.into()),
                                ("want", want.into()),
                                ("items", local.len().into()),
                                ("bytes", (q_bytes + resp_bytes).into()),
                            ],
                        );
                    }
                    retrieved.extend(local.into_iter().map(|(i, d)| ((ps.peer, i), d)));
                }
                selected.len()
            }
            Some(b) => {
                // Failure-aware selection, then fetch. Unreachable peers
                // cost a timeout; with fallback the window slides so P
                // reachable peers (when available) still split the k·C
                // request mass by score.
                let ticks = b.timeout_ticks();
                let mut phase2_hops = 0u64;
                let target = p.min(ranked.len());
                let mut selected: Vec<&PeerScore> = Vec::with_capacity(target);
                for (idx, ps) in ranked.iter().enumerate() {
                    if selected.len() == target {
                        break;
                    }
                    if !b.fallback && idx >= target {
                        break;
                    }
                    if let Some(d) = b.deadline {
                        if phase2_hops >= d {
                            truncated = true;
                            break;
                        }
                    }
                    if !(self.is_alive(ps.peer) && self.peers_connected(from_peer, ps.peer)) {
                        phase2_hops += ticks;
                        stats += timed_out_fetch_cost(q_bytes, ticks);
                        if traced {
                            tel.event(
                                qspan,
                                names::FETCH_TIMEOUT,
                                vec![
                                    ("peer", ps.peer.into()),
                                    ("ticks", ticks.into()),
                                    ("bytes", q_bytes.into()),
                                ],
                            );
                        }
                        if let Some(m) = tel.metrics() {
                            m.add(names::FETCH_TIMEOUT, 1);
                        }
                        continue;
                    }
                    if idx >= target {
                        if traced {
                            tel.event(
                                qspan,
                                names::FETCH_FALLBACK,
                                vec![("peer", ps.peer.into()), ("rank", idx.into())],
                            );
                        }
                        if let Some(m) = tel.metrics() {
                            m.add(names::FETCH_FALLBACK, 1);
                        }
                    }
                    selected.push(ps);
                }
                let sum: f64 = selected.iter().map(|s| s.score).sum();
                let mut fetched = 0usize;
                for ps in &selected {
                    if let Some(d) = b.deadline {
                        if phase2_hops >= d {
                            truncated = true;
                            break;
                        }
                    }
                    let share = if sum > 0.0 {
                        ps.score / sum
                    } else {
                        1.0 / selected.len() as f64
                    };
                    let want = ((opts.c * k as f64 * share).ceil() as usize).max(1);
                    let local = self.peer(ps.peer).local_knn(q, want);
                    let resp_bytes = 8 * q.len() as u64 * local.len() as u64 + 16;
                    stats += direct_fetch_cost(q_bytes, resp_bytes);
                    // Exactly-once load attribution: the answering peer.
                    if let Some(ledger) = self.load_ledger() {
                        ledger.charge_fetch_answered(ps.peer, resp_bytes);
                    }
                    phase2_hops += 2;
                    if traced {
                        tel.event(
                            qspan,
                            names::FETCH,
                            vec![
                                ("peer", ps.peer.into()),
                                ("alive", true.into()),
                                ("want", want.into()),
                                ("items", local.len().into()),
                                ("bytes", (q_bytes + resp_bytes).into()),
                            ],
                        );
                    }
                    retrieved.extend(local.into_iter().map(|(i, d)| ((ps.peer, i), d)));
                    fetched += 1;
                }
                fetched
            }
        };

        // Step 10: sort and cut.
        // hyperm-lint: allow(panic-unwrap) — distances are finite (inputs validated, no NaN can reach the sort key)
        retrieved.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        let topk = retrieved.iter().take(k).cloned().collect();
        if traced {
            tel.end(
                qspan,
                names::QUERY,
                vec![
                    ("hops", stats.hops.into()),
                    ("messages", stats.messages.into()),
                    ("bytes", stats.bytes.into()),
                    ("retrieved", retrieved.len().into()),
                    ("peers_contacted", peers_contacted.into()),
                ],
            );
            tel.record_op(OpKind::KnnQuery, None, stats);
            if let Some(t0) = t0 {
                tel.record_latency_s(OpKind::KnnQuery, None, t0.elapsed().as_secs_f64());
            }
        }
        KnnResult {
            retrieved,
            topk,
            epsilons,
            ranked,
            peers_contacted,
            truncated,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HypermConfig;
    use hyperm_baseline::{precision_recall, FlatIndex};
    use hyperm_cluster::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(seed: u64, peers_n: usize, items: usize) -> (HypermNetwork, Vec<Dataset>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let peers: Vec<Dataset> = (0..peers_n)
            .map(|_| {
                let centre: f64 = rng.gen::<f64>() * 0.6;
                let mut ds = Dataset::new(16);
                let mut row = [0.0f64; 16];
                for _ in 0..items {
                    for x in row.iter_mut() {
                        *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                    }
                    ds.push_row(&row);
                }
                ds
            })
            .collect();
        let cfg = HypermConfig::new(16)
            .with_levels(4)
            .with_clusters_per_peer(5)
            .with_seed(seed);
        let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();
        (net, peers)
    }

    #[test]
    fn returns_k_items_sorted() {
        let (net, peers) = build(1, 8, 40);
        let q = peers[2].row(5).to_vec();
        let res = net.knn_query(0, &q, 10, KnnOptions::default());
        assert_eq!(res.topk.len(), 10);
        for w in res.topk.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!(res.retrieved.len() >= res.topk.len());
        assert!(res.peers_contacted >= 1);
        assert_eq!(res.epsilons.len(), net.levels());
    }

    #[test]
    fn self_query_finds_the_item_itself() {
        let (net, peers) = build(2, 8, 40);
        let q = peers[4].row(0).to_vec();
        let res = net.knn_query(4, &q, 5, KnnOptions::default());
        assert_eq!(res.topk[0].0, (4, 0));
        assert!(res.topk[0].1 < 1e-9);
    }

    #[test]
    fn recall_is_reasonable_on_clustered_data() {
        let (net, peers) = build(3, 10, 50);
        let flat = FlatIndex::from_peers(&peers);
        let mut rng = StdRng::seed_from_u64(7);
        let mut total_recall = 0.0;
        let trials = 15;
        for _ in 0..trials {
            let p = rng.gen_range(0..peers.len());
            let i = rng.gen_range(0..peers[p].len());
            let q = peers[p].row(i).to_vec();
            let k = 10;
            let truth: Vec<(usize, usize)> =
                flat.knn(&q, k).into_iter().map(|(id, _)| id).collect();
            let res = net.knn_query(0, &q, k, KnnOptions::default());
            let got: Vec<(usize, usize)> = res.topk.iter().map(|&(id, _)| id).collect();
            total_recall += precision_recall(&got, &truth).recall;
        }
        let avg = total_recall / trials as f64;
        // The paper reports ≈50–60% balanced precision/recall; on this easy
        // synthetic workload we expect at least that.
        assert!(avg > 0.45, "avg recall {avg}");
    }

    #[test]
    fn larger_c_retrieves_more_items() {
        let (net, peers) = build(4, 8, 40);
        let q = peers[1].row(3).to_vec();
        let res1 = net.knn_query(0, &q, 10, KnnOptions::default().with_c(1.0));
        let res2 = net.knn_query(0, &q, 10, KnnOptions::default().with_c(2.0));
        assert!(res2.retrieved.len() >= res1.retrieved.len());
    }

    #[test]
    fn peer_budget_caps_contacts() {
        let (net, peers) = build(5, 8, 40);
        let q = peers[0].row(0).to_vec();
        let res = net.knn_query(
            0,
            &q,
            20,
            KnnOptions {
                peer_budget: Some(2),
                ..Default::default()
            },
        );
        assert!(res.peers_contacted <= 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let (net, peers) = build(6, 4, 20);
        let q = peers[0].row(0).to_vec();
        net.knn_query(0, &q, 0, KnnOptions::default());
    }
}
