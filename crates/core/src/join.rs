//! Live peer joins: a device arrives after the network is up.
//!
//! The paper's deployment model has everyone joining in a burst at session
//! start (related work [2, 5] parallelises exactly that), but its scenarios
//! — a conference room, a train — obviously admit latecomers. A joining
//! peer summarises its collection offline, joins every overlay (CAN zone
//! split at a random point) and publishes its cluster spheres; the cost is
//! the same per-peer cost the initial build charged, so the network grows
//! incrementally at no penalty to anyone else.
//!
//! Supported on the CAN substrate (whose join protocol the original paper
//! defines); the static BATON build would need the tree-rotation join
//! protocol of the BATON paper, which is out of scope — joins on a
//! BATON-backed network return [`JoinError::UnsupportedBackend`].

use crate::network::HypermNetwork;
use crate::overlay::Overlay;
use crate::peer::Peer;
use hyperm_can::ObjectRef;
use hyperm_cluster::Dataset;
use hyperm_sim::{NodeId, OpStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a live join was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinError {
    /// The joining peer's data does not match the network dimensionality.
    DimensionMismatch {
        /// Data dimensionality supplied.
        got: usize,
        /// Network data dimensionality.
        expected: usize,
    },
    /// The peer brought no items.
    EmptyCollection,
    /// The overlay substrate has no dynamic join (BATON here).
    UnsupportedBackend,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::DimensionMismatch { got, expected } => {
                write!(
                    f,
                    "joining data is {got}-dimensional, network expects {expected}"
                )
            }
            JoinError::EmptyCollection => write!(f, "joining peer has no items"),
            JoinError::UnsupportedBackend => {
                write!(f, "live joins require the CAN substrate")
            }
        }
    }
}

impl std::error::Error for JoinError {}

/// Outcome of a live join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinReport {
    /// The new peer's id (== its node id in every overlay).
    pub peer: usize,
    /// Overlay join cost (zone splits).
    pub join: OpStats,
    /// Summary publication cost.
    pub insertion: OpStats,
    /// Cluster spheres published.
    pub clusters_published: u64,
}

impl HypermNetwork {
    /// Add a latecomer with its local collection; summarises, joins every
    /// overlay and publishes. Returns the new peer id and the costs.
    pub fn join_peer(&mut self, items: Dataset) -> Result<JoinReport, JoinError> {
        if items.is_empty() {
            return Err(JoinError::EmptyCollection);
        }
        if items.dim() != self.config.data_dim {
            return Err(JoinError::DimensionMismatch {
                got: items.dim(),
                expected: self.config.data_dim,
            });
        }
        for l in 0..self.levels() {
            if !matches!(self.overlay(l), Overlay::Can(_)) {
                return Err(JoinError::UnsupportedBackend);
            }
        }

        let peer_id = self.len();
        let peer = Peer::summarize(peer_id, items, &self.config);
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add(0xBEEF)
                .wrapping_add(peer_id as u64),
        );

        // Join every overlay at a random point; the new CAN node id must
        // equal `peer_id`, which holds because nodes are appended densely.
        let mut join = OpStats::zero();
        for l in 0..self.levels() {
            let dim = self.overlay(l).dim();
            let point: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
            // Entry node: resample until an alive node comes up (under
            // churn, dead slots stay in the table; with everyone alive the
            // RNG stream — and thus the whole join — is unchanged).
            let entry = loop {
                let e = NodeId(rng.gen_range(0..self.overlay(l).len()));
                if self.overlay(l).is_node_alive(e) {
                    break e;
                }
            };
            let Overlay::Can(can) = self.overlay_mut(l) else {
                unreachable!("checked above")
            };
            let before = can.bootstrap_stats();
            let new_node = can.join(entry, &point);
            assert_eq!(new_node.0, peer_id, "overlay node ids must track peer ids");
            let after = can.bootstrap_stats();
            join += OpStats {
                hops: after.hops - before.hops,
                messages: after.messages - before.messages,
                bytes: after.bytes - before.bytes,
                retries: after.retries - before.retries,
                failed_routes: after.failed_routes - before.failed_routes,
            };
        }

        // Publish the newcomer's summaries (step i3 of Figure 2).
        let mut insertion = OpStats::zero();
        let mut clusters_published = 0u64;
        for l in 0..self.levels() {
            for (c, sphere) in peer.summaries[l].iter().enumerate() {
                // Clamp-slack widening, as in the build-time publication
                // loop: keeps out-of-bounds centroids covered (zero for
                // in-bounds data).
                let (key, slack) = self.keymap(l).to_key_slack(&sphere.centroid);
                let key_radius = self.keymap(l).to_key_radius(sphere.radius) + slack;
                let replicate = self.config.replicate;
                let items_count = sphere.items as u32;
                let out = self.overlay_mut(l).insert_sphere(
                    NodeId(peer_id),
                    key,
                    key_radius,
                    ObjectRef {
                        peer: peer_id,
                        tag: c as u64,
                        items: items_count,
                    },
                    replicate,
                );
                insertion += out.stats;
                clusters_published += 1;
            }
        }

        self.push_peer(peer);
        Ok(JoinReport {
            peer: peer_id,
            join,
            insertion,
            clusters_published,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HypermConfig;
    use crate::overlay::OverlayBackend;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn data(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(16);
        let mut row = [0.0f64; 16];
        for _ in 0..n {
            for x in row.iter_mut() {
                *x = rng.gen();
            }
            ds.push_row(&row);
        }
        ds
    }

    fn build(backend: OverlayBackend) -> HypermNetwork {
        let peers: Vec<Dataset> = (0..6).map(|p| data(p as u64, 25)).collect();
        let cfg = HypermConfig::new(16)
            .with_levels(3)
            .with_clusters_per_peer(4)
            .with_seed(1)
            .with_backend(backend);
        HypermNetwork::build(peers, cfg).unwrap().0
    }

    #[test]
    fn latecomer_is_fully_searchable() {
        let mut net = build(OverlayBackend::Can);
        let newcomer = data(99, 30);
        let probe = newcomer.row(7).to_vec();
        let report = net.join_peer(newcomer).unwrap();
        assert_eq!(report.peer, 6);
        assert_eq!(net.len(), 7);
        assert!(report.insertion.hops > 0);
        assert!(report.clusters_published > 0);
        // Its items are now findable by everyone.
        let res = net.range_query(0, &probe, 1e-9, None);
        assert!(res.items.contains(&(6, 7)), "latecomer's item not found");
        // And the overlays remain structurally sound.
        for l in 0..net.levels() {
            net.overlay(l).check_invariants();
            assert_eq!(net.overlay(l).len(), 7);
        }
    }

    #[test]
    fn existing_data_unaffected_by_join() {
        let mut net = build(OverlayBackend::Can);
        let probe = net.peer(2).items.row(3).to_vec();
        net.join_peer(data(77, 10)).unwrap();
        let res = net.range_query(1, &probe, 1e-9, None);
        assert!(
            res.items.contains(&(2, 3)),
            "pre-existing item lost after join"
        );
    }

    #[test]
    fn multiple_joins_accumulate() {
        let mut net = build(OverlayBackend::Can);
        for i in 0..4 {
            let report = net.join_peer(data(200 + i, 12)).unwrap();
            assert_eq!(report.peer, 6 + i as usize);
        }
        assert_eq!(net.len(), 10);
        net.overlay(0).check_invariants();
    }

    #[test]
    fn error_paths() {
        let mut net = build(OverlayBackend::Can);
        assert_eq!(
            net.join_peer(Dataset::new(16)).unwrap_err(),
            JoinError::EmptyCollection
        );
        let wrong = {
            let mut ds = Dataset::new(8);
            ds.push_row(&[0.0; 8]);
            ds
        };
        assert!(matches!(
            net.join_peer(wrong).unwrap_err(),
            JoinError::DimensionMismatch {
                got: 8,
                expected: 16
            }
        ));
        let mut baton_net = build(OverlayBackend::Baton);
        assert_eq!(
            baton_net.join_peer(data(5, 5)).unwrap_err(),
            JoinError::UnsupportedBackend
        );
    }
}
