//! A Hyper-M peer: local items, their wavelet views, and the published
//! cluster summaries.
//!
//! Step *i1*/*i2* of the paper's Figure 2 happen here: every local item is
//! decomposed with the DWT ("this process could be done offline, and it
//! does not add to the overall time complexity"), the coefficients of each
//! published subspace are collected into a per-level dataset, and k-means
//! summarises each level into `K_p` cluster spheres.

use crate::config::HypermConfig;
use hyperm_cluster::kmeans::kmeans;
use hyperm_cluster::{spheres_from_clustering, ClusterSphere, Dataset, KMeansConfig, KdTree};
use hyperm_geometry::vecmath::sq_dist;
use hyperm_wavelet::decompose;

/// One device and its local collection.
#[derive(Debug, Clone)]
pub struct Peer {
    /// Peer index (also its CAN node id in every overlay).
    pub id: usize,
    /// Original-space items (rows).
    pub items: Dataset,
    /// Per published subspace: the items' coefficients in that subspace
    /// (row i ↔ item i).
    pub level_views: Vec<Dataset>,
    /// Per published subspace: the cluster-sphere summaries (step *i2*).
    pub summaries: Vec<Vec<ClusterSphere>>,
    /// kd-tree over the items present at summarisation time; items appended
    /// later (maintenance inserts) live past `index.indexed_len()` and are
    /// scanned linearly (main-index + delta-buffer).
    index: KdTree,
}

impl Peer {
    /// Decompose and summarise `items` according to `config`.
    ///
    /// The k-means seed is derived from `(config.seed, id, level)` so the
    /// whole network build is reproducible while peers stay decorrelated.
    pub fn summarize(id: usize, items: Dataset, config: &HypermConfig) -> Peer {
        assert!(!items.is_empty(), "peer {id} has no items");
        assert_eq!(items.dim(), config.data_dim, "peer {id} dimension mismatch");
        let subspaces = config.subspaces();

        // Decompose every item once; scatter coefficients into per-level
        // datasets.
        let mut level_views: Vec<Dataset> = subspaces
            .iter()
            .map(|s| Dataset::with_capacity(s.dim(), items.len()))
            .collect();
        for row in items.rows() {
            let dec = decompose(row, config.normalization).expect("power-of-two dim");
            for (view, &s) in level_views.iter_mut().zip(&subspaces) {
                view.push_row(dec.subspace(s).expect("subspace exists"));
            }
        }

        // Cluster each level independently.
        let summaries: Vec<Vec<ClusterSphere>> = level_views
            .iter()
            .enumerate()
            .map(|(l, view)| {
                let cfg = KMeansConfig {
                    k: config.clusters_per_peer,
                    max_iter: config.kmeans_max_iter,
                    tol: 1e-9,
                    init: Default::default(),
                    seed: config
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((id as u64) << 20)
                        .wrapping_add(l as u64),
                };
                let result = kmeans(view, &cfg);
                spheres_from_clustering(view, &result)
            })
            .collect();

        let index = KdTree::build(&items);
        Peer {
            id,
            items,
            level_views,
            summaries,
            index,
        }
    }

    /// Number of local items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the peer holds no items (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Exact local range scan in the **original** space: indices of items
    /// within `eps` of `q`. This is the "retrieve the actual data items"
    /// step (s3) — precision is 100% because the peer filters by true
    /// distance. Indexed items go through the kd-tree; the post-build delta
    /// is scanned linearly.
    pub fn local_range(&self, q: &[f64], eps: f64) -> Vec<usize> {
        let mut out = self.index.range(&self.items, q, eps);
        let e2 = eps * eps;
        for i in self.index.indexed_len()..self.items.len() {
            if sq_dist(self.items.row(i), q) <= e2 + 1e-12 {
                out.push(i);
            }
        }
        out.sort_unstable();
        out
    }

    /// Exact local k-nn in the original space: `(local index, distance)`
    /// pairs, closest first (kd-tree over the indexed prefix merged with a
    /// linear scan of the delta).
    pub fn local_knn(&self, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut all = self.index.knn(&self.items, q, k);
        for i in self.index.indexed_len()..self.items.len() {
            all.push((i, sq_dist(self.items.row(i), q).sqrt()));
        }
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Exact-match local lookup.
    pub fn local_point(&self, q: &[f64]) -> Option<usize> {
        self.items.rows().position(|row| sq_dist(row, q) < 1e-18)
    }

    /// Total wire bytes of all published summaries (what dissemination
    /// actually transfers, vs. `8·dim·len` for the raw items).
    pub fn summary_bytes(&self) -> u64 {
        self.summaries
            .iter()
            .flatten()
            .map(|s| s.wire_bytes() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn items(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        let mut row = vec![0.0; dim];
        for _ in 0..n {
            for x in row.iter_mut() {
                *x = rng.gen();
            }
            ds.push_row(&row);
        }
        ds
    }

    fn config() -> HypermConfig {
        HypermConfig::new(16)
            .with_levels(3)
            .with_clusters_per_peer(4)
    }

    #[test]
    fn summarize_produces_per_level_structures() {
        let peer = Peer::summarize(0, items(50, 16, 1), &config());
        assert_eq!(peer.level_views.len(), 3);
        assert_eq!(peer.summaries.len(), 3);
        assert_eq!(peer.level_views[0].dim(), 1); // A
        assert_eq!(peer.level_views[1].dim(), 1); // D0
        assert_eq!(peer.level_views[2].dim(), 2); // D1
        for (views, summary) in peer.level_views.iter().zip(&peer.summaries) {
            assert_eq!(views.len(), 50);
            assert!(summary.len() <= 4);
            assert_eq!(summary.iter().map(|s| s.items).sum::<usize>(), 50);
        }
    }

    #[test]
    fn summaries_cover_their_level_views() {
        let peer = Peer::summarize(3, items(40, 16, 2), &config());
        for (view, summary) in peer.level_views.iter().zip(&peer.summaries) {
            for row in view.rows() {
                assert!(
                    summary.iter().any(|s| s.contains(row)),
                    "coefficient row escapes all spheres"
                );
            }
        }
    }

    #[test]
    fn local_queries_are_exact() {
        let ds = Dataset::from_rows(&[[0.0; 16], [0.5; 16], [1.0; 16]]);
        let peer = Peer::summarize(0, ds, &config());
        let q = [0.0f64; 16];
        assert_eq!(peer.local_range(&q, 0.1), vec![0]);
        assert_eq!(peer.local_range(&q, 2.1), vec![0, 1]);
        let knn = peer.local_knn(&q, 2);
        assert_eq!(knn[0].0, 0);
        assert_eq!(knn[1].0, 1);
        assert_eq!(peer.local_point(&[0.5; 16]), Some(1));
        assert_eq!(peer.local_point(&[0.4; 16]), None);
    }

    #[test]
    fn summaries_are_much_smaller_than_items() {
        let peer = Peer::summarize(0, items(500, 16, 3), &config());
        let raw_bytes = 8 * 16 * 500u64;
        assert!(
            peer.summary_bytes() * 10 < raw_bytes,
            "{} vs {}",
            peer.summary_bytes(),
            raw_bytes
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Peer::summarize(7, items(30, 16, 4), &config());
        let b = Peer::summarize(7, items(30, 16, 4), &config());
        assert_eq!(a.summaries, b.summaries);
    }
}
