//! **Hyper-M** — fast data dissemination for structured P2P MANETs.
//!
//! Reproduction of Lupu, Li, Ooi, Shi: *"Clustering wavelets to speed-up
//! data dissemination in structured P2P MANETs"*, ICDE 2007.
//!
//! The setting: devices meet for a short time (a commute, a conference
//! session) and want to share large personal collections. Publishing every
//! item into a structured overlay costs `O(log N)` routing per item — too
//! slow and too battery-hungry for thousands of items. Hyper-M publishes
//! **summaries** instead:
//!
//! 1. every item is decomposed with the Haar DWT ([`hyperm_wavelet`]);
//! 2. each wavelet subspace is clustered independently with k-means
//!    ([`hyperm_cluster`]);
//! 3. only the resulting cluster spheres (centroid, radius, count) are
//!    inserted — one CAN overlay per subspace ([`hyperm_can`]).
//!
//! Retrieval scores peers by the volume fraction of cluster∩query sphere
//! intersections (Eq. 1), aggregates scores across subspaces (min policy),
//! then fetches actual items directly from the top-scored peers. Range
//! queries have **no false dismissals** (Theorems 3.1/4.1); k-nn queries
//! invert the expected-volume curve (Eqs. 5–8) to pick per-subspace radii.
//!
//! # Quick start
//!
//! ```
//! use hyperm_core::{HypermConfig, HypermNetwork};
//! use hyperm_cluster::Dataset;
//!
//! // Four peers, each with a handful of 8-d items in [0,1].
//! let peers: Vec<Dataset> = (0..4)
//!     .map(|p| {
//!         let rows: Vec<Vec<f64>> =
//!             (0..20).map(|i| (0..8).map(|d| ((p * 31 + i * 7 + d) % 10) as f64 / 10.0).collect()).collect();
//!         Dataset::from_rows(&rows)
//!     })
//!     .collect();
//! let config = HypermConfig::new(8).with_levels(3).with_clusters_per_peer(4);
//! let (net, report) = HypermNetwork::build(peers, config).unwrap();
//! assert!(report.clusters_published > 0);
//!
//! // A range query around one of peer 0's items finds it.
//! let q: Vec<f64> = net.peer(0).items.row(0).to_vec();
//! let res = net.range_query(0, &q, 0.05, None);
//! assert!(res.items.contains(&(0, 0)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod churn;
pub mod config;
pub mod eval;
pub mod join;
pub mod maintenance;
pub mod network;
pub mod overlay;
pub mod peer;
pub mod publish;
pub mod query;
pub mod score;

pub use churn::ChurnOutcome;
pub use config::{HypermConfig, ScorePolicy};
pub use eval::EvalHarness;
pub use join::{JoinError, JoinReport};
pub use maintenance::InsertPolicy;
pub use network::{BuildReport, HypermNetwork};
pub use overlay::{Overlay, OverlayBackend};
pub use peer::Peer;
pub use publish::{PublishReport, SphereRef};
pub use query::cache::{LevelScores, SummaryCache};
pub use query::engine::QueryEngine;
pub use query::knn::{KnnOptions, KnnResult};
pub use query::point::PointResult;
pub use query::range::RangeResult;
pub use query::QueryBudget;
pub use score::PeerScore;

// Telemetry handle, re-exported so downstream code can build traced
// networks without a direct `hyperm-telemetry` dependency.
pub use hyperm_telemetry::Recorder;

/// Errors surfaced by the Hyper-M framework.
#[derive(Debug, Clone, PartialEq)]
pub enum HypermError {
    /// Data dimensionality is not a power of two.
    BadDimension(usize),
    /// Too many levels requested for the data dimensionality.
    TooManyLevels {
        /// Levels requested.
        requested: usize,
        /// Maximum supported for this dimensionality (`log₂ d + 1`).
        max: usize,
    },
    /// No peers supplied.
    NoPeers,
    /// A peer's data does not match the configured dimensionality.
    DimensionMismatch {
        /// Offending peer index.
        peer: usize,
        /// That peer's data dimensionality.
        got: usize,
        /// Configured dimensionality.
        expected: usize,
    },
}

impl std::fmt::Display for HypermError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HypermError::BadDimension(d) => {
                write!(f, "data dimensionality {d} is not a power of two")
            }
            HypermError::TooManyLevels { requested, max } => {
                write!(
                    f,
                    "{requested} overlay levels requested but dimensionality supports {max}"
                )
            }
            HypermError::NoPeers => write!(f, "no peers supplied"),
            HypermError::DimensionMismatch {
                peer,
                got,
                expected,
            } => {
                write!(
                    f,
                    "peer {peer} has {got}-dimensional data, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for HypermError {}
