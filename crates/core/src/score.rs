//! Peer relevance scoring (Section 3.2, Eq. 1).
//!
//! ```text
//! Score_l(p) = Σ_c  Vol(sphere_c ∩ sphere_q)/Vol(sphere_c) · items_c
//! ```
//!
//! computed per level from the cluster spheres an overlay range query
//! returned, then folded across levels with the configured
//! [`ScorePolicy`]. The paper uses the **minimum**: "it has the desirable
//! property of pruning many candidate peers" and (Section 4.1) yields no
//! false dismissals for range queries — a peer holding a true answer has a
//! positive score at *every* level, so its minimum stays positive.

use crate::config::ScorePolicy;
use hyperm_can::StoredObject;
use hyperm_geometry::intersection_fraction;
use hyperm_geometry::vecmath::dist;
use std::collections::BTreeMap;

/// A peer and its aggregated relevance score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerScore {
    /// Peer index.
    pub peer: usize,
    /// Aggregated score (expected number of relevant items, Eq. 1 units).
    pub score: f64,
}

/// Eq. 1 for one level: fold the matched cluster spheres into per-peer
/// scores. `q_key`/`eps_key` are the query centre and radius in the
/// level's key space; `dim` is that key space's dimensionality.
pub fn level_scores(
    matches: &[StoredObject],
    q_key: &[f64],
    eps_key: f64,
    dim: u32,
) -> BTreeMap<usize, f64> {
    let mut scores: BTreeMap<usize, f64> = BTreeMap::new();
    for obj in matches {
        let b = dist(&obj.centre, q_key);
        // A zero-radius query degenerates to containment: the volume
        // fraction is 0 but a cluster holding the point is fully relevant.
        let frac = if eps_key == 0.0 {
            if b <= obj.radius + 1e-12 {
                1.0
            } else {
                0.0
            }
        } else {
            intersection_fraction(dim, obj.radius.max(0.0), eps_key, b)
        };
        if frac > 0.0 {
            *scores.entry(obj.payload.peer).or_insert(0.0) += frac * obj.payload.items as f64;
        }
    }
    scores
}

/// Fold per-level score maps into one ranked list.
///
/// With [`ScorePolicy::Min`], a peer must appear with positive score at
/// **every** level to survive (absence ⇒ score 0 ⇒ pruned). `Avg`/`Max`
/// treat missing levels as 0 but do not prune.
pub fn aggregate(levels: &[BTreeMap<usize, f64>], policy: ScorePolicy) -> Vec<PeerScore> {
    if levels.is_empty() {
        return Vec::new();
    }
    // Union of peers seen at any level.
    let mut all_peers: Vec<usize> = levels.iter().flat_map(|m| m.keys().copied()).collect();
    all_peers.sort_unstable();
    all_peers.dedup();

    let mut out = Vec::with_capacity(all_peers.len());
    for peer in all_peers {
        let per_level: Vec<f64> = levels
            .iter()
            .map(|m| m.get(&peer).copied().unwrap_or(0.0))
            .collect();
        let score = match policy {
            ScorePolicy::Min => per_level.iter().copied().fold(f64::INFINITY, f64::min),
            ScorePolicy::Avg => per_level.iter().sum::<f64>() / per_level.len() as f64,
            ScorePolicy::Max => per_level.iter().copied().fold(0.0, f64::max),
        };
        if score > 0.0 && score.is_finite() {
            out.push(PeerScore { peer, score });
        }
    }
    // Highest score first; ties by peer id for determinism.
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.peer.cmp(&b.peer))
    });
    out
}

/// The number of top peers whose cumulative score reaches `target`
/// (at least 1 when any peer scored). This is how the k-nn algorithm picks
/// `P` in Figure 5 (steps 4–6).
pub fn peers_to_cover(ranked: &[PeerScore], target: f64) -> usize {
    if ranked.is_empty() {
        return 0;
    }
    let mut acc = 0.0;
    for (i, ps) in ranked.iter().enumerate() {
        acc += ps.score;
        if acc >= target {
            return i + 1;
        }
    }
    ranked.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperm_can::ObjectRef;

    fn obj(peer: usize, centre: Vec<f64>, radius: f64, items: u32) -> StoredObject {
        StoredObject {
            id: 0,
            centre,
            radius,
            payload: ObjectRef {
                peer,
                tag: 0,
                items,
            },
        }
    }

    #[test]
    fn level_scores_weight_by_overlap_and_count() {
        let q = [0.5, 0.5];
        let matches = vec![
            obj(1, vec![0.5, 0.5], 0.1, 100), // cluster inside query → full weight
            obj(2, vec![0.9, 0.5], 0.1, 100), // far → zero
        ];
        let scores = level_scores(&matches, &q, 0.25, 2);
        assert!((scores[&1] - 100.0).abs() < 1e-9);
        assert!(!scores.contains_key(&2));
    }

    #[test]
    fn min_policy_prunes_missing_levels() {
        let l0: BTreeMap<usize, f64> = [(1, 10.0), (2, 5.0)].into_iter().collect();
        let l1: BTreeMap<usize, f64> = [(1, 4.0)].into_iter().collect(); // peer 2 absent
        let ranked = aggregate(&[l0.clone(), l1.clone()], ScorePolicy::Min);
        assert_eq!(ranked.len(), 1);
        assert_eq!(
            ranked[0],
            PeerScore {
                peer: 1,
                score: 4.0
            }
        );
        // Avg keeps peer 2 with halved score.
        let ranked = aggregate(&[l0.clone(), l1.clone()], ScorePolicy::Avg);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].peer, 1);
        assert!((ranked[1].score - 2.5).abs() < 1e-12);
        // Max is the most permissive.
        let ranked = aggregate(&[l0, l1], ScorePolicy::Max);
        assert_eq!(ranked[0].score, 10.0);
    }

    #[test]
    fn ranking_is_deterministic_on_ties() {
        let l: BTreeMap<usize, f64> = [(3, 1.0), (1, 1.0), (2, 1.0)].into_iter().collect();
        let ranked = aggregate(&[l], ScorePolicy::Min);
        let ids: Vec<usize> = ranked.iter().map(|p| p.peer).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn peers_to_cover_counts_cumulative() {
        let ranked = vec![
            PeerScore {
                peer: 0,
                score: 5.0,
            },
            PeerScore {
                peer: 1,
                score: 3.0,
            },
            PeerScore {
                peer: 2,
                score: 1.0,
            },
        ];
        assert_eq!(peers_to_cover(&ranked, 4.0), 1);
        assert_eq!(peers_to_cover(&ranked, 7.0), 2);
        assert_eq!(peers_to_cover(&ranked, 100.0), 3);
        assert_eq!(peers_to_cover(&[], 1.0), 0);
    }

    #[test]
    fn empty_levels_produce_empty_ranking() {
        assert!(aggregate(&[], ScorePolicy::Min).is_empty());
        let empty: BTreeMap<usize, f64> = BTreeMap::new();
        assert!(aggregate(&[empty], ScorePolicy::Min).is_empty());
    }
}
