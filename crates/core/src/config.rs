//! Hyper-M network configuration.
//!
//! The knobs mirror the paper's experimental parameters: the number of
//! overlay **levels** (wavelet subspaces published — the paper settles on
//! four), the number of **clusters per peer** (`K_p`, 5–20 in Figure 10b),
//! the score **aggregation policy** (minimum in all the paper's
//! experiments), and whether overlapping cluster spheres are **replicated**
//! across CAN zones (Figure 8a studies the overhead).

use crate::overlay::OverlayBackend;
use hyperm_wavelet::{Normalization, Subspace};

/// How per-level peer scores are folded into one global score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScorePolicy {
    /// `Score = min_l Score_l` — the paper's choice: prunes aggressively
    /// and provably yields no false dismissals for range queries.
    #[default]
    Min,
    /// Arithmetic mean across levels (ablation).
    Avg,
    /// `max_l Score_l` — most permissive (ablation).
    Max,
}

/// Configuration of a Hyper-M network.
#[derive(Debug, Clone, PartialEq)]
pub struct HypermConfig {
    /// Original data dimensionality (must be a power of two).
    pub data_dim: usize,
    /// Number of wavelet subspaces published: `{A, D_0, …, D_{levels−2}}`.
    /// The paper's effectiveness experiments use 4.
    pub levels: usize,
    /// Clusters per peer per subspace (`K_p`).
    pub clusters_per_peer: usize,
    /// Haar normalisation convention (paper average by default).
    pub normalization: Normalization,
    /// Coordinate bounds of the original data space (`[lo, hi]` per
    /// dimension) — part of the shared network configuration, like a DHT's
    /// hash function.
    pub data_bounds: (f64, f64),
    /// Replicate cluster spheres into every CAN zone they overlap
    /// (Section 5 / Figure 6). Disabling reproduces the "no replication
    /// standard" line of Figure 8a.
    pub replicate: bool,
    /// Score aggregation policy.
    pub score_policy: ScorePolicy,
    /// Cap on per-overlay CAN dimensionality (subspaces wider than this are
    /// projected onto their leading coordinates for key purposes). The
    /// paper's 4-level configuration uses subspace dims 1,1,2,4 — uncapped.
    pub max_can_dim: usize,
    /// k-means iteration cap for peer summarisation.
    pub kmeans_max_iter: usize,
    /// Execute the per-level overlay lookups of a query concurrently
    /// (scoped threads, one per level). Results are bit-identical to the
    /// serial path — levels are independent and their stats are merged in
    /// level order — so this is purely a host wall-clock knob.
    pub parallel_query: bool,
    /// Master seed: peers, levels and overlays derive their own from it.
    pub seed: u64,
    /// Which overlay substrate to build per subspace (CAN in the paper's
    /// evaluation; BATON as the overlay-independence alternative).
    pub overlay_backend: OverlayBackend,
}

impl HypermConfig {
    /// Defaults for `data_dim`-dimensional data in `[0,1]`: 4 levels,
    /// 10 clusters/peer, replication on, min-score policy.
    pub fn new(data_dim: usize) -> Self {
        Self {
            data_dim,
            levels: 4,
            clusters_per_peer: 10,
            normalization: Normalization::PaperAverage,
            data_bounds: (0.0, 1.0),
            replicate: true,
            score_policy: ScorePolicy::Min,
            max_can_dim: 8,
            kmeans_max_iter: 50,
            parallel_query: true,
            seed: 0,
            overlay_backend: OverlayBackend::Can,
        }
    }

    /// Builder-style overrides.
    pub fn with_levels(mut self, levels: usize) -> Self {
        self.levels = levels;
        self
    }

    /// Set the number of clusters per peer (`K_p`).
    pub fn with_clusters_per_peer(mut self, k: usize) -> Self {
        self.clusters_per_peer = k;
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the score aggregation policy.
    pub fn with_score_policy(mut self, policy: ScorePolicy) -> Self {
        self.score_policy = policy;
        self
    }

    /// Set sphere replication on/off.
    pub fn with_replication(mut self, on: bool) -> Self {
        self.replicate = on;
        self
    }

    /// Select the overlay substrate.
    pub fn with_backend(mut self, backend: OverlayBackend) -> Self {
        self.overlay_backend = backend;
        self
    }

    /// Toggle concurrent per-level query execution.
    pub fn with_parallel_query(mut self, on: bool) -> Self {
        self.parallel_query = on;
        self
    }

    /// The ordered subspaces this configuration publishes.
    pub fn subspaces(&self) -> Vec<Subspace> {
        Subspace::first(self.levels)
    }

    /// Maximum levels supported by the data dimensionality
    /// (`log₂ d + 1`: the approximation plus every detail space).
    pub fn max_levels(&self) -> usize {
        self.data_dim.trailing_zeros() as usize + 1
    }

    /// Coordinate bounds of one subspace's coefficients, derived from the
    /// original-space bounds.
    ///
    /// Paper convention: averages stay within `[lo, hi]`; differences
    /// (any detail coefficient) lie within `±(hi−lo)/2`. Orthonormal
    /// convention: every averaging step scales sums by `√2`, so the
    /// approximation range grows by `√2` per step; details after `s`
    /// averaging steps are bounded by `±(hi−lo)/√2 · (√2)^s`.
    pub fn subspace_bounds(&self, s: Subspace) -> (f64, f64) {
        let (lo, hi) = self.data_bounds;
        let ext = hi - lo;
        match self.normalization {
            Normalization::PaperAverage => match s {
                Subspace::Approx => (lo, hi),
                Subspace::Detail(_) => (-ext / 2.0, ext / 2.0),
            },
            Normalization::Orthonormal => {
                // steps to reach the subspace from the original dim.
                let steps = (self.data_dim / s.dim()).trailing_zeros() as i32;
                let scale = 2f64.powf(steps as f64 / 2.0);
                match s {
                    Subspace::Approx => {
                        // Sums of 2^steps coords / √2^steps.
                        if lo >= 0.0 {
                            (lo * scale, hi * scale)
                        } else {
                            (
                                lo.abs().max(hi.abs()) * -scale,
                                lo.abs().max(hi.abs()) * scale,
                            )
                        }
                    }
                    Subspace::Detail(_) => {
                        let half = ext / 2.0 * scale;
                        (-half, half)
                    }
                }
            }
        }
    }

    /// The CAN key dimensionality used for subspace `s` (capped).
    pub fn can_dim(&self, s: Subspace) -> usize {
        s.dim().min(self.max_can_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = HypermConfig::new(512);
        assert_eq!(c.levels, 4);
        assert_eq!(c.subspaces().len(), 4);
        assert_eq!(
            c.subspaces(),
            vec![
                Subspace::Approx,
                Subspace::Detail(0),
                Subspace::Detail(1),
                Subspace::Detail(2)
            ]
        );
        assert_eq!(c.max_levels(), 10);
        assert_eq!(c.score_policy, ScorePolicy::Min);
        assert!(c.replicate);
    }

    #[test]
    fn subspace_bounds_paper_convention() {
        let c = HypermConfig::new(64); // data in [0,1]
        assert_eq!(c.subspace_bounds(Subspace::Approx), (0.0, 1.0));
        assert_eq!(c.subspace_bounds(Subspace::Detail(0)), (-0.5, 0.5));
        assert_eq!(c.subspace_bounds(Subspace::Detail(3)), (-0.5, 0.5));
    }

    #[test]
    fn subspace_bounds_contain_actual_coefficients() {
        use hyperm_wavelet::decompose;
        // Extremal vectors: alternating 0/1 maximises detail magnitude.
        let c = HypermConfig::new(16);
        let v: Vec<f64> = (0..16).map(|i| (i % 2) as f64).collect();
        let dec = decompose(&v, c.normalization).unwrap();
        for s in c.subspaces() {
            let (lo, hi) = c.subspace_bounds(s);
            for &x in dec.subspace(s).unwrap() {
                assert!(
                    x >= lo - 1e-12 && x <= hi + 1e-12,
                    "{s:?}: {x} outside [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn orthonormal_bounds_contain_coefficients() {
        use hyperm_wavelet::decompose;
        let mut c = HypermConfig::new(16);
        c.normalization = Normalization::Orthonormal;
        for pattern in 0..8u32 {
            let v: Vec<f64> = (0..16)
                .map(|i| ((i as u32 ^ pattern) % 3) as f64 / 2.0)
                .collect();
            let dec = decompose(&v, c.normalization).unwrap();
            for s in c.subspaces() {
                let (lo, hi) = c.subspace_bounds(s);
                for &x in dec.subspace(s).unwrap() {
                    assert!(
                        x >= lo - 1e-9 && x <= hi + 1e-9,
                        "{s:?}: {x} outside [{lo},{hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn can_dim_is_capped() {
        let mut c = HypermConfig::new(512);
        c.levels = 8; // subspace dims 1,1,2,4,8,16,32,64
        c.max_can_dim = 8;
        assert_eq!(c.can_dim(Subspace::Detail(6)), 8); // 64 capped to 8
        assert_eq!(c.can_dim(Subspace::Detail(2)), 4);
    }
}
