//! Evaluation harness: precision/recall against the centralized ground
//! truth (Section 6's methodology).
//!
//! Wraps a [`FlatIndex`] over the same corpus the network was built from
//! and runs batches of range / k-nn queries, producing the
//! [`PrecisionRecall`] samples the Figure-10 experiments aggregate.

use crate::network::HypermNetwork;
use crate::query::knn::KnnOptions;
use hyperm_baseline::{precision_recall, FlatIndex, PrecisionRecall};
use hyperm_sim::OpStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground truth + query driver for one built network.
#[derive(Debug)]
pub struct EvalHarness {
    flat: FlatIndex,
}

/// Outcome of one evaluated k-nn query: quality of the raw retrieved set
/// (the paper's precision basis) and of the final top-k.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnEval {
    /// Precision/recall of everything fetched (size ≈ C·k).
    pub retrieved: PrecisionRecall,
    /// Precision/recall of the best-k cut (precision = recall here unless
    /// fewer than k items were fetched).
    pub topk: PrecisionRecall,
    /// Message cost of the query.
    pub stats: OpStats,
}

impl EvalHarness {
    /// Build the ground-truth index from the network's current peer
    /// contents.
    pub fn new(net: &HypermNetwork) -> Self {
        let datasets: Vec<_> = net.peers().map(|p| p.items.clone()).collect();
        Self {
            flat: FlatIndex::from_peers(&datasets),
        }
    }

    /// Exact range answer.
    pub fn range_truth(&self, q: &[f64], eps: f64) -> Vec<(usize, usize)> {
        self.flat.range(q, eps)
    }

    /// Exact k-nn answer (ids only).
    pub fn knn_truth(&self, q: &[f64], k: usize) -> Vec<(usize, usize)> {
        self.flat.knn(q, k).into_iter().map(|(id, _)| id).collect()
    }

    /// Distance of the k-th neighbour — used to pick meaningful range-query
    /// radii.
    pub fn kth_distance(&self, q: &[f64], k: usize) -> f64 {
        self.flat.kth_distance(q, k)
    }

    /// Evaluate one range query (precision is 1.0 by construction whenever
    /// anything is retrieved).
    pub fn eval_range(
        &self,
        net: &HypermNetwork,
        from_peer: usize,
        q: &[f64],
        eps: f64,
        peer_budget: Option<usize>,
    ) -> (PrecisionRecall, OpStats) {
        let res = net.range_query(from_peer, q, eps, peer_budget);
        let truth = self.range_truth(q, eps);
        (precision_recall(&res.items, &truth), res.stats)
    }

    /// Evaluate one k-nn query.
    pub fn eval_knn(
        &self,
        net: &HypermNetwork,
        from_peer: usize,
        q: &[f64],
        k: usize,
        opts: KnnOptions,
    ) -> KnnEval {
        let res = net.knn_query(from_peer, q, k, opts);
        let truth = self.knn_truth(q, k);
        let retrieved_ids: Vec<(usize, usize)> = res.retrieved.iter().map(|&(id, _)| id).collect();
        let topk_ids: Vec<(usize, usize)> = res.topk.iter().map(|&(id, _)| id).collect();
        KnnEval {
            retrieved: precision_recall(&retrieved_ids, &truth),
            topk: precision_recall(&topk_ids, &truth),
            stats: res.stats,
        }
    }

    /// Draw `n` query points from the corpus itself (the paper queries with
    /// held-in items — object retrieval "find images like this one").
    pub fn sample_queries(&self, net: &HypermNetwork, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let p = rng.gen_range(0..net.len());
                let i = rng.gen_range(0..net.peer(p).len());
                net.peer(p).items.row(i).to_vec()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HypermConfig;
    use hyperm_cluster::Dataset;

    fn build() -> HypermNetwork {
        let mut rng = StdRng::seed_from_u64(5);
        let peers: Vec<Dataset> = (0..6)
            .map(|_| {
                let c: f64 = rng.gen::<f64>() * 0.5;
                let mut ds = Dataset::new(8);
                let mut row = [0.0f64; 8];
                for _ in 0..30 {
                    for x in row.iter_mut() {
                        *x = (c + rng.gen::<f64>() * 0.3).clamp(0.0, 1.0);
                    }
                    ds.push_row(&row);
                }
                ds
            })
            .collect();
        let cfg = HypermConfig::new(8)
            .with_levels(3)
            .with_clusters_per_peer(4)
            .with_seed(5);
        HypermNetwork::build(peers, cfg).unwrap().0
    }

    #[test]
    fn range_eval_full_budget_is_perfect() {
        let net = build();
        let harness = EvalHarness::new(&net);
        for q in harness.sample_queries(&net, 10, 1) {
            let (pr, _) = harness.eval_range(&net, 0, &q, 0.2, None);
            assert_eq!(pr.recall, 1.0, "false dismissal at query {q:?}");
            assert_eq!(pr.precision, 1.0);
        }
    }

    #[test]
    fn knn_eval_produces_sane_numbers() {
        let net = build();
        let harness = EvalHarness::new(&net);
        let q = harness.sample_queries(&net, 1, 2).remove(0);
        let eval = harness.eval_knn(&net, 0, &q, 8, KnnOptions::default());
        assert!(eval.topk.recall >= 0.0 && eval.topk.recall <= 1.0);
        assert!(eval.stats.messages > 0);
    }

    #[test]
    fn kth_distance_grows_with_k() {
        let net = build();
        let harness = EvalHarness::new(&net);
        let q = harness.sample_queries(&net, 1, 3).remove(0);
        assert!(harness.kth_distance(&q, 20) >= harness.kth_distance(&q, 5));
    }

    #[test]
    fn sampled_queries_are_deterministic() {
        let net = build();
        let harness = EvalHarness::new(&net);
        assert_eq!(
            harness.sample_queries(&net, 5, 9),
            harness.sample_queries(&net, 5, 9)
        );
    }
}
