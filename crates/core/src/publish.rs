//! Reliable summary publication: fault-aware republish with delivery
//! accounting.
//!
//! The paper's soft-state model assumes publishes "eventually succeed";
//! this module makes the *eventually* explicit. A sphere publish routes
//! through the per-level [`hyperm_sim::FaultInjector`] (ack/retransmit per
//! hop, with an optional exponential [`hyperm_sim::Backoff`] schedule) and
//! can therefore fail: routing can dead-end under loss or a partition, and
//! flood edges can exhaust their retries and leave coverage holes. Instead
//! of silently degrading, every publish round returns a [`PublishReport`]
//! recording which spheres were *delivered* (full replica coverage),
//! *deferred* (route failed or coverage incomplete — re-queued into the
//! next `RepairEngine` refresh round) or *abandoned* (retry budget spent).
//!
//! With no fault injector and no partition installed, every path here is
//! bit-identical to the legacy unconditional republish — asserted by the
//! `tests/telemetry.rs` equivalence suite.

// hyperm-lint: allow-file(panic-index) — per-level vectors are built with len == levels() and indexed by the same 0..levels() range
use crate::network::HypermNetwork;
use hyperm_can::ObjectRef;
use hyperm_sim::{NodeId, OpStats};
use hyperm_telemetry::{counters, names, OpKind, SpanId};

/// A published cluster sphere, by position: `peer`'s cluster `cluster` at
/// wavelet level `level`. The unit of delivery accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SphereRef {
    /// Publishing peer.
    pub peer: usize,
    /// Wavelet level (overlay index).
    pub level: usize,
    /// Cluster index within the peer's level summary.
    pub cluster: usize,
}

/// Delivery accounting for one reliable publish round.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PublishReport {
    /// Spheres fully delivered (owner reached, every overlapping zone got
    /// its replica).
    pub delivered: u64,
    /// Spheres whose publish failed or landed incompletely — re-queued for
    /// the next refresh round.
    pub deferred: Vec<SphereRef>,
    /// Spheres given up on after the per-sphere retry budget was spent
    /// (populated by the repair engine's deferred-queue bookkeeping).
    pub abandoned: Vec<SphereRef>,
    /// Total message cost of the round, including failed attempts.
    pub stats: OpStats,
}

impl PublishReport {
    /// Fold another round's accounting into this one.
    pub fn merge(&mut self, other: PublishReport) {
        self.delivered += other.delivered;
        self.deferred.extend(other.deferred);
        self.abandoned.extend(other.abandoned);
        self.stats += other.stats;
    }
}

impl HypermNetwork {
    /// Publish (or re-publish) one cluster sphere through the fault-aware
    /// path: invalidate old replicas, then `try_insert_sphere` with the
    /// build-time clamp-slack widening. Returns whether the sphere reached
    /// full replica coverage, plus the message cost (failed attempts
    /// included).
    pub fn publish_sphere(&mut self, s: SphereRef) -> (bool, OpStats) {
        assert!(self.is_alive(s.peer), "dead peers cannot publish");
        let (key, key_radius, items) = {
            let sp = &self.peer(s.peer).summaries[s.level][s.cluster];
            // Clamp-slack widening, as in the build-time publication loop.
            let (key, slack) = self.keymap(s.level).to_key_slack(&sp.centroid);
            (
                key,
                self.keymap(s.level).to_key_radius(sp.radius) + slack,
                sp.items as u32,
            )
        };
        let replicate = self.config.replicate;
        let mut stats = OpStats::zero();
        let (_, invalidation) = self
            .overlay_mut(s.level)
            .remove_objects(s.peer, s.cluster as u64);
        stats += invalidation;
        let delivered = match self.overlay_mut(s.level).try_insert_sphere(
            NodeId(s.peer),
            key,
            key_radius,
            ObjectRef {
                peer: s.peer,
                tag: s.cluster as u64,
                items,
            },
            replicate,
        ) {
            Ok(out) => {
                stats += out.stats;
                out.complete()
            }
            Err(burnt) => {
                stats += burnt;
                false
            }
        };
        (delivered, stats)
    }

    /// Fault-aware soft-state republish of every cluster sphere `peer` has
    /// published, with per-sphere delivery accounting. This is the
    /// [`HypermNetwork::refresh_peer_summaries`] loop routed through the
    /// fault injector: spheres that fail to route or land incompletely are
    /// reported as deferred instead of silently assumed placed.
    pub fn refresh_peer_summaries_report(&mut self, peer: usize) -> PublishReport {
        assert!(self.is_alive(peer), "dead peers cannot refresh");
        let tel = self.recorder().clone();
        let span = if tel.is_enabled() {
            tel.span(SpanId::NONE, names::REFRESH, vec![("peer", peer.into())])
        } else {
            SpanId::NONE
        };
        let mut report = PublishReport::default();
        let replicate = self.config.replicate;
        for l in 0..self.levels() {
            self.overlay(l).set_scope(span);
            let mut lstats = OpStats::zero();
            let clusters = self.peer(peer).summaries[l].len();
            for c in 0..clusters {
                let (key, key_radius, items) = {
                    let sp = &self.peer(peer).summaries[l][c];
                    // Clamp-slack widening, as in the build-time
                    // publication loop.
                    let (key, slack) = self.keymap(l).to_key_slack(&sp.centroid);
                    (
                        key,
                        self.keymap(l).to_key_radius(sp.radius) + slack,
                        sp.items as u32,
                    )
                };
                let (_, invalidation) = self.overlay_mut(l).remove_objects(peer, c as u64);
                lstats += invalidation;
                match self.overlay_mut(l).try_insert_sphere(
                    NodeId(peer),
                    key,
                    key_radius,
                    ObjectRef {
                        peer,
                        tag: c as u64,
                        items,
                    },
                    replicate,
                ) {
                    Ok(out) if out.complete() => {
                        lstats += out.stats;
                        report.delivered += 1;
                    }
                    Ok(out) => {
                        lstats += out.stats;
                        report.deferred.push(SphereRef {
                            peer,
                            level: l,
                            cluster: c,
                        });
                    }
                    Err(burnt) => {
                        lstats += burnt;
                        report.deferred.push(SphereRef {
                            peer,
                            level: l,
                            cluster: c,
                        });
                    }
                }
            }
            self.overlay(l).set_scope(SpanId::NONE);
            tel.record_op(OpKind::Refresh, Some(l), lstats);
            report.stats += lstats;
        }
        // One refresh advances the popular-summary cache's TTL clock:
        // entries older than the configured number of rounds are swept
        // (epoch bumps above already invalidated everything this refresh
        // republished — the sweep reclaims the memory and counts it).
        if let Some(cache) = self.summary_cache() {
            let evicted = cache.advance_round();
            if evicted > 0 {
                if tel.is_enabled() {
                    tel.event(span, names::CACHE_EVICT, vec![("evicted", evicted.into())]);
                }
                if let Some(m) = tel.metrics() {
                    m.add(counters::CACHE_EVICTIONS, evicted);
                }
            }
        }
        if tel.is_enabled() {
            tel.end(
                span,
                names::REFRESH,
                vec![
                    ("hops", report.stats.hops.into()),
                    ("messages", report.stats.messages.into()),
                    ("bytes", report.stats.bytes.into()),
                ],
            );
            tel.record_op(OpKind::Refresh, None, report.stats);
        }
        report
    }
}
