//! Peer failure (churn) modelling.
//!
//! The paper's scenario is a short-lived network with "limited mobility" —
//! but devices still leave early: someone walks out of the conference room
//! with their phone. This module models the *fail-stop* case: a failed
//! peer stops answering direct fetches, while its previously published
//! summaries linger in the overlay (they were replicated onto other
//! devices' zones, so lookups still route — the candidate just never
//! responds).
//!
//! Two recall notions follow, both exercised by the `churn_failures`
//! experiment binary:
//! * against **all** data: recall degrades roughly with the failed fraction
//!   (those items are physically gone — no protocol can recover them);
//! * against **alive** data: Hyper-M's no-false-dismissal property is
//!   unaffected — everything still reachable is still found.
//!
//! Failed peers keep their overlay *routing* duties in this model: CAN
//! zone takeover / BATON tree repair are orthogonal maintenance protocols
//! from the substrate papers, out of scope here exactly as in the paper.

use crate::network::HypermNetwork;

impl HypermNetwork {
    /// Mark a peer as failed: it stops answering direct item fetches.
    pub fn fail_peer(&mut self, peer: usize) {
        assert!(peer < self.len(), "no such peer {peer}");
        self.failed_mut()[peer] = true;
    }

    /// Bring a failed peer back (its local data was never lost, merely
    /// unreachable).
    pub fn revive_peer(&mut self, peer: usize) {
        assert!(peer < self.len(), "no such peer {peer}");
        self.failed_mut()[peer] = false;
    }

    /// Whether a peer currently answers fetches.
    pub fn is_alive(&self, peer: usize) -> bool {
        !self.failed()[peer]
    }

    /// Number of currently alive peers.
    pub fn alive_count(&self) -> usize {
        self.failed().iter().filter(|&&f| !f).count()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::HypermConfig;
    use crate::network::HypermNetwork;
    use crate::query::knn::KnnOptions;
    use hyperm_cluster::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(seed: u64) -> HypermNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let peers: Vec<Dataset> = (0..8)
            .map(|_| {
                let c: f64 = rng.gen::<f64>() * 0.5;
                let mut ds = Dataset::new(8);
                let mut row = [0.0f64; 8];
                for _ in 0..25 {
                    for x in row.iter_mut() {
                        *x = (c + rng.gen::<f64>() * 0.3).clamp(0.0, 1.0);
                    }
                    ds.push_row(&row);
                }
                ds
            })
            .collect();
        let cfg = HypermConfig::new(8)
            .with_levels(3)
            .with_clusters_per_peer(3)
            .with_seed(seed);
        HypermNetwork::build(peers, cfg).unwrap().0
    }

    #[test]
    fn failed_peers_stop_answering() {
        let mut net = build(1);
        let q = net.peer(3).items.row(0).to_vec();
        let before = net.range_query(0, &q, 0.05, None);
        assert!(before.items.iter().any(|&(p, _)| p == 3));
        net.fail_peer(3);
        assert!(!net.is_alive(3));
        assert_eq!(net.alive_count(), 7);
        let after = net.range_query(0, &q, 0.05, None);
        assert!(
            after.items.iter().all(|&(p, _)| p != 3),
            "failed peer answered"
        );
    }

    #[test]
    fn revival_restores_answers() {
        let mut net = build(2);
        let q = net.peer(5).items.row(2).to_vec();
        net.fail_peer(5);
        assert!(net.range_query(0, &q, 0.01, None).items.is_empty());
        net.revive_peer(5);
        assert!(net.range_query(0, &q, 0.01, None).items.contains(&(5, 2)));
    }

    #[test]
    fn alive_data_still_fully_found() {
        let mut net = build(3);
        net.fail_peer(0);
        net.fail_peer(4);
        // Ground truth over alive peers only.
        let q = net.peer(2).items.row(0).to_vec();
        let eps = 0.3;
        let mut alive_truth = Vec::new();
        for p in 0..net.len() {
            if !net.is_alive(p) {
                continue;
            }
            for i in net.peer(p).local_range(&q, eps) {
                alive_truth.push((p, i));
            }
        }
        let res = net.range_query(1, &q, eps, None);
        let got: std::collections::HashSet<_> = res.items.iter().copied().collect();
        for t in &alive_truth {
            assert!(got.contains(t), "alive item {t:?} missed under churn");
        }
        assert_eq!(got.len(), alive_truth.len());
    }

    #[test]
    fn knn_and_point_skip_failed_peers() {
        let mut net = build(4);
        let q = net.peer(6).items.row(0).to_vec();
        net.fail_peer(6);
        let res = net.knn_query(0, &q, 5, KnnOptions::default());
        assert!(res.topk.iter().all(|&((p, _), _)| p != 6));
        let pt = net.point_query(0, &q);
        assert!(pt.matches.is_empty());
    }
}
