//! Peer failure (churn) modelling.
//!
//! The paper's scenario is a short-lived network with "limited mobility" —
//! but devices still leave early: someone walks out of the conference room
//! with their phone. This module models the *fail-stop* case: a failed
//! peer stops answering direct fetches, while its previously published
//! summaries linger in the overlay (they were replicated onto other
//! devices' zones, so lookups still route — the candidate just never
//! responds).
//!
//! Two recall notions follow, both exercised by the `churn_failures`
//! experiment binary:
//! * against **all** data: recall degrades roughly with the failed fraction
//!   (those items are physically gone — no protocol can recover them);
//! * against **alive** data: Hyper-M's no-false-dismissal property is
//!   unaffected — everything still reachable is still found.
//!
//! Two churn models coexist:
//!
//! * **Flag-only** ([`HypermNetwork::fail_peer`] / `revive_peer`): the
//!   failed peer stops answering fetches but keeps its overlay routing
//!   duties — the paper's own model, where substrate maintenance is out of
//!   scope. Reversible.
//! * **Overlay-level** ([`HypermNetwork::crash_peer`] /
//!   [`HypermNetwork::depart_peer`]): the peer's CAN nodes actually die in
//!   every per-level overlay. With repair enabled the smallest-volume
//!   neighbour takes each zone over (see `hyperm_can::repair`) and
//!   [`HypermNetwork::refresh_peer_summaries`] — the soft-state republish
//!   loop — restores the replicas that lived on the dead zones, so recall
//!   over alive peers' data returns to 1. With repair disabled the zones
//!   become routing holes and queries degrade, which is the baseline the
//!   `churn_failures` experiment quantifies.

// hyperm-lint: allow-file(panic-index) — node indices come from the dense live-node table this module maintains
use crate::network::HypermNetwork;
use hyperm_sim::{FaultConfig, FaultReport, NodeId, OpStats};
use hyperm_telemetry::{names, OpKind, SpanId};

/// Cost record of an overlay-level membership change, summed over the
/// per-level overlays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnOutcome {
    /// Control + handoff + detection message cost across all levels.
    pub stats: OpStats,
    /// Sim-time ticks until every level's zones were owned again (levels
    /// repair in parallel, so this is the per-level maximum).
    pub takeover_rounds: u64,
    /// Adoption events across all levels (zones that changed hands).
    pub adoptions: usize,
}

impl HypermNetwork {
    /// Mark a peer as failed: it stops answering direct item fetches.
    pub fn fail_peer(&mut self, peer: usize) {
        assert!(peer < self.len(), "no such peer {peer}");
        self.failed_mut()[peer] = true;
    }

    /// Crash-stop a peer at the overlay level (CAN substrate): its node in
    /// every per-level overlay dies, its local replicas are lost, and —
    /// with `repair` — the smallest-volume alive neighbour takes each zone
    /// over after the detection timeout. Without `repair`, the zones
    /// become routing holes (the no-repair baseline). The peer also stops
    /// answering fetches, like [`HypermNetwork::fail_peer`].
    pub fn crash_peer(&mut self, peer: usize, repair: bool) -> ChurnOutcome {
        assert!(peer < self.len(), "no such peer {peer}");
        assert!(self.is_alive(peer), "peer {peer} already failed");
        self.failed_mut()[peer] = true;
        let tel = self.recorder().clone();
        let span = if tel.is_enabled() {
            tel.span(
                SpanId::NONE,
                names::REPAIR_STEP,
                vec![
                    ("kind", "crash".into()),
                    ("peer", peer.into()),
                    ("repair", repair.into()),
                ],
            )
        } else {
            SpanId::NONE
        };
        let mut out = ChurnOutcome {
            stats: OpStats::zero(),
            takeover_rounds: 0,
            adoptions: 0,
        };
        for l in 0..self.levels() {
            self.overlay(l).set_scope(span);
            let lstats = if repair {
                let r = self.overlay_mut(l).fail_node(NodeId(peer));
                out.takeover_rounds = out.takeover_rounds.max(r.takeover_rounds);
                out.adoptions += r.adopters.len();
                r.stats
            } else {
                self.overlay_mut(l).fail_no_takeover(NodeId(peer))
            };
            self.overlay(l).set_scope(SpanId::NONE);
            tel.record_op(OpKind::Repair, Some(l), lstats);
            out.stats += lstats;
        }
        if tel.is_enabled() {
            tel.end(
                span,
                names::REPAIR_STEP,
                vec![
                    ("messages", out.stats.messages.into()),
                    ("bytes", out.stats.bytes.into()),
                    ("rounds", out.takeover_rounds.into()),
                    ("adoptions", out.adoptions.into()),
                ],
            );
            tel.record_op(OpKind::Repair, None, out.stats);
        }
        out
    }

    /// Graceful departure: the peer unpublishes its summaries, hands every
    /// zone (with the replicas stored on it) to the smallest-volume
    /// neighbour, and leaves. No other peer's data is lost.
    pub fn depart_peer(&mut self, peer: usize) -> ChurnOutcome {
        assert!(peer < self.len(), "no such peer {peer}");
        assert!(self.is_alive(peer), "peer {peer} already gone");
        let tel = self.recorder().clone();
        let span = if tel.is_enabled() {
            tel.span(
                SpanId::NONE,
                names::REPAIR_STEP,
                vec![("kind", "depart".into()), ("peer", peer.into())],
            )
        } else {
            SpanId::NONE
        };
        let mut out = ChurnOutcome {
            stats: OpStats::zero(),
            takeover_rounds: 0,
            adoptions: 0,
        };
        // The departing peer's own data leaves with it: invalidate its
        // published spheres before the zone handoff.
        for l in 0..self.levels() {
            let clusters = self.peer(peer).summaries[l].len();
            for c in 0..clusters {
                let (_, invalidation) = self.overlay_mut(l).remove_objects(peer, c as u64);
                out.stats += invalidation;
            }
        }
        self.failed_mut()[peer] = true;
        for l in 0..self.levels() {
            self.overlay(l).set_scope(span);
            let r = self.overlay_mut(l).leave(NodeId(peer));
            self.overlay(l).set_scope(SpanId::NONE);
            tel.record_op(OpKind::Repair, Some(l), r.stats);
            out.stats += r.stats;
            out.takeover_rounds = out.takeover_rounds.max(r.takeover_rounds);
            out.adoptions += r.adopters.len();
        }
        if tel.is_enabled() {
            tel.end(
                span,
                names::REPAIR_STEP,
                vec![
                    ("messages", out.stats.messages.into()),
                    ("bytes", out.stats.bytes.into()),
                    ("rounds", out.takeover_rounds.into()),
                    ("adoptions", out.adoptions.into()),
                ],
            );
            tel.record_op(OpKind::Repair, None, out.stats);
        }
        out
    }

    /// Run the background fragment-merge loop on every level until
    /// quiescence; returns the total repair message cost.
    pub fn repair_overlays(&mut self, max_passes: usize) -> OpStats {
        let tel = self.recorder().clone();
        let span = if tel.is_enabled() {
            tel.span(
                SpanId::NONE,
                names::REPAIR_STEP,
                vec![("kind", "merge".into())],
            )
        } else {
            SpanId::NONE
        };
        let mut stats = OpStats::zero();
        for l in 0..self.levels() {
            self.overlay(l).set_scope(span);
            let lstats = self.overlay_mut(l).repair_to_quiescence(max_passes);
            self.overlay(l).set_scope(SpanId::NONE);
            tel.record_op(OpKind::Repair, Some(l), lstats);
            stats += lstats;
        }
        if tel.is_enabled() {
            tel.end(
                span,
                names::REPAIR_STEP,
                vec![
                    ("messages", stats.messages.into()),
                    ("bytes", stats.bytes.into()),
                ],
            );
            tel.record_op(OpKind::Repair, None, stats);
        }
        stats
    }

    /// Zone fragments still awaiting background merge, over all levels.
    pub fn fragment_count(&self) -> usize {
        (0..self.levels())
            .map(|l| self.overlay(l).fragment_count())
            .sum()
    }

    /// Soft-state republish: re-insert every cluster sphere `peer` has
    /// published, invalidating old replicas first. Replicas that were lost
    /// on crashed zones are thereby restored — the TTL refresh loop of the
    /// repair engine calls this periodically for every alive peer.
    ///
    /// Refreshes route through the fault injector like any other data
    /// traffic (see the `publish` module); use
    /// [`HypermNetwork::refresh_peer_summaries_report`] to observe which
    /// spheres were deferred under loss. With faults off the two paths are
    /// bit-identical.
    pub fn refresh_peer_summaries(&mut self, peer: usize) -> OpStats {
        self.refresh_peer_summaries_report(peer).stats
    }

    /// Install (or clear) message-level fault injection on every level's
    /// query traffic. Per-level injectors get decorrelated seeds.
    pub fn set_fault_plan(&mut self, cfg: Option<FaultConfig>) {
        for l in 0..self.levels() {
            self.overlay_mut(l)
                .set_faults(cfg.map(|c| c.with_seed(c.seed.wrapping_add(l as u64))));
        }
        // The popular-summary cache sits out fault injection: a hit skips
        // the injector's per-hop RNG draws, which would desynchronise the
        // fault timeline of every later query. (The `overlay_mut` calls
        // above already invalidated its entries.)
        if let Some(cache) = self.summary_cache() {
            cache.set_active(cfg.is_none());
        }
    }

    /// Fault counters summed over all levels (`None` when injection is
    /// off everywhere).
    pub fn fault_report(&self) -> Option<FaultReport> {
        let mut merged: Option<FaultReport> = None;
        for l in 0..self.levels() {
            if let Some(r) = self.overlay(l).fault_report() {
                let m = merged.get_or_insert_with(FaultReport::default);
                m.attempts += r.attempts;
                m.drops += r.drops;
                m.delays += r.delays;
                m.dead_hops += r.dead_hops;
                m.exhausted += r.exhausted;
            }
        }
        merged
    }

    /// Bring a failed peer back (its local data was never lost, merely
    /// unreachable).
    pub fn revive_peer(&mut self, peer: usize) {
        assert!(peer < self.len(), "no such peer {peer}");
        self.failed_mut()[peer] = false;
    }

    /// Whether a peer currently answers fetches.
    pub fn is_alive(&self, peer: usize) -> bool {
        !self.failed()[peer]
    }

    /// Number of currently alive peers.
    pub fn alive_count(&self) -> usize {
        self.failed().iter().filter(|&&f| !f).count()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::HypermConfig;
    use crate::network::HypermNetwork;
    use crate::query::knn::KnnOptions;
    use hyperm_cluster::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(seed: u64) -> HypermNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let peers: Vec<Dataset> = (0..8)
            .map(|_| {
                let c: f64 = rng.gen::<f64>() * 0.5;
                let mut ds = Dataset::new(8);
                let mut row = [0.0f64; 8];
                for _ in 0..25 {
                    for x in row.iter_mut() {
                        *x = (c + rng.gen::<f64>() * 0.3).clamp(0.0, 1.0);
                    }
                    ds.push_row(&row);
                }
                ds
            })
            .collect();
        let cfg = HypermConfig::new(8)
            .with_levels(3)
            .with_clusters_per_peer(3)
            .with_seed(seed);
        HypermNetwork::build(peers, cfg).unwrap().0
    }

    #[test]
    fn failed_peers_stop_answering() {
        let mut net = build(1);
        let q = net.peer(3).items.row(0).to_vec();
        let before = net.range_query(0, &q, 0.05, None);
        assert!(before.items.iter().any(|&(p, _)| p == 3));
        net.fail_peer(3);
        assert!(!net.is_alive(3));
        assert_eq!(net.alive_count(), 7);
        let after = net.range_query(0, &q, 0.05, None);
        assert!(
            after.items.iter().all(|&(p, _)| p != 3),
            "failed peer answered"
        );
    }

    #[test]
    fn revival_restores_answers() {
        let mut net = build(2);
        let q = net.peer(5).items.row(2).to_vec();
        net.fail_peer(5);
        assert!(net.range_query(0, &q, 0.01, None).items.is_empty());
        net.revive_peer(5);
        assert!(net.range_query(0, &q, 0.01, None).items.contains(&(5, 2)));
    }

    #[test]
    fn alive_data_still_fully_found() {
        let mut net = build(3);
        net.fail_peer(0);
        net.fail_peer(4);
        // Ground truth over alive peers only.
        let q = net.peer(2).items.row(0).to_vec();
        let eps = 0.3;
        let mut alive_truth = Vec::new();
        for p in 0..net.len() {
            if !net.is_alive(p) {
                continue;
            }
            for i in net.peer(p).local_range(&q, eps) {
                alive_truth.push((p, i));
            }
        }
        let res = net.range_query(1, &q, eps, None);
        let got: std::collections::HashSet<_> = res.items.iter().copied().collect();
        for t in &alive_truth {
            assert!(got.contains(t), "alive item {t:?} missed under churn");
        }
        assert_eq!(got.len(), alive_truth.len());
    }

    #[test]
    fn knn_and_point_skip_failed_peers() {
        let mut net = build(4);
        let q = net.peer(6).items.row(0).to_vec();
        net.fail_peer(6);
        let res = net.knn_query(0, &q, 5, KnnOptions::default());
        assert!(res.topk.iter().all(|&((p, _), _)| p != 6));
        let pt = net.point_query(0, &q);
        assert!(pt.matches.is_empty());
    }
}
