//! Full-stack property tests: the Hyper-M guarantees under randomly drawn
//! configurations (network size, levels, cluster counts, backends, seeds).

use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork, KnnOptions, OverlayBackend};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_peers(n_peers: usize, items: usize, dim: usize, seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_peers)
        .map(|_| {
            let centre: f64 = rng.gen::<f64>() * 0.6;
            let mut ds = Dataset::new(dim);
            let mut row = vec![0.0f64; dim];
            for _ in 0..items {
                for x in row.iter_mut() {
                    *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No false dismissals for range queries under any configuration.
    #[test]
    fn range_no_false_dismissals(
        n_peers in 2usize..12,
        items in 5usize..30,
        levels in 1usize..5,
        clusters in 1usize..8,
        backend_sel in 0u8..3,
        seed in any::<u64>(),
        eps in 0.05..0.6f64,
    ) {
        let dim = 16usize;
        let peers = random_peers(n_peers, items, dim, seed);
        let backend = match backend_sel {
            0 => OverlayBackend::Can,
            1 => OverlayBackend::Baton,
            _ => OverlayBackend::Vbi,
        };
        let cfg = HypermConfig::new(dim)
            .with_levels(levels)
            .with_clusters_per_peer(clusters)
            .with_seed(seed)
            .with_backend(backend);
        let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();

        // Query at a random held-in item.
        let qp = (seed as usize) % n_peers;
        let qi = (seed as usize / 7) % items;
        let q = peers[qp].row(qi).to_vec();

        // Linear-scan truth.
        let mut truth = Vec::new();
        for (p, ds) in peers.iter().enumerate() {
            for (i, row) in ds.rows().enumerate() {
                let d: f64 = row.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
                if d <= eps + 1e-12 {
                    truth.push((p, i));
                }
            }
        }
        let res = net.range_query(0, &q, eps, None);
        let got: std::collections::HashSet<_> = res.items.iter().copied().collect();
        for t in &truth {
            prop_assert!(got.contains(t), "missed {t:?} (backend {backend:?})");
        }
        prop_assert_eq!(got.len(), truth.len(), "extra items retrieved");
    }

    /// k-nn always returns k sorted items containing the query itself when
    /// the query is a held-in item.
    #[test]
    fn knn_sanity(
        n_peers in 2usize..10,
        items in 8usize..25,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let peers = random_peers(n_peers, items, 16, seed);
        let cfg = HypermConfig::new(16).with_levels(3).with_clusters_per_peer(4).with_seed(seed);
        let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();
        let qp = (seed as usize) % n_peers;
        let q = peers[qp].row(0).to_vec();
        let res = net.knn_query(0, &q, k, KnnOptions::default());
        prop_assert_eq!(res.topk.len(), k.min(n_peers * items));
        for w in res.topk.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "not sorted");
        }
        prop_assert_eq!(res.topk[0].1, 0.0, "the query item itself must rank first");
    }

    /// The build report is internally consistent.
    #[test]
    fn build_report_consistency(
        n_peers in 1usize..10,
        items in 3usize..20,
        levels in 1usize..5,
        seed in any::<u64>(),
    ) {
        let peers = random_peers(n_peers, items, 16, seed);
        let cfg = HypermConfig::new(16).with_levels(levels).with_clusters_per_peer(3).with_seed(seed);
        let (net, report) = HypermNetwork::build(peers, cfg).unwrap();
        prop_assert_eq!(report.items_total, (n_peers * items) as u64);
        prop_assert_eq!(report.per_level.len(), levels);
        let sum: u64 = report.per_level.iter().map(|s| s.hops).sum();
        prop_assert_eq!(sum, report.insertion.hops);
        prop_assert!(report.makespan_hops <= report.insertion.hops);
        prop_assert!(report.makespan_rounds <= report.makespan_hops.max(1));
        prop_assert!(report.replicas >= report.clusters_published);
        for l in 0..net.levels() {
            net.overlay(l).check_invariants();
        }
    }
}
