//! Overlay-independence: the Hyper-M guarantees hold identically on the
//! CAN and BATON substrates (the paper's Section-5 claim).

use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork, KnnOptions, OverlayBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn peers(seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..10)
        .map(|_| {
            let centre: f64 = rng.gen::<f64>() * 0.5;
            let mut ds = Dataset::new(16);
            let mut row = [0.0f64; 16];
            for _ in 0..40 {
                for x in row.iter_mut() {
                    *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect()
}

fn build(backend: OverlayBackend, seed: u64) -> HypermNetwork {
    let cfg = HypermConfig::new(16)
        .with_levels(4)
        .with_clusters_per_peer(5)
        .with_seed(seed)
        .with_backend(backend);
    HypermNetwork::build(peers(seed), cfg).unwrap().0
}

#[test]
fn no_false_dismissals_on_both_backends() {
    for backend in [
        OverlayBackend::Can,
        OverlayBackend::Baton,
        OverlayBackend::Vbi,
    ] {
        let net = build(backend, 1);
        let data = peers(1);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..15 {
            let p = rng.gen_range(0..data.len());
            let i = rng.gen_range(0..data[p].len());
            let q = data[p].row(i).to_vec();
            let eps = 0.25;
            // Exact truth by linear scan.
            let mut truth = Vec::new();
            for (pp, ds) in data.iter().enumerate() {
                for (ii, row) in ds.rows().enumerate() {
                    let d: f64 = row
                        .iter()
                        .zip(&q)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt();
                    if d <= eps + 1e-12 {
                        truth.push((pp, ii));
                    }
                }
            }
            let res = net.range_query(0, &q, eps, None);
            let got: std::collections::HashSet<_> = res.items.iter().copied().collect();
            for t in &truth {
                assert!(got.contains(t), "{backend:?}: missed {t:?}");
            }
            assert_eq!(got.len(), truth.len(), "{backend:?}: extra items retrieved");
        }
    }
}

#[test]
fn identical_answers_across_backends() {
    // Retrieval answers (not costs) must match exactly: the substrate only
    // changes routing, never the candidate geometry.
    let can = build(OverlayBackend::Can, 2);
    let baton = build(OverlayBackend::Baton, 2);
    let vbi = build(OverlayBackend::Vbi, 2);
    let data = peers(2);
    for t in 0..10 {
        let q = data[t % data.len()].row(t).to_vec();
        let mut a = can.range_query(0, &q, 0.2, None).items;
        let mut b = baton.range_query(0, &q, 0.2, None).items;
        let mut c = vbi.range_query(0, &q, 0.2, None).items;
        a.sort_unstable();
        b.sort_unstable();
        c.sort_unstable();
        assert_eq!(a, b, "range answers diverge (baton) at query {t}");
        assert_eq!(a, c, "range answers diverge (vbi) at query {t}");
        let pa = can.point_query(0, &q).matches;
        let pb = baton.point_query(0, &q).matches;
        let pc = vbi.point_query(0, &q).matches;
        assert_eq!(pa, pb, "point answers diverge (baton) at query {t}");
        assert_eq!(pa, pc, "point answers diverge (vbi) at query {t}");
    }
}

#[test]
fn knn_works_on_baton() {
    let net = build(OverlayBackend::Baton, 3);
    let data = peers(3);
    let q = data[4].row(0).to_vec();
    let res = net.knn_query(0, &q, 8, KnnOptions::default());
    assert_eq!(res.topk.len(), 8);
    assert_eq!(res.topk[0].0, (4, 0), "self item must be the nearest");
}

#[test]
fn baton_build_reports_costs() {
    let cfg = HypermConfig::new(16)
        .with_levels(3)
        .with_clusters_per_peer(4)
        .with_backend(OverlayBackend::Baton);
    let (net, report) = HypermNetwork::build(peers(4), cfg).unwrap();
    assert!(report.insertion.hops > 0);
    assert!(report.bootstrap.hops > 0);
    for l in 0..net.levels() {
        net.overlay(l).check_invariants();
    }
}
