//! Property-based tests for the retransmission backoff schedule.

use hyperm_sim::Backoff;
use proptest::prelude::*;

fn arb_backoff() -> impl Strategy<Value = Backoff> {
    (0u64..64, 0u64..8, 0u64..256, 0u64..32, any::<u64>()).prop_map(
        |(base, factor, cap, jitter, seed)| Backoff {
            base,
            factor,
            cap,
            jitter,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The schedule is a pure function of the config: two identical
    /// configs replay identically.
    #[test]
    fn schedule_is_deterministic(b in arb_backoff(), retries in 0u32..12) {
        prop_assert_eq!(b.schedule(retries), b.schedule(retries));
    }

    /// Gaps never shrink between consecutive attempts.
    #[test]
    fn gaps_are_monotone(b in arb_backoff(), retries in 1u32..12) {
        let sched = b.schedule(retries);
        prop_assert!(sched.windows(2).all(|w| w[0] <= w[1]), "{sched:?}");
    }

    /// Every gap burns at least one tick and never exceeds the cap.
    #[test]
    fn gaps_are_capped_and_positive(b in arb_backoff(), attempt in 0u32..16) {
        let g = b.gap(attempt);
        prop_assert!(g >= 1);
        prop_assert!(g <= b.cap.max(1));
    }

    /// The jitter seed only perturbs within the configured width: two
    /// seeds of the same profile stay within `jitter` of each other
    /// before capping, so the zero-jitter schedule is a lower bound.
    #[test]
    fn jitter_never_undershoots_the_raw_schedule(b in arb_backoff(), attempt in 0u32..12) {
        let plain = Backoff { jitter: 0, seed: 0, ..b };
        prop_assert!(b.gap(attempt) >= plain.gap(attempt));
    }
}
