//! Message-level fault injection.
//!
//! The paper's MANET setting loses messages all the time — radios fade,
//! devices sleep, owners walk away mid-query — yet the baseline simulator
//! assumed every hop succeeds. [`FaultInjector`] perturbs individual hop
//! deliveries: a message can be **dropped** (retransmitted up to a bounded
//! retry budget), **delayed** (extra ticks on the critical path), or hit a
//! **dead recipient** (no retry helps; the sender must reroute around it).
//!
//! Each logical hop is resolved through its own tiny [`EventQueue`]
//! timeline: the first transmission fires at `t = 0`, every retransmission
//! is scheduled one retry gap after the drop it answers — a fixed
//! `retry_timeout` spacing by default, or an exponential [`Backoff`]
//! schedule with deterministic seeded jitter when one is installed — and
//! the returned tick count is the sim-time the hop occupied, so delays and
//! retries lengthen an operation's *rounds* (critical path) exactly like
//! any other queued message in the scheduler model.
//!
//! The injector is deterministic: a seeded [`StdRng`] drives all rolls, so
//! a single-threaded run with the same seed replays the same fault
//! sequence. (Under parallel per-level querying the interleaving of hops —
//! and hence the fault assignment — depends on thread timing; experiments
//! that need bitwise reproducibility run with parallel querying off.)

use crate::event::{EventQueue, SimTime};
use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exponential retransmission backoff with deterministic seeded jitter.
///
/// Replaces the fixed `retry_timeout` spacing when installed via
/// [`FaultConfig::with_backoff`]. The gap before retransmission `a + 1`
/// (i.e. after attempt `a` dropped) is
///
/// ```text
/// gap(a) = min(cap, base · factorᵃ + jitter(a))
/// ```
///
/// where `jitter(a)` is a hash of `(seed, a)` reduced into
/// `0..=jitter` — no RNG state, so the schedule is a pure function of the
/// config and replays identically on every run. Gaps are made monotone
/// non-decreasing in `a` (a running maximum) and never exceed `cap` or
/// fall below 1 tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Gap before the first retransmission (ticks, clamped to ≥ 1).
    pub base: u64,
    /// Multiplier applied per further retry (clamped to ≥ 1).
    pub factor: u64,
    /// Ceiling on any single gap (ticks, clamped to ≥ 1).
    pub cap: u64,
    /// Maximum extra ticks of deterministic jitter per gap (0 = none).
    pub jitter: u64,
    /// Seed for the jitter hash.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Self {
            base: 1,
            factor: 2,
            cap: 16,
            jitter: 0,
            seed: 0,
        }
    }
}

/// SplitMix64 finaliser: a cheap, well-mixed stateless hash.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Backoff {
    /// Plain exponential schedule (`base · 2ᵃ`, capped, no jitter).
    pub fn exponential(base: u64, cap: u64) -> Self {
        Self {
            base,
            cap,
            ..Self::default()
        }
    }

    /// Builder-style jitter profile: up to `jitter` extra ticks per gap,
    /// drawn deterministically from `seed`.
    pub fn with_jitter(mut self, jitter: u64, seed: u64) -> Self {
        self.jitter = jitter;
        self.seed = seed;
        self
    }

    /// The gap (ticks) between dropped attempt `attempt` (0-based) and its
    /// retransmission. Deterministic, monotone non-decreasing in
    /// `attempt`, in `1..=cap.max(1)`.
    pub fn gap(&self, attempt: u32) -> u64 {
        let cap = self.cap.max(1);
        let base = self.base.max(1);
        let factor = self.factor.max(1);
        let mut widest = 0u64;
        // Running maximum keeps the schedule monotone even when jitter
        // draws shrink between consecutive attempts.
        for a in 0..=attempt {
            let raw = base.saturating_mul(factor.saturating_pow(a));
            let j = if self.jitter == 0 {
                0
            } else {
                splitmix64(self.seed ^ u64::from(a).wrapping_mul(0xA24B_AED4_963E_E407))
                    % (self.jitter + 1)
            };
            widest = widest.max(raw.saturating_add(j).min(cap));
        }
        widest
    }

    /// The first `retries` gaps, in order — the full retransmission
    /// schedule for a hop with that retry budget.
    pub fn schedule(&self, retries: u32) -> Vec<u64> {
        (0..retries).map(|a| self.gap(a)).collect()
    }
}

/// Per-hop fault probabilities and the retry budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a transmission is lost (retransmitted up to
    /// [`FaultConfig::max_retries`] times).
    pub drop_prob: f64,
    /// Probability that a delivered transmission is delayed.
    pub delay_prob: f64,
    /// Maximum extra ticks a delayed delivery adds (uniform in
    /// `1..=max_delay`).
    pub max_delay: u64,
    /// Probability that the hop's recipient is unresponsive for the whole
    /// operation (a crashed-but-undetected owner): no retry helps, the
    /// sender must reroute around it.
    pub dead_prob: f64,
    /// Retransmissions allowed per hop before giving up.
    pub max_retries: u32,
    /// Ticks between a drop and its retransmission (fixed spacing; at
    /// least one tick is always burnt per retry gap). Superseded by
    /// [`FaultConfig::backoff`] when one is installed.
    pub retry_timeout: u64,
    /// Exponential retransmission schedule; `None` keeps the fixed
    /// `retry_timeout` spacing.
    pub backoff: Option<Backoff>,
    /// RNG seed for the fault rolls.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 4,
            dead_prob: 0.0,
            max_retries: 3,
            retry_timeout: 1,
            backoff: None,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// A lossy-link profile: messages drop with `drop_prob`, everything
    /// else at defaults.
    pub fn lossy(drop_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob), "probability range");
        Self {
            drop_prob,
            ..Self::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style delay profile.
    pub fn with_delay(mut self, delay_prob: f64, max_delay: u64) -> Self {
        assert!((0.0..=1.0).contains(&delay_prob), "probability range");
        self.delay_prob = delay_prob;
        self.max_delay = max_delay.max(1);
        self
    }

    /// Builder-style dead-recipient probability.
    pub fn with_dead_prob(mut self, dead_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&dead_prob), "probability range");
        self.dead_prob = dead_prob;
        self
    }

    /// Builder-style exponential backoff (replaces the fixed
    /// `retry_timeout` spacing).
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = Some(backoff);
        self
    }

    /// Builder-style per-hop retransmit budget. Residual loss after the
    /// ack/retransmit loop is `drop_prob^(1 + retries)`, so the budget
    /// directly sets the delivery guarantee a lossy link can offer.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Whether this configuration can ever perturb a delivery.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.delay_prob > 0.0 || self.dead_prob > 0.0
    }
}

/// Aggregate fault counters since injector creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Transmissions attempted (first sends + retransmissions).
    pub attempts: u64,
    /// Transmissions lost.
    pub drops: u64,
    /// Deliveries delayed.
    pub delays: u64,
    /// Hops that hit an unresponsive recipient.
    pub dead_hops: u64,
    /// Hops abandoned after exhausting the retry budget.
    pub exhausted: u64,
}

/// How one logical hop resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopDelivery {
    /// The message arrived after `attempts` transmissions, `ticks` of sim
    /// time after the first send.
    Delivered {
        /// Transmissions used (1 = no drop).
        attempts: u32,
        /// Sim-time ticks the hop occupied (≥ 1).
        ticks: u64,
    },
    /// The message never arrived: dead recipient or retry budget exhausted.
    Unreachable {
        /// Transmissions wasted.
        attempts: u32,
        /// Sim-time ticks burnt before giving up.
        ticks: u64,
    },
}

/// Deterministic per-hop fault roller (see the module docs).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
    report: FaultReport,
}

impl FaultInjector {
    /// Build an injector from a configuration (seeds the RNG).
    pub fn new(cfg: FaultConfig) -> Self {
        Self {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            report: FaultReport::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn report(&self) -> FaultReport {
        self.report
    }

    /// The retry gap after dropped attempt `attempt`: the [`Backoff`]
    /// schedule when installed, else the fixed `retry_timeout` spacing.
    /// Clamped to ≥ 1 tick — the same gap is burnt whether the hop
    /// retransmits or gives up, so `retry_timeout = 0` can no longer
    /// under-count the sim time an abandoned hop occupied.
    fn gap(&self, attempt: u32) -> u64 {
        match self.cfg.backoff {
            Some(b) => b.gap(attempt),
            None => self.cfg.retry_timeout.max(1),
        }
    }

    /// Resolve one logical hop: play the transmission/retry timeline on an
    /// event queue and report how (and whether) the message got through.
    pub fn hop(&mut self) -> HopDelivery {
        // Payload = attempt number; each retransmission is a later event.
        let mut queue: EventQueue<u32> = EventQueue::new();
        queue.push(SimTime(0), NodeId(0), 0);
        while let Some(ev) = queue.pop() {
            let attempt = ev.payload;
            self.report.attempts += 1;
            if self.rng.gen::<f64>() < self.cfg.dead_prob {
                // Recipient is down: retrying cannot help, but the sender
                // still waits out one ack gap before concluding that.
                self.report.dead_hops += 1;
                return HopDelivery::Unreachable {
                    attempts: attempt + 1,
                    ticks: ev.time.0 + self.gap(attempt),
                };
            }
            if self.rng.gen::<f64>() < self.cfg.drop_prob {
                self.report.drops += 1;
                if attempt < self.cfg.max_retries {
                    queue.push(
                        SimTime(ev.time.0 + self.gap(attempt)),
                        NodeId(0),
                        attempt + 1,
                    );
                    continue;
                }
                self.report.exhausted += 1;
                return HopDelivery::Unreachable {
                    attempts: attempt + 1,
                    ticks: ev.time.0 + self.gap(attempt),
                };
            }
            let mut ticks = ev.time.0 + 1;
            if self.rng.gen::<f64>() < self.cfg.delay_prob {
                self.report.delays += 1;
                ticks += self.rng.gen_range(1..=self.cfg.max_delay.max(1));
            }
            return HopDelivery::Delivered {
                attempts: attempt + 1,
                ticks,
            };
        }
        unreachable!("the first transmission is always queued")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_hops_are_clean() {
        let mut inj = FaultInjector::new(FaultConfig::default());
        for _ in 0..50 {
            assert_eq!(
                inj.hop(),
                HopDelivery::Delivered {
                    attempts: 1,
                    ticks: 1
                }
            );
        }
        assert_eq!(inj.report().drops, 0);
        assert_eq!(inj.report().attempts, 50);
    }

    #[test]
    fn drops_trigger_bounded_retries() {
        let mut inj = FaultInjector::new(FaultConfig::lossy(1.0).with_seed(1));
        // Certain drop: every hop exhausts max_retries + 1 attempts.
        let out = inj.hop();
        match out {
            HopDelivery::Unreachable { attempts, ticks } => {
                assert_eq!(attempts, 4); // 1 + max_retries(3)
                assert!(ticks >= 3);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(inj.report().exhausted, 1);
    }

    #[test]
    fn moderate_loss_usually_delivers_with_retries() {
        let mut inj = FaultInjector::new(FaultConfig::lossy(0.3).with_seed(2));
        let mut delivered = 0u32;
        let mut retried = 0u32;
        for _ in 0..500 {
            match inj.hop() {
                HopDelivery::Delivered { attempts, .. } => {
                    delivered += 1;
                    if attempts > 1 {
                        retried += 1;
                    }
                }
                HopDelivery::Unreachable { .. } => {}
            }
        }
        // P(4 consecutive drops) = 0.81% — overwhelmingly delivered.
        assert!(delivered > 480, "delivered {delivered}");
        assert!(retried > 50, "retried {retried}");
    }

    #[test]
    fn dead_recipient_fails_without_retry() {
        let mut inj = FaultInjector::new(FaultConfig::default().with_dead_prob(1.0));
        match inj.hop() {
            HopDelivery::Unreachable { attempts, .. } => assert_eq!(attempts, 1),
            other => panic!("expected unreachable, got {other:?}"),
        }
        assert_eq!(inj.report().dead_hops, 1);
    }

    #[test]
    fn delays_stretch_ticks() {
        let mut inj = FaultInjector::new(FaultConfig::default().with_delay(1.0, 5).with_seed(3));
        for _ in 0..50 {
            match inj.hop() {
                HopDelivery::Delivered { ticks, .. } => {
                    assert!((2..=6).contains(&ticks), "ticks {ticks}")
                }
                other => panic!("expected delivery, got {other:?}"),
            }
        }
        assert_eq!(inj.report().delays, 50);
    }

    #[test]
    fn same_seed_same_sequence() {
        let cfg = FaultConfig::lossy(0.4).with_delay(0.3, 4).with_seed(9);
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        for _ in 0..200 {
            assert_eq!(a.hop(), b.hop());
        }
        assert_eq!(a.report(), b.report());
    }

    /// Regression: with `retry_timeout = 0` the retransmissions were
    /// scheduled with a clamped (≥ 1 tick) gap but the `Unreachable`
    /// accounting used the raw value, under-counting burnt sim time by one
    /// tick per hop. Both sides now share the clamped gap.
    #[test]
    fn zero_retry_timeout_still_burns_a_tick_per_gap() {
        let cfg = FaultConfig {
            drop_prob: 1.0,
            retry_timeout: 0,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg);
        match inj.hop() {
            HopDelivery::Unreachable { attempts, ticks } => {
                assert_eq!(attempts, 4);
                // Retransmits at t = 1, 2, 3; final gap burnt before
                // giving up lands the hop at t = 4, not 3.
                assert_eq!(ticks, 4);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        let dead = FaultConfig {
            dead_prob: 1.0,
            retry_timeout: 0,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(dead);
        match inj.hop() {
            HopDelivery::Unreachable { attempts, ticks } => {
                assert_eq!(attempts, 1);
                assert_eq!(ticks, 1, "a dead hop still burns its ack gap");
            }
            other => panic!("expected unreachable, got {other:?}"),
        }
    }

    #[test]
    fn backoff_gaps_grow_and_cap() {
        let b = Backoff::exponential(2, 10);
        assert_eq!(b.schedule(5), vec![2, 4, 8, 10, 10]);
        // Degenerate inputs are clamped rather than wedging the timeline.
        let z = Backoff {
            base: 0,
            factor: 0,
            cap: 0,
            jitter: 0,
            seed: 0,
        };
        assert_eq!(z.schedule(3), vec![1, 1, 1]);
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let b = Backoff::exponential(1, 64).with_jitter(3, 42);
        let first = b.schedule(6);
        assert_eq!(first, b.schedule(6), "same seed must replay exactly");
        for w in first.windows(2) {
            assert!(w[0] <= w[1], "gaps must be monotone: {first:?}");
        }
        assert!(first.iter().all(|&g| (1..=64).contains(&g)));
        let other = Backoff::exponential(1, 64).with_jitter(3, 43);
        assert_ne!(first, other.schedule(6), "different seeds should differ");
    }

    #[test]
    fn backoff_spaces_retransmissions_in_hop_timeline() {
        let cfg = FaultConfig::lossy(1.0)
            .with_seed(1)
            .with_backoff(Backoff::exponential(2, 100));
        let mut inj = FaultInjector::new(cfg);
        match inj.hop() {
            HopDelivery::Unreachable { attempts, ticks } => {
                assert_eq!(attempts, 4);
                // Drops at t = 0, 2, 6, 14; the last gap (16) is burnt
                // before the hop is abandoned.
                assert_eq!(ticks, 14 + 16);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
