//! Message-level fault injection.
//!
//! The paper's MANET setting loses messages all the time — radios fade,
//! devices sleep, owners walk away mid-query — yet the baseline simulator
//! assumed every hop succeeds. [`FaultInjector`] perturbs individual hop
//! deliveries: a message can be **dropped** (retransmitted up to a bounded
//! retry budget), **delayed** (extra ticks on the critical path), or hit a
//! **dead recipient** (no retry helps; the sender must reroute around it).
//!
//! Each logical hop is resolved through its own tiny [`EventQueue`]
//! timeline: the first transmission fires at `t = 0`, every retransmission
//! is scheduled `retry_timeout` ticks after the drop it answers, and the
//! returned tick count is the sim-time the hop occupied — so delays and
//! retries lengthen an operation's *rounds* (critical path) exactly like
//! any other queued message in the scheduler model.
//!
//! The injector is deterministic: a seeded [`StdRng`] drives all rolls, so
//! a single-threaded run with the same seed replays the same fault
//! sequence. (Under parallel per-level querying the interleaving of hops —
//! and hence the fault assignment — depends on thread timing; experiments
//! that need bitwise reproducibility run with parallel querying off.)

use crate::event::{EventQueue, SimTime};
use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-hop fault probabilities and the retry budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a transmission is lost (retransmitted up to
    /// [`FaultConfig::max_retries`] times).
    pub drop_prob: f64,
    /// Probability that a delivered transmission is delayed.
    pub delay_prob: f64,
    /// Maximum extra ticks a delayed delivery adds (uniform in
    /// `1..=max_delay`).
    pub max_delay: u64,
    /// Probability that the hop's recipient is unresponsive for the whole
    /// operation (a crashed-but-undetected owner): no retry helps, the
    /// sender must reroute around it.
    pub dead_prob: f64,
    /// Retransmissions allowed per hop before giving up.
    pub max_retries: u32,
    /// Ticks between a drop and its retransmission.
    pub retry_timeout: u64,
    /// RNG seed for the fault rolls.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 4,
            dead_prob: 0.0,
            max_retries: 3,
            retry_timeout: 1,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// A lossy-link profile: messages drop with `drop_prob`, everything
    /// else at defaults.
    pub fn lossy(drop_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob), "probability range");
        Self {
            drop_prob,
            ..Self::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style delay profile.
    pub fn with_delay(mut self, delay_prob: f64, max_delay: u64) -> Self {
        assert!((0.0..=1.0).contains(&delay_prob), "probability range");
        self.delay_prob = delay_prob;
        self.max_delay = max_delay.max(1);
        self
    }

    /// Builder-style dead-recipient probability.
    pub fn with_dead_prob(mut self, dead_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&dead_prob), "probability range");
        self.dead_prob = dead_prob;
        self
    }

    /// Whether this configuration can ever perturb a delivery.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.delay_prob > 0.0 || self.dead_prob > 0.0
    }
}

/// Aggregate fault counters since injector creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Transmissions attempted (first sends + retransmissions).
    pub attempts: u64,
    /// Transmissions lost.
    pub drops: u64,
    /// Deliveries delayed.
    pub delays: u64,
    /// Hops that hit an unresponsive recipient.
    pub dead_hops: u64,
    /// Hops abandoned after exhausting the retry budget.
    pub exhausted: u64,
}

/// How one logical hop resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopDelivery {
    /// The message arrived after `attempts` transmissions, `ticks` of sim
    /// time after the first send.
    Delivered {
        /// Transmissions used (1 = no drop).
        attempts: u32,
        /// Sim-time ticks the hop occupied (≥ 1).
        ticks: u64,
    },
    /// The message never arrived: dead recipient or retry budget exhausted.
    Unreachable {
        /// Transmissions wasted.
        attempts: u32,
        /// Sim-time ticks burnt before giving up.
        ticks: u64,
    },
}

/// Deterministic per-hop fault roller (see the module docs).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
    report: FaultReport,
}

impl FaultInjector {
    /// Build an injector from a configuration (seeds the RNG).
    pub fn new(cfg: FaultConfig) -> Self {
        Self {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            report: FaultReport::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn report(&self) -> FaultReport {
        self.report
    }

    /// Resolve one logical hop: play the transmission/retry timeline on an
    /// event queue and report how (and whether) the message got through.
    pub fn hop(&mut self) -> HopDelivery {
        // Payload = attempt number; each retransmission is a later event.
        let mut queue: EventQueue<u32> = EventQueue::new();
        queue.push(SimTime(0), NodeId(0), 0);
        while let Some(ev) = queue.pop() {
            let attempt = ev.payload;
            self.report.attempts += 1;
            if self.rng.gen::<f64>() < self.cfg.dead_prob {
                // Recipient is down: retrying cannot help.
                self.report.dead_hops += 1;
                return HopDelivery::Unreachable {
                    attempts: attempt + 1,
                    ticks: ev.time.0 + self.cfg.retry_timeout,
                };
            }
            if self.rng.gen::<f64>() < self.cfg.drop_prob {
                self.report.drops += 1;
                if attempt < self.cfg.max_retries {
                    queue.push(
                        SimTime(ev.time.0 + self.cfg.retry_timeout.max(1)),
                        NodeId(0),
                        attempt + 1,
                    );
                    continue;
                }
                self.report.exhausted += 1;
                return HopDelivery::Unreachable {
                    attempts: attempt + 1,
                    ticks: ev.time.0 + self.cfg.retry_timeout,
                };
            }
            let mut ticks = ev.time.0 + 1;
            if self.rng.gen::<f64>() < self.cfg.delay_prob {
                self.report.delays += 1;
                ticks += self.rng.gen_range(1..=self.cfg.max_delay.max(1));
            }
            return HopDelivery::Delivered {
                attempts: attempt + 1,
                ticks,
            };
        }
        unreachable!("the first transmission is always queued")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_hops_are_clean() {
        let mut inj = FaultInjector::new(FaultConfig::default());
        for _ in 0..50 {
            assert_eq!(
                inj.hop(),
                HopDelivery::Delivered {
                    attempts: 1,
                    ticks: 1
                }
            );
        }
        assert_eq!(inj.report().drops, 0);
        assert_eq!(inj.report().attempts, 50);
    }

    #[test]
    fn drops_trigger_bounded_retries() {
        let mut inj = FaultInjector::new(FaultConfig::lossy(1.0).with_seed(1));
        // Certain drop: every hop exhausts max_retries + 1 attempts.
        let out = inj.hop();
        match out {
            HopDelivery::Unreachable { attempts, ticks } => {
                assert_eq!(attempts, 4); // 1 + max_retries(3)
                assert!(ticks >= 3);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(inj.report().exhausted, 1);
    }

    #[test]
    fn moderate_loss_usually_delivers_with_retries() {
        let mut inj = FaultInjector::new(FaultConfig::lossy(0.3).with_seed(2));
        let mut delivered = 0u32;
        let mut retried = 0u32;
        for _ in 0..500 {
            match inj.hop() {
                HopDelivery::Delivered { attempts, .. } => {
                    delivered += 1;
                    if attempts > 1 {
                        retried += 1;
                    }
                }
                HopDelivery::Unreachable { .. } => {}
            }
        }
        // P(4 consecutive drops) = 0.81% — overwhelmingly delivered.
        assert!(delivered > 480, "delivered {delivered}");
        assert!(retried > 50, "retried {retried}");
    }

    #[test]
    fn dead_recipient_fails_without_retry() {
        let mut inj = FaultInjector::new(FaultConfig::default().with_dead_prob(1.0));
        match inj.hop() {
            HopDelivery::Unreachable { attempts, .. } => assert_eq!(attempts, 1),
            other => panic!("expected unreachable, got {other:?}"),
        }
        assert_eq!(inj.report().dead_hops, 1);
    }

    #[test]
    fn delays_stretch_ticks() {
        let mut inj = FaultInjector::new(FaultConfig::default().with_delay(1.0, 5).with_seed(3));
        for _ in 0..50 {
            match inj.hop() {
                HopDelivery::Delivered { ticks, .. } => {
                    assert!((2..=6).contains(&ticks), "ticks {ticks}")
                }
                other => panic!("expected delivery, got {other:?}"),
            }
        }
        assert_eq!(inj.report().delays, 50);
    }

    #[test]
    fn same_seed_same_sequence() {
        let cfg = FaultConfig::lossy(0.4).with_delay(0.3, 4).with_seed(9);
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        for _ in 0..200 {
            assert_eq!(a.hop(), b.hop());
        }
        assert_eq!(a.report(), b.report());
    }
}
