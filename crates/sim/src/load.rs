//! Per-peer load accounting for hot-spot analysis and relief.
//!
//! The paper assumes queries arrive uniformly over the key space; under a
//! realistic Zipf-skewed workload a handful of CAN zones absorb most of
//! the traffic while the rest idle — which on MANET peers also means
//! skewed battery drain. The [`LoadLedger`] attributes every served
//! query, relayed flood visit and answered fetch to **exactly one peer**
//! (the peer whose radio transmits the reply), so the load-balancing
//! layer (`hyperm-load`) can find the hot hosts and the experiments can
//! report max/median/p99 per-peer load, Gini coefficients and per-zone
//! heat maps.
//!
//! Accounting is strictly observational: charging never changes results,
//! costs or telemetry, and the overlay hooks are behind an
//! [`Option`]-backed [`LoadProbe`] that is disabled by default — when no
//! ledger is installed the query paths are bit-identical to an
//! uninstrumented build (asserted by `tests/load_equivalence.rs`).
//!
//! Counters are relaxed atomics in the style of [`crate::NetStats`]: the
//! ledger is shared behind an [`Arc`] and charged from the level-parallel
//! query threads without locks. Exact cross-thread ordering is
//! irrelevant — only the final sums are read.

use crate::energy::EnergyModel;
use crate::stats::OpStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One peer's accumulated load, as plain numbers (a snapshot of the
/// ledger's atomic cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeerLoad {
    /// Range/point queries this peer answered as the flood entry owner.
    pub queries_served: u64,
    /// Flood visits this peer served as a relay (store scan + reply).
    pub floods_relayed: u64,
    /// Phase-2 direct fetches this peer answered from its local data.
    pub fetches_answered: u64,
    /// Messages this peer transmitted while serving the above.
    pub messages: u64,
    /// Bytes this peer transmitted while serving the above.
    pub bytes: u64,
    /// Lossy-hop retransmissions this peer paid for as the sender.
    pub retries: u64,
}

impl PeerLoad {
    /// Total served events — the scalar "load" the balancer compares
    /// across peers (queries + flood relays + fetches).
    pub fn events(&self) -> u64 {
        self.queries_served + self.floods_relayed + self.fetches_answered
    }

    /// Radio energy this peer spent serving, in joules, under `model`.
    pub fn energy_j(&self, model: &EnergyModel) -> f64 {
        model.op_joules(OpStats {
            messages: self.messages,
            bytes: self.bytes,
            retries: self.retries,
            ..OpStats::zero()
        })
    }
}

/// Per-peer atomic cells (one [`PeerCell`] per peer, relaxed ordering).
#[derive(Debug, Default)]
struct PeerCell {
    queries_served: AtomicU64,
    floods_relayed: AtomicU64,
    fetches_answered: AtomicU64,
    messages: AtomicU64,
    bytes: AtomicU64,
    retries: AtomicU64,
}

impl PeerCell {
    fn snapshot(&self) -> PeerLoad {
        PeerLoad {
            queries_served: self.queries_served.load(Ordering::Relaxed),
            floods_relayed: self.floods_relayed.load(Ordering::Relaxed),
            fetches_answered: self.fetches_answered.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.queries_served.store(0, Ordering::Relaxed);
        self.floods_relayed.store(0, Ordering::Relaxed);
        self.fetches_answered.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
    }
}

/// Thread-safe per-peer load ledger.
///
/// Sized at creation for a fixed peer population and level count; peers
/// that join after the ledger was installed fall outside the table and
/// are silently untracked (install a fresh ledger after membership
/// changes to track them). Every charge site attributes the work to the
/// **single** peer that serves it — the flood relay that scans its store
/// and transmits the reply, the owner that admits the query, the peer
/// that answers the fetch — so sums over the ledger equal the per-query
/// `OpStats` without double counting (regression-tested in
/// `tests/load_balancing.rs`).
#[derive(Debug)]
pub struct LoadLedger {
    cells: Vec<PeerCell>,
    /// Flood-visit heat per `(level, peer)`, row-major by level.
    heat: Vec<AtomicU64>,
    levels: usize,
}

impl LoadLedger {
    /// A ledger for `peers` peers across `levels` wavelet levels.
    pub fn new(peers: usize, levels: usize) -> Self {
        Self {
            cells: (0..peers).map(|_| PeerCell::default()).collect(),
            heat: (0..peers * levels).map(|_| AtomicU64::new(0)).collect(),
            levels,
        }
    }

    /// Number of tracked peers.
    pub fn peers(&self) -> usize {
        self.cells.len()
    }

    /// Number of tracked wavelet levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Charge `peer` with admitting one query as the flood entry owner.
    pub fn charge_query_served(&self, peer: usize) {
        if let Some(c) = self.cells.get(peer) {
            c.queries_served.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge `peer` with serving one flood visit at `level`: a store
    /// scan plus a `bytes`-sized reply transmission.
    pub fn charge_flood_visit(&self, level: usize, peer: usize, bytes: u64) {
        if let Some(c) = self.cells.get(peer) {
            c.floods_relayed.fetch_add(1, Ordering::Relaxed);
            c.messages.fetch_add(1, Ordering::Relaxed);
            c.bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        if level < self.levels {
            if let Some(h) = self.heat.get(level * self.cells.len() + peer) {
                h.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Charge `peer` with answering one phase-2 direct fetch of `bytes`.
    pub fn charge_fetch_answered(&self, peer: usize, bytes: u64) {
        if let Some(c) = self.cells.get(peer) {
            c.fetches_answered.fetch_add(1, Ordering::Relaxed);
            c.messages.fetch_add(1, Ordering::Relaxed);
            c.bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Charge `peer` with `n` lossy-hop retransmissions it sent.
    pub fn charge_retries(&self, peer: usize, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(c) = self.cells.get(peer) {
            c.retries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// One peer's accumulated load (zeros for out-of-table peers).
    pub fn peer_load(&self, peer: usize) -> PeerLoad {
        self.cells
            .get(peer)
            .map(PeerCell::snapshot)
            .unwrap_or_default()
    }

    /// Every peer's accumulated load, indexed by peer id.
    pub fn per_peer(&self) -> Vec<PeerLoad> {
        self.cells.iter().map(PeerCell::snapshot).collect()
    }

    /// Flood-visit heat per peer at `level` (empty if out of range).
    pub fn heat_of(&self, level: usize) -> Vec<u64> {
        if level >= self.levels {
            return Vec::new();
        }
        let n = self.cells.len();
        self.heat[level * n..(level + 1) * n]
            .iter()
            .map(|h| h.load(Ordering::Relaxed))
            .collect()
    }

    /// Sum of served events across all peers.
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.snapshot().events()).sum()
    }

    /// Zero every counter (start a fresh measurement window).
    pub fn reset(&self) {
        for c in &self.cells {
            c.reset();
        }
        for h in &self.heat {
            h.store(0, Ordering::Relaxed);
        }
    }
}

/// A cheap-clone charging handle installed on one per-level overlay.
///
/// Mirrors the telemetry `Recorder` slot pattern: disabled by default
/// (`LoadProbe::disabled()`), and every charge method is a no-op costing
/// one `Option` check when no ledger is attached — accounting is free
/// when off.
#[derive(Debug, Clone, Default)]
pub struct LoadProbe {
    ledger: Option<Arc<LoadLedger>>,
    level: usize,
}

impl LoadProbe {
    /// The default no-op probe.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A probe charging `ledger` on behalf of wavelet `level`.
    pub fn new(ledger: Arc<LoadLedger>, level: usize) -> Self {
        Self {
            ledger: Some(ledger),
            level,
        }
    }

    /// Whether a ledger is attached.
    pub fn is_enabled(&self) -> bool {
        self.ledger.is_some()
    }

    /// Charge one admitted query to `peer` (see
    /// [`LoadLedger::charge_query_served`]).
    pub fn query_served(&self, peer: usize) {
        if let Some(l) = &self.ledger {
            l.charge_query_served(peer);
        }
    }

    /// Charge one served flood visit to `peer` (see
    /// [`LoadLedger::charge_flood_visit`]).
    pub fn flood_visit(&self, peer: usize, bytes: u64) {
        if let Some(l) = &self.ledger {
            l.charge_flood_visit(self.level, peer, bytes);
        }
    }

    /// Charge `n` retransmissions to sender `peer` (see
    /// [`LoadLedger::charge_retries`]).
    pub fn retries(&self, peer: usize, n: u64) {
        if let Some(l) = &self.ledger {
            l.charge_retries(peer, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_attribute_to_exactly_one_peer() {
        let ledger = LoadLedger::new(4, 2);
        ledger.charge_query_served(1);
        ledger.charge_flood_visit(0, 1, 100);
        ledger.charge_flood_visit(1, 2, 50);
        ledger.charge_fetch_answered(3, 200);
        ledger.charge_retries(2, 2);

        let loads = ledger.per_peer();
        assert_eq!(loads[0], PeerLoad::default());
        assert_eq!(loads[1].queries_served, 1);
        assert_eq!(loads[1].floods_relayed, 1);
        assert_eq!(loads[1].bytes, 100);
        assert_eq!(loads[2].floods_relayed, 1);
        assert_eq!(loads[2].retries, 2);
        assert_eq!(loads[3].fetches_answered, 1);
        assert_eq!(loads[3].bytes, 200);
        assert_eq!(ledger.total_events(), 4);
        assert_eq!(ledger.heat_of(0), vec![0, 1, 0, 0]);
        assert_eq!(ledger.heat_of(1), vec![0, 0, 1, 0]);
    }

    #[test]
    fn out_of_table_peers_are_ignored() {
        let ledger = LoadLedger::new(2, 1);
        ledger.charge_query_served(9);
        ledger.charge_flood_visit(0, 9, 10);
        ledger.charge_fetch_answered(9, 10);
        ledger.charge_retries(9, 1);
        assert_eq!(ledger.total_events(), 0);
        assert_eq!(ledger.peer_load(9), PeerLoad::default());
    }

    #[test]
    fn reset_clears_every_counter() {
        let ledger = LoadLedger::new(2, 1);
        ledger.charge_flood_visit(0, 0, 10);
        ledger.charge_fetch_answered(1, 5);
        ledger.reset();
        assert_eq!(ledger.total_events(), 0);
        assert_eq!(ledger.heat_of(0), vec![0, 0]);
    }

    #[test]
    fn disabled_probe_is_a_no_op() {
        let p = LoadProbe::disabled();
        assert!(!p.is_enabled());
        p.query_served(0);
        p.flood_visit(0, 10);
        p.retries(0, 1);
    }

    #[test]
    fn probe_charges_its_level() {
        let ledger = Arc::new(LoadLedger::new(3, 2));
        let p = LoadProbe::new(ledger.clone(), 1);
        assert!(p.is_enabled());
        p.flood_visit(2, 16);
        assert_eq!(ledger.heat_of(0), vec![0, 0, 0]);
        assert_eq!(ledger.heat_of(1), vec![0, 0, 1]);
    }

    #[test]
    fn energy_estimate_uses_the_radio_model() {
        let load = PeerLoad {
            messages: 10,
            bytes: 1000,
            ..PeerLoad::default()
        };
        let m = EnergyModel::bluetooth_class2();
        // 10 msgs × 50_000 nJ + 1000 B × 200 nJ/B = 7e5 nJ = 7e-4 J.
        assert!((load.energy_j(&m) - 7e-4).abs() < 1e-12);
        assert_eq!(load.energy_j(&EnergyModel::zero()), 0.0);
    }
}
