//! Discrete-event network simulation substrate for Hyper-M (ICDE 2007).
//!
//! The paper evaluates Hyper-M on a home-grown Java simulator: *"We
//! implemented CAN … and simulated the parallel behavior of a peer-to-peer
//! network with a scheduler class and an event queue. Every message generated
//! in the network is sent to the event queue. Periodically, parallel
//! execution is simulated by emptying the queue."* This crate is the Rust
//! equivalent of that substrate, plus the two things the paper motivates but
//! never quantifies — the MANET radio underlay and an energy model:
//!
//! * [`event`] — a deterministic event queue (time + FIFO tie-break) and the
//!   round-based scheduler that emulates parallel execution: every message
//!   in flight advances one overlay hop per round, so the number of rounds
//!   to drain the queue is the *makespan* of a parallel insertion;
//! * [`stats`] — cheap atomic counters for messages/bytes and per-operation
//!   `OpStats` records (hops are the paper's primary metric);
//! * [`faults`] — deterministic message-level fault injection (per-hop
//!   drop/delay/dead-recipient with bounded retry), each hop resolved on
//!   its own event-queue timeline;
//! * [`energy`] — per-byte/per-message radio energy accounting with
//!   Bluetooth-class constants, used to substantiate the "energy efficient"
//!   claim of the abstract;
//! * [`load`] — the per-peer [`LoadLedger`]: exactly-once attribution of
//!   served queries, flood relays and fetches (plus bytes, retries and a
//!   radio-energy estimate), charged through the disabled-by-default
//!   [`LoadProbe`] overlay hook;
//! * [`underlay`] — a static unit-disk random-geometric-graph MANET: overlay
//!   hops are translated into physical radio hops via BFS path lengths, with
//!   an optional random-waypoint mobility stepper as an extension.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod energy;
pub mod event;
pub mod faults;
pub mod load;
pub mod stats;
pub mod underlay;

pub use energy::EnergyModel;
pub use event::{Event, EventQueue, Scheduler, SimTime};
pub use faults::{Backoff, FaultConfig, FaultInjector, FaultReport, HopDelivery};
pub use load::{LoadLedger, LoadProbe, PeerLoad};
pub use stats::{LatencyStats, LatencySummary, NetStats, OpKind, OpStats};
pub use underlay::{PartitionPlan, Underlay, UnderlayConfig};

/// Identifier of a simulated node. Nodes are dense indices into the
/// overlay/underlay tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}
