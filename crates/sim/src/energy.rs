//! Radio energy model.
//!
//! The paper's abstract claims Hyper-M is "both energy and time efficient"
//! but only ever measures hop counts. Because every overlay hop is one radio
//! transmission *and* one reception on battery-powered devices, hop counts
//! translate linearly into Joules; this module makes that translation
//! explicit so the experiment binaries can report energy alongside hops.
//!
//! The default constants are representative of a Bluetooth 2.0 class-2
//! radio of the paper's era (~2.5 mW-class TX at ~1–2 Mb/s effective
//! throughput, similar RX power, plus per-packet protocol overhead). They
//! are deliberately round numbers — the experiments compare *ratios*
//! between Hyper-M and per-item CAN insertion, which the constants cancel
//! out of.

use crate::stats::OpStats;

/// Per-message radio energy accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy to transmit one byte, in nanojoules.
    pub tx_nj_per_byte: f64,
    /// Energy to receive one byte, in nanojoules.
    pub rx_nj_per_byte: f64,
    /// Fixed per-message overhead (headers, radio wake-up), in nanojoules,
    /// charged once per message to the sender/receiver pair.
    pub per_message_nj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::bluetooth_class2()
    }
}

impl EnergyModel {
    /// Bluetooth 2.0 class-2 flavoured constants.
    pub fn bluetooth_class2() -> Self {
        Self {
            tx_nj_per_byte: 100.0,
            rx_nj_per_byte: 100.0,
            per_message_nj: 50_000.0,
        }
    }

    /// A free radio — useful to isolate hop counts in tests.
    pub fn zero() -> Self {
        Self {
            tx_nj_per_byte: 0.0,
            rx_nj_per_byte: 0.0,
            per_message_nj: 0.0,
        }
    }

    /// Energy for one message of `bytes` crossing one radio link
    /// (sender TX + receiver RX + overhead), in nanojoules.
    pub fn message_nj(&self, bytes: u64) -> f64 {
        (self.tx_nj_per_byte + self.rx_nj_per_byte) * bytes as f64 + self.per_message_nj
    }

    /// Total energy for an operation record, in **joules**.
    ///
    /// Charges each message the per-message overhead and each byte the
    /// TX+RX cost. Uses the average message size implied by the record.
    pub fn op_joules(&self, op: OpStats) -> f64 {
        let byte_nj = (self.tx_nj_per_byte + self.rx_nj_per_byte) * op.bytes as f64;
        let msg_nj = self.per_message_nj * op.messages as f64;
        (byte_nj + msg_nj) * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_energy() {
        let m = EnergyModel {
            tx_nj_per_byte: 10.0,
            rx_nj_per_byte: 5.0,
            per_message_nj: 100.0,
        };
        assert_eq!(m.message_nj(4), 160.0);
        assert_eq!(m.message_nj(0), 100.0);
    }

    #[test]
    fn op_energy_in_joules() {
        let m = EnergyModel {
            tx_nj_per_byte: 10.0,
            rx_nj_per_byte: 10.0,
            per_message_nj: 0.0,
        };
        let op = OpStats {
            hops: 3,
            messages: 3,
            bytes: 1_000_000,
            ..OpStats::zero()
        };
        // 20 nJ/byte × 1e6 bytes = 2e7 nJ = 0.02 J.
        assert!((m.op_joules(op) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn zero_model_is_free() {
        let op = OpStats {
            hops: 100,
            messages: 100,
            bytes: 1 << 30,
            ..OpStats::zero()
        };
        assert_eq!(EnergyModel::zero().op_joules(op), 0.0);
    }

    #[test]
    fn fewer_messages_cost_less() {
        let m = EnergyModel::default();
        let clustered = OpStats {
            hops: 10,
            messages: 10,
            bytes: 10 * 100,
            ..OpStats::zero()
        };
        let per_item = OpStats {
            hops: 1000,
            messages: 1000,
            bytes: 1000 * 100,
            ..OpStats::zero()
        };
        assert!(m.op_joules(clustered) < m.op_joules(per_item) / 50.0);
    }
}
