//! Message/hop/byte accounting.
//!
//! The paper's dissemination experiments (Figure 8) report *average hops per
//! item insertion*; each overlay hop is one radio message. [`OpStats`] is
//! the per-operation record returned by CAN operations, [`NetStats`] the
//! thread-safe whole-network accumulator used when many peers insert in
//! parallel.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The kind of network operation a cost record belongs to.
///
/// Lives here (not in `hyperm-telemetry`) so that [`NetStats`] can break
/// its counters down per kind without `hyperm-sim` depending on the
/// telemetry crate; telemetry re-uses this enum as half of its
/// `(op kind, wavelet level)` metrics key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Build-time publication of one cluster sphere.
    Publish,
    /// Soft-state republish of a peer's summaries (TTL refresh).
    Refresh,
    /// ε-range query.
    RangeQuery,
    /// k-nearest-neighbour query.
    KnnQuery,
    /// Exact point query.
    PointQuery,
    /// Overlay repair: zone takeover, handoff, background merges.
    Repair,
}

impl OpKind {
    /// All kinds, in stable report order.
    pub const ALL: [OpKind; 6] = [
        OpKind::Publish,
        OpKind::Refresh,
        OpKind::RangeQuery,
        OpKind::KnnQuery,
        OpKind::PointQuery,
        OpKind::Repair,
    ];

    /// Stable snake_case name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Publish => "publish",
            OpKind::Refresh => "refresh",
            OpKind::RangeQuery => "range_query",
            OpKind::KnnQuery => "knn_query",
            OpKind::PointQuery => "point_query",
            OpKind::Repair => "repair",
        }
    }

    /// Dense index into per-kind tables (`0..OpKind::ALL.len()`).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Cost record of one overlay operation (insert, lookup, query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpStats {
    /// Overlay hops taken (greedy routing steps + replication fan-out).
    pub hops: u64,
    /// Messages sent (≥ hops; a flooding step sends several).
    pub messages: u64,
    /// Payload bytes moved across all messages.
    pub bytes: u64,
    /// Retransmissions after per-hop message drops (fault injection).
    pub retries: u64,
    /// Routing attempts that terminated without reaching an owner
    /// (dead end in a damaged topology, hop-cap, or retry exhaustion).
    pub failed_routes: u64,
}

impl OpStats {
    /// A zero record.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Record of a single message of `bytes` traveling one hop.
    pub fn one_hop(bytes: u64) -> Self {
        Self {
            hops: 1,
            messages: 1,
            bytes,
            ..Self::zero()
        }
    }

    /// Record of one routing attempt that never reached an owner.
    pub fn one_failed_route() -> Self {
        Self {
            failed_routes: 1,
            ..Self::zero()
        }
    }
}

impl std::ops::Add for OpStats {
    type Output = OpStats;
    fn add(self, rhs: OpStats) -> OpStats {
        OpStats {
            hops: self.hops + rhs.hops,
            messages: self.messages + rhs.messages,
            bytes: self.bytes + rhs.bytes,
            retries: self.retries + rhs.retries,
            failed_routes: self.failed_routes + rhs.failed_routes,
        }
    }
}

impl std::ops::AddAssign for OpStats {
    fn add_assign(&mut self, rhs: OpStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for OpStats {
    fn sum<I: Iterator<Item = OpStats>>(iter: I) -> OpStats {
        iter.fold(OpStats::zero(), |a, b| a + b)
    }
}

/// One kind's worth of atomic counters inside [`NetStats`].
#[derive(Debug, Default)]
struct KindCell {
    hops: AtomicU64,
    messages: AtomicU64,
    bytes: AtomicU64,
    retries: AtomicU64,
    failed_routes: AtomicU64,
    operations: AtomicU64,
}

impl KindCell {
    fn record(&self, op: OpStats) {
        self.hops.fetch_add(op.hops, Ordering::Relaxed);
        self.messages.fetch_add(op.messages, Ordering::Relaxed);
        self.bytes.fetch_add(op.bytes, Ordering::Relaxed);
        self.retries.fetch_add(op.retries, Ordering::Relaxed);
        self.failed_routes
            .fetch_add(op.failed_routes, Ordering::Relaxed);
        self.operations.fetch_add(1, Ordering::Relaxed);
    }

    fn totals(&self) -> OpStats {
        OpStats {
            hops: self.hops.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failed_routes: self.failed_routes.load(Ordering::Relaxed),
        }
    }

    fn operations(&self) -> u64 {
        self.operations.load(Ordering::Relaxed)
    }
}

/// Thread-safe whole-network counters (relaxed atomics — counters only),
/// broken down per [`OpKind`] so hop averages can be reported per kind
/// (publish vs. query vs. repair, as in the paper's Fig. 8).
#[derive(Debug, Default)]
pub struct NetStats {
    total: KindCell,
    kinds: [KindCell; OpKind::ALL.len()],
}

impl NetStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one operation's record into the totals, unattributed to any
    /// kind (legacy entry point; prefer [`NetStats::record_as`]).
    pub fn record(&self, op: OpStats) {
        self.total.record(op);
    }

    /// Fold one operation's record into both the overall totals and the
    /// per-kind cell for `kind`.
    pub fn record_as(&self, kind: OpKind, op: OpStats) {
        self.total.record(op);
        self.kinds[kind.index()].record(op);
    }

    /// Snapshot the overall totals as a plain [`OpStats`].
    pub fn totals(&self) -> OpStats {
        self.total.totals()
    }

    /// Snapshot one kind's totals.
    pub fn totals_of(&self, kind: OpKind) -> OpStats {
        self.kinds[kind.index()].totals()
    }

    /// Number of operations recorded overall.
    pub fn operations(&self) -> u64 {
        self.total.operations()
    }

    /// Number of operations recorded for `kind` (via
    /// [`NetStats::record_as`]).
    pub fn operations_of(&self, kind: OpKind) -> u64 {
        self.kinds[kind.index()].operations()
    }

    /// Average hops per recorded operation (0 when nothing recorded).
    pub fn avg_hops(&self) -> f64 {
        Self::ratio(self.total.totals().hops, self.total.operations())
    }

    /// Average hops per operation of `kind` (0 when nothing recorded).
    pub fn avg_hops_of(&self, kind: OpKind) -> f64 {
        let cell = &self.kinds[kind.index()];
        Self::ratio(cell.totals().hops, cell.operations())
    }

    /// Average messages per operation of `kind` (0 when nothing recorded).
    pub fn avg_messages_of(&self, kind: OpKind) -> f64 {
        let cell = &self.kinds[kind.index()];
        Self::ratio(cell.totals().messages, cell.operations())
    }

    fn ratio(num: u64, den: u64) -> f64 {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    }
}

/// Wall-clock latency samples with percentile extraction.
///
/// Host-side timing for the benchmark harness: each recorded
/// [`std::time::Duration`] is one query's end-to-end latency. Percentiles
/// use the nearest-rank method on a sorted snapshot, so p50/p99 are actual
/// observed samples, not interpolations. The sorted snapshot is computed
/// lazily on first use and cached until the next [`LatencyStats::record`],
/// so a bench loop asking for p50, p99 and mean pays one O(n log n) sort,
/// not one per statistic. (The cache makes this type `!Sync`; recording is
/// `&mut self` anyway, so share per thread.)
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples_s: Vec<f64>,
    sorted: RefCell<Option<Vec<f64>>>,
}

impl LatencyStats {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample (invalidates the sorted snapshot).
    pub fn record(&mut self, d: std::time::Duration) {
        self.samples_s.push(d.as_secs_f64());
        *self.sorted.get_mut() = None;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples_s.len()
    }

    /// Sum of all samples in seconds.
    pub fn total_s(&self) -> f64 {
        self.samples_s.iter().sum()
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.samples_s.is_empty() {
            0.0
        } else {
            self.total_s() / self.samples_s.len() as f64
        }
    }

    /// Run `f` against the cached sorted snapshot, building it if stale.
    fn with_sorted<R>(&self, f: impl FnOnce(&[f64]) -> R) -> R {
        let mut cache = self.sorted.borrow_mut();
        let sorted = cache.get_or_insert_with(|| {
            let mut v = self.samples_s.clone();
            v.sort_by(|a, b| a.total_cmp(b));
            v
        });
        f(sorted)
    }

    /// Nearest-rank percentile in seconds, `p` in `[0, 100]` (0 when empty).
    pub fn percentile_s(&self, p: f64) -> f64 {
        if self.samples_s.is_empty() {
            return 0.0;
        }
        self.with_sorted(|sorted| {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        })
    }

    /// Median latency in seconds.
    pub fn p50_s(&self) -> f64 {
        self.percentile_s(50.0)
    }

    /// 99th-percentile latency in seconds.
    pub fn p99_s(&self) -> f64 {
        self.percentile_s(99.0)
    }

    /// All the usual statistics in one pass over one sorted snapshot.
    pub fn summary(&self) -> LatencySummary {
        if self.samples_s.is_empty() {
            return LatencySummary::default();
        }
        let total_s = self.total_s();
        self.with_sorted(|sorted| {
            let pick = |p: f64| {
                let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
                sorted[rank.clamp(1, sorted.len()) - 1]
            };
            LatencySummary {
                count: sorted.len(),
                total_s,
                mean_s: total_s / sorted.len() as f64,
                min_s: sorted[0],
                p50_s: pick(50.0),
                p99_s: pick(99.0),
                max_s: sorted[sorted.len() - 1],
            }
        })
    }
}

/// One-shot summary of a [`LatencyStats`] sample set (all in seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Sum of all samples.
    pub total_s: f64,
    /// Mean (0 when empty).
    pub mean_s: f64,
    /// Smallest sample (0 when empty).
    pub min_s: f64,
    /// Nearest-rank median (0 when empty).
    pub p50_s: f64,
    /// Nearest-rank 99th percentile (0 when empty).
    pub p99_s: f64,
    /// Largest sample (0 when empty).
    pub max_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stats_arithmetic() {
        let a = OpStats {
            hops: 2,
            messages: 3,
            bytes: 100,
            ..OpStats::zero()
        };
        let b = OpStats::one_hop(50);
        let c = a + b;
        assert_eq!(
            c,
            OpStats {
                hops: 3,
                messages: 4,
                bytes: 150,
                ..OpStats::zero()
            }
        );
        let sum: OpStats = [a, b, c].into_iter().sum();
        assert_eq!(sum.hops, 6);
    }

    #[test]
    fn add_assign() {
        let mut a = OpStats::zero();
        a += OpStats::one_hop(10);
        a += OpStats::one_hop(20);
        assert_eq!(
            a,
            OpStats {
                hops: 2,
                messages: 2,
                bytes: 30,
                ..OpStats::zero()
            }
        );
    }

    #[test]
    fn net_stats_accumulates() {
        let stats = NetStats::new();
        stats.record(OpStats {
            hops: 4,
            messages: 5,
            bytes: 64,
            ..OpStats::zero()
        });
        stats.record(OpStats {
            hops: 2,
            messages: 2,
            bytes: 32,
            ..OpStats::zero()
        });
        assert_eq!(
            stats.totals(),
            OpStats {
                hops: 6,
                messages: 7,
                bytes: 96,
                ..OpStats::zero()
            }
        );
        assert_eq!(stats.operations(), 2);
        assert_eq!(stats.avg_hops(), 3.0);
    }

    #[test]
    fn avg_hops_empty() {
        assert_eq!(NetStats::new().avg_hops(), 0.0);
        assert_eq!(NetStats::new().avg_hops_of(OpKind::Publish), 0.0);
    }

    #[test]
    fn net_stats_per_kind_breakdown() {
        let stats = NetStats::new();
        stats.record_as(
            OpKind::Publish,
            OpStats {
                hops: 10,
                messages: 12,
                bytes: 640,
                ..OpStats::zero()
            },
        );
        stats.record_as(
            OpKind::Publish,
            OpStats {
                hops: 6,
                messages: 8,
                bytes: 320,
                ..OpStats::zero()
            },
        );
        stats.record_as(OpKind::RangeQuery, OpStats::one_hop(64));
        stats.record_as(
            OpKind::Repair,
            OpStats {
                messages: 3,
                bytes: 96,
                ..OpStats::zero()
            },
        );
        // Per-kind counts and averages.
        assert_eq!(stats.operations_of(OpKind::Publish), 2);
        assert_eq!(stats.operations_of(OpKind::RangeQuery), 1);
        assert_eq!(stats.operations_of(OpKind::Repair), 1);
        assert_eq!(stats.operations_of(OpKind::KnnQuery), 0);
        assert_eq!(stats.avg_hops_of(OpKind::Publish), 8.0);
        assert_eq!(stats.avg_hops_of(OpKind::RangeQuery), 1.0);
        assert_eq!(stats.avg_hops_of(OpKind::Repair), 0.0);
        assert_eq!(stats.avg_messages_of(OpKind::Publish), 10.0);
        assert_eq!(stats.totals_of(OpKind::Publish).bytes, 960);
        // Kind-attributed records also land in the overall totals,
        // alongside unattributed `record` calls.
        stats.record(OpStats::one_hop(1));
        assert_eq!(stats.operations(), 5);
        assert_eq!(stats.totals().hops, 18);
    }

    #[test]
    fn op_kind_names_and_indices_are_dense() {
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        use std::time::Duration;
        let mut lat = LatencyStats::new();
        // 1..=100 ms inserted out of order.
        for ms in (1..=100u64).rev() {
            lat.record(Duration::from_millis(ms));
        }
        assert_eq!(lat.count(), 100);
        assert!((lat.p50_s() - 0.050).abs() < 1e-12);
        assert!((lat.p99_s() - 0.099).abs() < 1e-12);
        assert!((lat.percentile_s(100.0) - 0.100).abs() < 1e-12);
        assert!((lat.percentile_s(0.0) - 0.001).abs() < 1e-12);
        assert!((lat.mean_s() - 0.0505).abs() < 1e-12);
        assert!((lat.total_s() - 5.050).abs() < 1e-9);
    }

    #[test]
    fn latency_empty_is_zero() {
        let lat = LatencyStats::new();
        assert_eq!(lat.count(), 0);
        assert_eq!(lat.mean_s(), 0.0);
        assert_eq!(lat.p50_s(), 0.0);
        assert_eq!(lat.p99_s(), 0.0);
    }

    #[test]
    fn latency_single_sample() {
        let mut lat = LatencyStats::new();
        lat.record(std::time::Duration::from_millis(7));
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert!((lat.percentile_s(p) - 0.007).abs() < 1e-12);
        }
    }

    #[test]
    fn latency_cache_invalidated_by_record() {
        use std::time::Duration;
        let mut lat = LatencyStats::new();
        lat.record(Duration::from_millis(10));
        // Prime the sorted cache, then record a smaller sample: the next
        // percentile must see it (stale-cache regression test).
        assert!((lat.p50_s() - 0.010).abs() < 1e-12);
        lat.record(Duration::from_millis(2));
        assert!((lat.percentile_s(0.0) - 0.002).abs() < 1e-12);
        assert!((lat.p50_s() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn latency_summary_matches_point_queries() {
        use std::time::Duration;
        let mut lat = LatencyStats::new();
        for ms in (1..=100u64).rev() {
            lat.record(Duration::from_millis(ms));
        }
        let s = lat.summary();
        assert_eq!(s.count, 100);
        assert!((s.p50_s - lat.p50_s()).abs() < 1e-15);
        assert!((s.p99_s - lat.p99_s()).abs() < 1e-15);
        assert!((s.mean_s - lat.mean_s()).abs() < 1e-15);
        assert!((s.min_s - 0.001).abs() < 1e-12);
        assert!((s.max_s - 0.100).abs() < 1e-12);
        assert_eq!(LatencyStats::new().summary(), LatencySummary::default());
    }

    #[test]
    fn net_stats_is_thread_safe() {
        let stats = std::sync::Arc::new(NetStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = stats.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record(OpStats::one_hop(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.operations(), 8000);
        assert_eq!(stats.totals().hops, 8000);
    }
}
