//! Message/hop/byte accounting.
//!
//! The paper's dissemination experiments (Figure 8) report *average hops per
//! item insertion*; each overlay hop is one radio message. [`OpStats`] is
//! the per-operation record returned by CAN operations, [`NetStats`] the
//! thread-safe whole-network accumulator used when many peers insert in
//! parallel.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cost record of one overlay operation (insert, lookup, query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpStats {
    /// Overlay hops taken (greedy routing steps + replication fan-out).
    pub hops: u64,
    /// Messages sent (≥ hops; a flooding step sends several).
    pub messages: u64,
    /// Payload bytes moved across all messages.
    pub bytes: u64,
}

impl OpStats {
    /// A zero record.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Record of a single message of `bytes` traveling one hop.
    pub fn one_hop(bytes: u64) -> Self {
        Self {
            hops: 1,
            messages: 1,
            bytes,
        }
    }
}

impl std::ops::Add for OpStats {
    type Output = OpStats;
    fn add(self, rhs: OpStats) -> OpStats {
        OpStats {
            hops: self.hops + rhs.hops,
            messages: self.messages + rhs.messages,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl std::ops::AddAssign for OpStats {
    fn add_assign(&mut self, rhs: OpStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for OpStats {
    fn sum<I: Iterator<Item = OpStats>>(iter: I) -> OpStats {
        iter.fold(OpStats::zero(), |a, b| a + b)
    }
}

/// Thread-safe whole-network counters (relaxed atomics — counters only).
#[derive(Debug, Default)]
pub struct NetStats {
    hops: AtomicU64,
    messages: AtomicU64,
    bytes: AtomicU64,
    operations: AtomicU64,
}

impl NetStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one operation's record into the totals.
    pub fn record(&self, op: OpStats) {
        self.hops.fetch_add(op.hops, Ordering::Relaxed);
        self.messages.fetch_add(op.messages, Ordering::Relaxed);
        self.bytes.fetch_add(op.bytes, Ordering::Relaxed);
        self.operations.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the totals as a plain [`OpStats`].
    pub fn totals(&self) -> OpStats {
        OpStats {
            hops: self.hops.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Number of operations recorded.
    pub fn operations(&self) -> u64 {
        self.operations.load(Ordering::Relaxed)
    }

    /// Average hops per recorded operation (0 when nothing recorded).
    pub fn avg_hops(&self) -> f64 {
        let ops = self.operations();
        if ops == 0 {
            0.0
        } else {
            self.totals().hops as f64 / ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stats_arithmetic() {
        let a = OpStats {
            hops: 2,
            messages: 3,
            bytes: 100,
        };
        let b = OpStats::one_hop(50);
        let c = a + b;
        assert_eq!(
            c,
            OpStats {
                hops: 3,
                messages: 4,
                bytes: 150
            }
        );
        let sum: OpStats = [a, b, c].into_iter().sum();
        assert_eq!(sum.hops, 6);
    }

    #[test]
    fn add_assign() {
        let mut a = OpStats::zero();
        a += OpStats::one_hop(10);
        a += OpStats::one_hop(20);
        assert_eq!(
            a,
            OpStats {
                hops: 2,
                messages: 2,
                bytes: 30
            }
        );
    }

    #[test]
    fn net_stats_accumulates() {
        let stats = NetStats::new();
        stats.record(OpStats {
            hops: 4,
            messages: 5,
            bytes: 64,
        });
        stats.record(OpStats {
            hops: 2,
            messages: 2,
            bytes: 32,
        });
        assert_eq!(
            stats.totals(),
            OpStats {
                hops: 6,
                messages: 7,
                bytes: 96
            }
        );
        assert_eq!(stats.operations(), 2);
        assert_eq!(stats.avg_hops(), 3.0);
    }

    #[test]
    fn avg_hops_empty() {
        assert_eq!(NetStats::new().avg_hops(), 0.0);
    }

    #[test]
    fn net_stats_is_thread_safe() {
        let stats = std::sync::Arc::new(NetStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = stats.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record(OpStats::one_hop(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.operations(), 8000);
        assert_eq!(stats.totals().hops, 8000);
    }
}
