//! Message/hop/byte accounting.
//!
//! The paper's dissemination experiments (Figure 8) report *average hops per
//! item insertion*; each overlay hop is one radio message. [`OpStats`] is
//! the per-operation record returned by CAN operations, [`NetStats`] the
//! thread-safe whole-network accumulator used when many peers insert in
//! parallel.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cost record of one overlay operation (insert, lookup, query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpStats {
    /// Overlay hops taken (greedy routing steps + replication fan-out).
    pub hops: u64,
    /// Messages sent (≥ hops; a flooding step sends several).
    pub messages: u64,
    /// Payload bytes moved across all messages.
    pub bytes: u64,
    /// Retransmissions after per-hop message drops (fault injection).
    pub retries: u64,
    /// Routing attempts that terminated without reaching an owner
    /// (dead end in a damaged topology, hop-cap, or retry exhaustion).
    pub failed_routes: u64,
}

impl OpStats {
    /// A zero record.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Record of a single message of `bytes` traveling one hop.
    pub fn one_hop(bytes: u64) -> Self {
        Self {
            hops: 1,
            messages: 1,
            bytes,
            ..Self::zero()
        }
    }

    /// Record of one routing attempt that never reached an owner.
    pub fn one_failed_route() -> Self {
        Self {
            failed_routes: 1,
            ..Self::zero()
        }
    }
}

impl std::ops::Add for OpStats {
    type Output = OpStats;
    fn add(self, rhs: OpStats) -> OpStats {
        OpStats {
            hops: self.hops + rhs.hops,
            messages: self.messages + rhs.messages,
            bytes: self.bytes + rhs.bytes,
            retries: self.retries + rhs.retries,
            failed_routes: self.failed_routes + rhs.failed_routes,
        }
    }
}

impl std::ops::AddAssign for OpStats {
    fn add_assign(&mut self, rhs: OpStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for OpStats {
    fn sum<I: Iterator<Item = OpStats>>(iter: I) -> OpStats {
        iter.fold(OpStats::zero(), |a, b| a + b)
    }
}

/// Thread-safe whole-network counters (relaxed atomics — counters only).
#[derive(Debug, Default)]
pub struct NetStats {
    hops: AtomicU64,
    messages: AtomicU64,
    bytes: AtomicU64,
    retries: AtomicU64,
    failed_routes: AtomicU64,
    operations: AtomicU64,
}

impl NetStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one operation's record into the totals.
    pub fn record(&self, op: OpStats) {
        self.hops.fetch_add(op.hops, Ordering::Relaxed);
        self.messages.fetch_add(op.messages, Ordering::Relaxed);
        self.bytes.fetch_add(op.bytes, Ordering::Relaxed);
        self.retries.fetch_add(op.retries, Ordering::Relaxed);
        self.failed_routes
            .fetch_add(op.failed_routes, Ordering::Relaxed);
        self.operations.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the totals as a plain [`OpStats`].
    pub fn totals(&self) -> OpStats {
        OpStats {
            hops: self.hops.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failed_routes: self.failed_routes.load(Ordering::Relaxed),
        }
    }

    /// Number of operations recorded.
    pub fn operations(&self) -> u64 {
        self.operations.load(Ordering::Relaxed)
    }

    /// Average hops per recorded operation (0 when nothing recorded).
    pub fn avg_hops(&self) -> f64 {
        let ops = self.operations();
        if ops == 0 {
            0.0
        } else {
            self.totals().hops as f64 / ops as f64
        }
    }
}

/// Wall-clock latency samples with percentile extraction.
///
/// Host-side timing for the benchmark harness: each recorded
/// [`std::time::Duration`] is one query's end-to-end latency. Percentiles
/// use the nearest-rank method on a sorted copy, so p50/p99 are actual
/// observed samples, not interpolations.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples_s: Vec<f64>,
}

impl LatencyStats {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: std::time::Duration) {
        self.samples_s.push(d.as_secs_f64());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples_s.len()
    }

    /// Sum of all samples in seconds.
    pub fn total_s(&self) -> f64 {
        self.samples_s.iter().sum()
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.samples_s.is_empty() {
            0.0
        } else {
            self.total_s() / self.samples_s.len() as f64
        }
    }

    /// Nearest-rank percentile in seconds, `p` in `[0, 100]` (0 when empty).
    pub fn percentile_s(&self, p: f64) -> f64 {
        if self.samples_s.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_s.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Median latency in seconds.
    pub fn p50_s(&self) -> f64 {
        self.percentile_s(50.0)
    }

    /// 99th-percentile latency in seconds.
    pub fn p99_s(&self) -> f64 {
        self.percentile_s(99.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stats_arithmetic() {
        let a = OpStats {
            hops: 2,
            messages: 3,
            bytes: 100,
            ..OpStats::zero()
        };
        let b = OpStats::one_hop(50);
        let c = a + b;
        assert_eq!(
            c,
            OpStats {
                hops: 3,
                messages: 4,
                bytes: 150,
                ..OpStats::zero()
            }
        );
        let sum: OpStats = [a, b, c].into_iter().sum();
        assert_eq!(sum.hops, 6);
    }

    #[test]
    fn add_assign() {
        let mut a = OpStats::zero();
        a += OpStats::one_hop(10);
        a += OpStats::one_hop(20);
        assert_eq!(
            a,
            OpStats {
                hops: 2,
                messages: 2,
                bytes: 30,
                ..OpStats::zero()
            }
        );
    }

    #[test]
    fn net_stats_accumulates() {
        let stats = NetStats::new();
        stats.record(OpStats {
            hops: 4,
            messages: 5,
            bytes: 64,
            ..OpStats::zero()
        });
        stats.record(OpStats {
            hops: 2,
            messages: 2,
            bytes: 32,
            ..OpStats::zero()
        });
        assert_eq!(
            stats.totals(),
            OpStats {
                hops: 6,
                messages: 7,
                bytes: 96,
                ..OpStats::zero()
            }
        );
        assert_eq!(stats.operations(), 2);
        assert_eq!(stats.avg_hops(), 3.0);
    }

    #[test]
    fn avg_hops_empty() {
        assert_eq!(NetStats::new().avg_hops(), 0.0);
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        use std::time::Duration;
        let mut lat = LatencyStats::new();
        // 1..=100 ms inserted out of order.
        for ms in (1..=100u64).rev() {
            lat.record(Duration::from_millis(ms));
        }
        assert_eq!(lat.count(), 100);
        assert!((lat.p50_s() - 0.050).abs() < 1e-12);
        assert!((lat.p99_s() - 0.099).abs() < 1e-12);
        assert!((lat.percentile_s(100.0) - 0.100).abs() < 1e-12);
        assert!((lat.percentile_s(0.0) - 0.001).abs() < 1e-12);
        assert!((lat.mean_s() - 0.0505).abs() < 1e-12);
        assert!((lat.total_s() - 5.050).abs() < 1e-9);
    }

    #[test]
    fn latency_empty_is_zero() {
        let lat = LatencyStats::new();
        assert_eq!(lat.count(), 0);
        assert_eq!(lat.mean_s(), 0.0);
        assert_eq!(lat.p50_s(), 0.0);
        assert_eq!(lat.p99_s(), 0.0);
    }

    #[test]
    fn latency_single_sample() {
        let mut lat = LatencyStats::new();
        lat.record(std::time::Duration::from_millis(7));
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert!((lat.percentile_s(p) - 0.007).abs() < 1e-12);
        }
    }

    #[test]
    fn net_stats_is_thread_safe() {
        let stats = std::sync::Arc::new(NetStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = stats.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record(OpStats::one_hop(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.operations(), 8000);
        assert_eq!(stats.totals().hops, 8000);
    }
}
