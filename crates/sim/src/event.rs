//! Event queue and round-based scheduler.
//!
//! Events are ordered by `(time, sequence)`: equal-time events fire in the
//! order they were scheduled, which makes whole-network simulations
//! reproducible. The round-based driver models the paper's "parallel
//! execution is simulated by emptying the queue": one round = one overlay
//! hop of every in-flight message, so the round count at which the queue
//! drains is the parallel makespan.

use crate::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in discrete ticks (one tick = one overlay hop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The time `delta` ticks later.
    pub fn after(self, delta: u64) -> SimTime {
        SimTime(self.0 + delta)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A scheduled event: deliver `payload` to `target` at `time`.
#[derive(Debug, Clone)]
pub struct Event<P> {
    /// Delivery time.
    pub time: SimTime,
    /// Receiving node.
    pub target: NodeId,
    /// Application payload.
    pub payload: P,
    seq: u64,
}

impl<P> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for Event<P> {}
impl<P> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic priority queue of events.
#[derive(Debug)]
pub struct EventQueue<P> {
    heap: BinaryHeap<Event<P>>,
    next_seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<P> EventQueue<P> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule delivery of `payload` to `target` at absolute `time`.
    pub fn push(&mut self, time: SimTime, target: NodeId, payload: P) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            target,
            payload,
            seq,
        });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event<P>> {
        self.heap.pop()
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The simulation driver: an event queue plus a clock.
///
/// Handlers receive `(&mut Scheduler, Event)` and may schedule follow-up
/// events; [`Scheduler::run`] drives to quiescence.
#[derive(Debug)]
pub struct Scheduler<P> {
    queue: EventQueue<P>,
    now: SimTime,
    delivered: u64,
}

impl<P> Default for Scheduler<P> {
    fn default() -> Self {
        Self {
            queue: EventQueue::new(),
            now: SimTime(0),
            delivered: 0,
        }
    }
}

impl<P> Scheduler<P> {
    /// A scheduler starting at time 0 with an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Schedule `payload` for `target` after `delay` ticks (1 tick = 1 hop).
    pub fn schedule_in(&mut self, delay: u64, target: NodeId, payload: P) {
        self.queue.push(self.now.after(delay), target, payload);
    }

    /// Schedule at an absolute time (must not be in the past).
    pub fn schedule_at(&mut self, time: SimTime, target: NodeId, payload: P) {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        self.queue.push(time, target, payload);
    }

    /// Run until the queue drains or `max_events` deliveries happened.
    ///
    /// Returns the makespan: the time of the last delivered event.
    pub fn run<F: FnMut(&mut Scheduler<P>, Event<P>)>(
        &mut self,
        max_events: u64,
        mut handler: F,
    ) -> SimTime {
        let mut budget = max_events;
        while let Some(ev) = self.queue.pop() {
            self.now = ev.time;
            self.delivered += 1;
            // Temporarily move the event out so the handler can reschedule.
            handler(self, ev);
            budget -= 1;
            if budget == 0 {
                break;
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), NodeId(0), "late");
        q.push(SimTime(1), NodeId(1), "early-a");
        q.push(SimTime(1), NodeId(2), "early-b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().payload, "early-a");
        assert_eq!(q.pop().unwrap().payload, "early-b");
        assert_eq!(q.pop().unwrap().payload, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime(3), NodeId(0), ());
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn scheduler_advances_clock_and_counts() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_in(2, NodeId(0), 1);
        s.schedule_in(5, NodeId(0), 2);
        let mut seen = Vec::new();
        let end = s.run(u64::MAX, |_, ev| seen.push((ev.time, ev.payload)));
        assert_eq!(seen, vec![(SimTime(2), 1), (SimTime(5), 2)]);
        assert_eq!(end, SimTime(5));
        assert_eq!(s.delivered(), 2);
    }

    #[test]
    fn handlers_can_chain_messages() {
        // A "message" hops 4 times: each delivery schedules the next hop one
        // tick later. Makespan must be 4.
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_in(1, NodeId(0), 4);
        let end = s.run(u64::MAX, |s, ev| {
            if ev.payload > 1 {
                s.schedule_in(1, NodeId(0), ev.payload - 1);
            }
        });
        assert_eq!(end, SimTime(4));
        assert_eq!(s.delivered(), 4);
    }

    #[test]
    fn parallel_messages_share_rounds() {
        // Ten independent 3-hop messages started together: makespan 3,
        // deliveries 30 — the "parallel execution" semantics of the paper.
        let mut s: Scheduler<u32> = Scheduler::new();
        for _ in 0..10 {
            s.schedule_in(1, NodeId(0), 3);
        }
        let end = s.run(u64::MAX, |s, ev| {
            if ev.payload > 1 {
                s.schedule_in(1, NodeId(0), ev.payload - 1);
            }
        });
        assert_eq!(end, SimTime(3));
        assert_eq!(s.delivered(), 30);
    }

    #[test]
    fn event_budget_stops_runaway() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_in(1, NodeId(0), ());
        let _ = s.run(100, |s, _| s.schedule_in(1, NodeId(0), ())); // infinite chain
        assert_eq!(s.delivered(), 100);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_in(5, NodeId(0), ());
        s.run(u64::MAX, |s, _| s.schedule_at(SimTime(1), NodeId(0), ()));
    }
}
