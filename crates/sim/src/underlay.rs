//! MANET radio underlay: a unit-disk random geometric graph.
//!
//! The paper's scenario is a confined space — "the office, school,
//! long-distance public transport" — with limited mobility. The overlay
//! (CAN) is logical; a message between overlay neighbours physically
//! traverses one or more radio hops. This module places nodes uniformly in
//! a square arena, connects nodes within radio range (unit-disk model),
//! precomputes all-pairs BFS hop counts, and can translate overlay traffic
//! into physical radio cost.
//!
//! Substitution note (DESIGN.md #2): the paper used no physical-layer model
//! at all — its metric is overlay hops. We expose both: overlay statistics
//! unchanged, plus the optional underlay expansion for the energy analysis.
//!
//! A random-waypoint mobility stepper is included as an extension for
//! "limited mobility" experiments; after moving nodes, call
//! [`Underlay::rebuild`] to refresh connectivity.

use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Parameters of the arena and radio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnderlayConfig {
    /// Number of devices.
    pub nodes: usize,
    /// Side of the square arena, in metres.
    pub arena_side: f64,
    /// Radio range, in metres (unit-disk connectivity).
    pub radio_range: f64,
    /// Placement RNG seed.
    pub seed: u64,
}

impl Default for UnderlayConfig {
    fn default() -> Self {
        // A conference room: 100 devices in 30×30 m with 10 m Bluetooth range.
        Self {
            nodes: 100,
            arena_side: 30.0,
            radio_range: 10.0,
            seed: 0,
        }
    }
}

/// A scheduled network partition: the node set splits into disjoint
/// components for a tick window `[start, end)`, then heals.
///
/// The plan is pure data — the sim layer defines *what* is severed and
/// *when*; enforcement lives with whoever routes messages (the CAN overlay
/// skips cross-component neighbours while a partition is active, exactly
/// like dead nodes but reversible). Nodes not named in any component form
/// an implicit extra component of their own, so plans stay valid as peers
/// join after the plan was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Disjoint node-id components; membership in different components
    /// severs every link between the two sides while active.
    pub components: Vec<Vec<usize>>,
    /// First tick the split is in force.
    pub start: u64,
    /// First tick after healing (exclusive end of the window).
    pub end: u64,
}

impl PartitionPlan {
    /// Split `nodes` ids (`0..nodes`) into two contiguous halves for the
    /// window `[start, end)` — the canonical "room divides" scenario.
    pub fn halves(nodes: usize, start: u64, end: u64) -> Self {
        assert!(start < end, "partition window must be non-empty");
        let mid = nodes / 2;
        Self {
            components: vec![(0..mid).collect(), (mid..nodes).collect()],
            start,
            end,
        }
    }

    /// Whether the split is in force at tick `t`.
    pub fn active_at(&self, t: u64) -> bool {
        (self.start..self.end).contains(&t)
    }

    /// The component index of `node`, or `None` if the plan does not name
    /// it (implicitly its own singleton side).
    pub fn component_of(&self, node: usize) -> Option<usize> {
        self.components.iter().position(|c| c.contains(&node))
    }

    /// Whether `a` and `b` can exchange messages while the split is in
    /// force. Unnamed nodes are severed from everyone but themselves.
    pub fn connected(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        match (self.component_of(a), self.component_of(b)) {
            (Some(ca), Some(cb)) => ca == cb,
            _ => false,
        }
    }

    /// Dense component map for `n` nodes: `map[i]` is the component index
    /// of node `i`, with unnamed nodes assigned fresh singleton indices.
    /// This is the form overlays consume on the routing hot path.
    pub fn component_map(&self, n: usize) -> Vec<u32> {
        let mut map = vec![u32::MAX; n];
        for (ci, comp) in self.components.iter().enumerate() {
            for &node in comp {
                if node < n {
                    map[node] = ci as u32;
                }
            }
        }
        let mut next = self.components.len() as u32;
        for slot in map.iter_mut() {
            if *slot == u32::MAX {
                *slot = next;
                next += 1;
            }
        }
        map
    }
}

/// The physical network: positions, adjacency and all-pairs hop counts.
#[derive(Debug, Clone)]
pub struct Underlay {
    config: UnderlayConfig,
    positions: Vec<(f64, f64)>,
    adjacency: Vec<Vec<usize>>,
    /// `hop_table[a][b]` = radio hops from a to b (`u16::MAX` if unreachable).
    hop_table: Vec<Vec<u16>>,
    /// Random-waypoint state: target and speed per node.
    waypoints: Vec<(f64, f64, f64)>,
}

impl Underlay {
    /// Place `config.nodes` devices uniformly at random and build the graph.
    ///
    /// If the resulting graph is disconnected the radio range is grown by
    /// 10% steps until it connects (a connected arena is the paper's
    /// implicit assumption — every peer joins the overlay).
    pub fn random(mut config: UnderlayConfig) -> Self {
        assert!(config.nodes > 0, "need at least one node");
        assert!(config.arena_side > 0.0 && config.radio_range > 0.0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let positions: Vec<(f64, f64)> = (0..config.nodes)
            .map(|_| {
                (
                    rng.gen::<f64>() * config.arena_side,
                    rng.gen::<f64>() * config.arena_side,
                )
            })
            .collect();
        let waypoints: Vec<(f64, f64, f64)> = (0..config.nodes)
            .map(|_| {
                (
                    rng.gen::<f64>() * config.arena_side,
                    rng.gen::<f64>() * config.arena_side,
                    0.5 + rng.gen::<f64>() * 1.0, // 0.5–1.5 m/s walking speed
                )
            })
            .collect();
        loop {
            let adjacency = build_adjacency(&positions, config.radio_range);
            let hop_table = all_pairs_bfs(&adjacency);
            let connected = hop_table[0].iter().all(|&h| h != u16::MAX);
            if connected {
                return Self {
                    config,
                    positions,
                    adjacency,
                    hop_table,
                    waypoints,
                };
            }
            config.radio_range *= 1.1;
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the underlay has no nodes (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The (possibly grown) configuration in effect.
    pub fn config(&self) -> &UnderlayConfig {
        &self.config
    }

    /// Position of a node.
    pub fn position(&self, n: NodeId) -> (f64, f64) {
        self.positions[n.0]
    }

    /// Direct radio neighbours of a node.
    pub fn neighbours(&self, n: NodeId) -> &[usize] {
        &self.adjacency[n.0]
    }

    /// Physical hops between two devices (0 for self).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u16 {
        self.hop_table[a.0][b.0]
    }

    /// Mean hop count over all ordered pairs of distinct nodes — the
    /// underlay "stretch" every overlay hop pays on average.
    pub fn mean_path_hops(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        for row in &self.hop_table {
            for &h in row {
                total += h as u64;
            }
        }
        total as f64 / (n * (n - 1)) as f64
    }

    /// Advance random-waypoint mobility by `dt` seconds and rebuild
    /// connectivity. Nodes walk toward their waypoint; on arrival a new
    /// waypoint is drawn (deterministically from `seed`).
    pub fn step_mobility(&mut self, dt: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = self.config.arena_side;
        for (i, pos) in self.positions.iter_mut().enumerate() {
            let (wx, wy, speed) = self.waypoints[i];
            let (dx, dy) = (wx - pos.0, wy - pos.1);
            let dist = (dx * dx + dy * dy).sqrt();
            let step = speed * dt;
            if dist <= step {
                *pos = (wx, wy);
                self.waypoints[i] = (
                    rng.gen::<f64>() * side,
                    rng.gen::<f64>() * side,
                    self.waypoints[i].2,
                );
            } else {
                pos.0 += dx / dist * step;
                pos.1 += dy / dist * step;
            }
        }
        self.rebuild();
    }

    /// Recompute adjacency and hop tables after positions changed.
    pub fn rebuild(&mut self) {
        self.adjacency = build_adjacency(&self.positions, self.config.radio_range);
        self.hop_table = all_pairs_bfs(&self.adjacency);
    }

    /// Whether every node can currently reach every other node.
    pub fn is_connected(&self) -> bool {
        self.hop_table
            .iter()
            .all(|row| row.iter().all(|&h| h != u16::MAX))
    }
}

fn build_adjacency(positions: &[(f64, f64)], range: f64) -> Vec<Vec<usize>> {
    let n = positions.len();
    let r2 = range * range;
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for j in i + 1..n {
            let dx = positions[i].0 - positions[j].0;
            let dy = positions[i].1 - positions[j].1;
            if dx * dx + dy * dy <= r2 {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    adj
}

fn all_pairs_bfs(adjacency: &[Vec<usize>]) -> Vec<Vec<u16>> {
    let n = adjacency.len();
    let mut table = vec![vec![u16::MAX; n]; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        let row = &mut table[start];
        row[start] = 0;
        queue.clear();
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let du = row[u];
            for &v in &adjacency[u] {
                if row[v] == u16::MAX {
                    row[v] = du + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_is_connected() {
        let u = Underlay::random(UnderlayConfig {
            nodes: 50,
            seed: 1,
            ..Default::default()
        });
        assert!(u.is_connected());
        assert_eq!(u.len(), 50);
    }

    #[test]
    fn hops_are_a_metric() {
        let u = Underlay::random(UnderlayConfig {
            nodes: 40,
            seed: 2,
            ..Default::default()
        });
        for a in 0..u.len() {
            assert_eq!(u.hops(NodeId(a), NodeId(a)), 0);
            for b in 0..u.len() {
                // Symmetry.
                assert_eq!(u.hops(NodeId(a), NodeId(b)), u.hops(NodeId(b), NodeId(a)));
            }
        }
        // Triangle inequality on a sample.
        for (a, b, c) in [(0, 1, 2), (3, 10, 20), (5, 15, 35)] {
            let ab = u.hops(NodeId(a), NodeId(b)) as u32;
            let bc = u.hops(NodeId(b), NodeId(c)) as u32;
            let ac = u.hops(NodeId(a), NodeId(c)) as u32;
            assert!(ac <= ab + bc);
        }
    }

    #[test]
    fn neighbours_are_within_range() {
        let u = Underlay::random(UnderlayConfig {
            nodes: 30,
            seed: 3,
            ..Default::default()
        });
        let range = u.config().radio_range;
        for i in 0..u.len() {
            let (xi, yi) = u.position(NodeId(i));
            for &j in u.neighbours(NodeId(i)) {
                let (xj, yj) = u.position(NodeId(j));
                let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
                assert!(d <= range + 1e-9);
            }
        }
    }

    #[test]
    fn sparse_arena_grows_range_until_connected() {
        // 5 nodes in a huge arena with tiny initial range: must autogrow.
        let u = Underlay::random(UnderlayConfig {
            nodes: 5,
            arena_side: 1000.0,
            radio_range: 1.0,
            seed: 4,
        });
        assert!(u.is_connected());
        assert!(u.config().radio_range > 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = UnderlayConfig {
            nodes: 25,
            seed: 9,
            ..Default::default()
        };
        let a = Underlay::random(cfg);
        let b = Underlay::random(cfg);
        assert_eq!(a.position(NodeId(7)), b.position(NodeId(7)));
        assert_eq!(a.hops(NodeId(0), NodeId(24)), b.hops(NodeId(0), NodeId(24)));
    }

    #[test]
    fn mean_path_reasonable() {
        let u = Underlay::random(UnderlayConfig {
            nodes: 100,
            seed: 5,
            ..Default::default()
        });
        let m = u.mean_path_hops();
        // 30 m arena with ≥10 m range: diameter ≤ ~6 hops.
        assert!((1.0..6.0).contains(&m), "mean {m}");
    }

    #[test]
    fn mobility_moves_nodes_and_keeps_tables_fresh() {
        let mut u = Underlay::random(UnderlayConfig {
            nodes: 30,
            seed: 6,
            ..Default::default()
        });
        let before = u.position(NodeId(0));
        u.step_mobility(5.0, 42);
        let after = u.position(NodeId(0));
        assert_ne!(before, after);
        // Tables were rebuilt: self-distance still zero everywhere.
        for i in 0..u.len() {
            assert_eq!(u.hops(NodeId(i), NodeId(i)), 0);
        }
    }

    #[test]
    fn partition_plan_halves_and_heals() {
        let p = PartitionPlan::halves(10, 5, 20);
        assert!(!p.active_at(4));
        assert!(p.active_at(5));
        assert!(p.active_at(19));
        assert!(!p.active_at(20));
        assert!(p.connected(0, 4));
        assert!(p.connected(5, 9));
        assert!(!p.connected(4, 5));
        assert!(p.connected(3, 3));
        // A latecomer (id 10) is severed from everyone but itself.
        assert!(!p.connected(0, 10));
        assert!(p.connected(10, 10));
        let map = p.component_map(12);
        assert_eq!(map[0], map[4]);
        assert_eq!(map[5], map[9]);
        assert_ne!(map[0], map[5]);
        assert_ne!(map[10], map[11]);
        assert_ne!(map[10], map[0]);
    }

    #[test]
    fn single_node_degenerate() {
        let u = Underlay::random(UnderlayConfig {
            nodes: 1,
            seed: 0,
            ..Default::default()
        });
        assert!(u.is_connected());
        assert_eq!(u.mean_path_hops(), 0.0);
    }
}
