//! Property-based tests for the BATON overlay invariants.

use hyperm_baton::{BatonConfig, BatonOverlay};
use hyperm_can::ObjectRef;
use hyperm_sim::NodeId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tree is structurally sound for any population size.
    #[test]
    fn invariants_hold(n in 1usize..200, dim in 1usize..6) {
        let overlay = BatonOverlay::bootstrap(BatonConfig::new(dim), n);
        overlay.check_invariants();
    }

    /// Routing reaches the true owner from any start node for any key.
    #[test]
    fn routing_correct(n in 1usize..128, key in 0.0..1.0f64, from in any::<prop::sample::Index>()) {
        let overlay = BatonOverlay::bootstrap(BatonConfig::new(1), n);
        let start = NodeId(from.index(n));
        let (owner, stats) = overlay.route_1d(start, key, 1);
        prop_assert_eq!(owner, overlay.owner_of_1d(key));
        prop_assert!(stats.hops <= n as u64);
    }

    /// Sphere replication + range query are complete: any inserted sphere
    /// intersecting the query ball is found.
    #[test]
    fn range_completeness(
        n in 2usize..64,
        cx in 0.0..1.0f64,
        cy in 0.0..1.0f64,
        r in 0.0..0.4f64,
        qx in 0.0..1.0f64,
        qy in 0.0..1.0f64,
        qr in 0.0..0.4f64,
    ) {
        let mut overlay = BatonOverlay::bootstrap(BatonConfig::new(2), n);
        overlay.insert_sphere(
            NodeId(0),
            vec![cx, cy],
            r,
            ObjectRef { peer: 0, tag: 0, items: 1 },
            true,
        );
        let res = overlay.range_query(NodeId(n / 2), &[qx, qy], qr);
        let d = ((cx - qx).powi(2) + (cy - qy).powi(2)).sqrt();
        let should = d <= r + qr + 1e-12;
        prop_assert_eq!(!res.matches.is_empty(), should, "d = {}, r+qr = {}", d, r + qr);
    }
}
