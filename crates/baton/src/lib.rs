//! BATON — a BAlanced Tree Overlay Network [Jagadish, Ooi, Vu — VLDB 2005]
//! as an alternative substrate for Hyper-M.
//!
//! The paper states that Hyper-M "has been designed independent of the
//! underlying peer-to-peer overlays, and it could be implemented on top of
//! BATON, VBI-tree, CAN or any peer-to-peer overlays … so long as they can
//! support multi-dimensional indexing". This crate delivers that claim:
//!
//! * [`tree`] — the balanced binary tree: every peer is a tree node
//!   (internal *and* leaf nodes hold data, as in BATON), with parent/child
//!   links, in-order **adjacent** links, and left/right **routing tables**
//!   holding same-level nodes at distances `2^i` (BATON's O(log N) fingers);
//! * [`zorder`] — Morton (Z-order) curve mapping between the
//!   `d`-dimensional key space `[0,1)^d` and BATON's one-dimensional key
//!   range. Bit interleaving preserves coordinate-wise domination, so the
//!   Z-interval of a bounding box always contains the Z-codes of every
//!   point inside it — which is what keeps range queries free of false
//!   dismissals after the mapping;
//! * [`ops`] — the same object operations the CAN substrate exposes
//!   (sphere insertion with replication, point lookup, flooding range
//!   query) over the tree, using the shared object/result types from
//!   [`hyperm_can`] so the Hyper-M core can swap substrates freely.
//!
//! Fidelity note: real BATON grows by node joins with rotation-based
//! rebalancing; a simulation over a fixed short-lived population (the
//! Hyper-M scenario) can build the final balanced shape directly, which is
//! what [`tree::BatonOverlay::bootstrap`] does. Join/leave dynamics are out
//! of scope here exactly as they are in the paper's experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ops;
pub mod tree;
pub mod zorder;

pub use tree::{BatonConfig, BatonNode, BatonOverlay};
pub use zorder::ZOrder;
