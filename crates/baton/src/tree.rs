//! The balanced tree structure and its O(log N) routing.
//!
//! Every peer is one tree node (BATON stores data at internal nodes too).
//! The simulation builds the final balanced shape directly as a *complete*
//! binary tree in heap order — the shape BATON's join protocol converges to
//! level by level — and assigns one-dimensional key ranges by **in-order
//! position**, so the in-order adjacent links exactly chain the key space.
//!
//! Links per node, as in the BATON paper:
//! * parent / left child / right child;
//! * `adj_prev` / `adj_next` — the in-order neighbours (key-space chain);
//! * left/right **routing tables**: the same-level nodes at horizontal
//!   distance `2^j`, the fingers that make routing logarithmic.

use crate::zorder::ZOrder;
use hyperm_sim::{NodeId, OpStats};

/// Overlay construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatonConfig {
    /// Dimensionality of the application key space (mapped to 1-d by
    /// Z-order).
    pub dim: usize,
    /// Seed for the simulated join-cost accounting.
    pub seed: u64,
    /// Safety cap on routing steps.
    pub max_route_hops: u64,
}

impl BatonConfig {
    /// Defaults for a `dim`-dimensional key space.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            seed: 0,
            max_route_hops: 4096,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One BATON node.
#[derive(Debug, Clone)]
pub struct BatonNode {
    /// Node id (heap index in the complete tree).
    pub id: NodeId,
    /// Tree level (root = 0).
    pub level: u32,
    /// Position within the level (0-based).
    pub pos: u64,
    /// Parent link (None for the root).
    pub parent: Option<NodeId>,
    /// Left child.
    pub left: Option<NodeId>,
    /// Right child.
    pub right: Option<NodeId>,
    /// In-order predecessor (key-space left neighbour).
    pub adj_prev: Option<NodeId>,
    /// In-order successor (key-space right neighbour).
    pub adj_next: Option<NodeId>,
    /// Same-level fingers at `pos − 2^j`.
    pub left_table: Vec<NodeId>,
    /// Same-level fingers at `pos + 2^j`.
    pub right_table: Vec<NodeId>,
    /// Managed key range `[lo, hi)` of the 1-d (Z-mapped) space.
    pub range: (f64, f64),
    /// Local object store (owned objects and replicas).
    pub store: Vec<hyperm_can::StoredObject>,
}

impl BatonNode {
    /// Whether this node's range contains the 1-d key.
    pub fn contains(&self, key: f64) -> bool {
        key >= self.range.0 && (key < self.range.1 || (self.range.1 >= 1.0 && key <= 1.0))
    }

    /// Distance from a 1-d key to this node's range (0 when inside).
    pub fn range_dist(&self, key: f64) -> f64 {
        if self.contains(key) {
            0.0
        } else if key < self.range.0 {
            self.range.0 - key
        } else {
            key - self.range.1
        }
    }
}

/// A complete BATON overlay.
#[derive(Debug, Clone)]
pub struct BatonOverlay {
    config: BatonConfig,
    nodes: Vec<BatonNode>,
    pub(crate) zorder: ZOrder,
    bootstrap_stats: OpStats,
    pub(crate) next_object_id: u64,
}

impl BatonOverlay {
    /// Build a balanced overlay of `n` nodes.
    pub fn bootstrap(config: BatonConfig, n: usize) -> Self {
        assert!(n > 0, "need at least one node");
        let zorder = ZOrder::new(config.dim);

        // Heap-ordered complete tree; in-order rank determines key ranges.
        let mut inorder: Vec<usize> = Vec::with_capacity(n);
        inorder_walk(0, n, &mut inorder);
        let mut rank_of = vec![0usize; n];
        for (rank, &id) in inorder.iter().enumerate() {
            rank_of[id] = rank;
        }

        let mut nodes: Vec<BatonNode> = (0..n)
            .map(|i| {
                let level = usize::BITS - 1 - (i + 1).leading_zeros();
                let pos = (i + 1) as u64 - (1u64 << level);
                let rank = rank_of[i];
                let lo = rank as f64 / n as f64;
                let hi = (rank + 1) as f64 / n as f64;
                BatonNode {
                    id: NodeId(i),
                    level,
                    pos,
                    parent: if i == 0 {
                        None
                    } else {
                        Some(NodeId((i - 1) / 2))
                    },
                    left: (2 * i + 1 < n).then(|| NodeId(2 * i + 1)),
                    right: (2 * i + 2 < n).then(|| NodeId(2 * i + 2)),
                    adj_prev: (rank > 0).then(|| NodeId(inorder[rank - 1])),
                    adj_next: (rank + 1 < n).then(|| NodeId(inorder[rank + 1])),
                    left_table: Vec::new(),
                    right_table: Vec::new(),
                    // hi of the last rank is exactly 1.0 (closed there).
                    range: (lo, if rank + 1 == n { 1.0 } else { hi }),
                    store: Vec::new(),
                }
            })
            .collect();

        // Routing tables: same-level nodes at horizontal distance 2^j. In a
        // complete tree, the node at (level, pos) has heap index
        // 2^level − 1 + pos.
        for node in nodes.iter_mut() {
            let level = node.level;
            let pos = node.pos;
            let base = (1u64 << level) - 1;
            let mut j = 0u32;
            while 1u64 << j <= pos {
                let other = base + pos - (1u64 << j);
                node.left_table.push(NodeId(other as usize));
                j += 1;
            }
            let mut j = 0u32;
            loop {
                let step = 1u64 << j;
                let other_pos = pos + step;
                let other = base + other_pos;
                if other_pos >= (1u64 << level) || other as usize >= n {
                    break;
                }
                node.right_table.push(NodeId(other as usize));
                j += 1;
            }
        }

        let mut overlay = BatonOverlay {
            config,
            nodes,
            zorder,
            bootstrap_stats: OpStats::zero(),
            next_object_id: 0,
        };
        // Simulated join accounting: each node (after the root) would have
        // routed a join request to its position; measure that on the final
        // topology from a deterministic entry point.
        let mut joins = OpStats::zero();
        for i in 1..n {
            let key = 0.5 * (overlay.nodes[i].range.0 + overlay.nodes[i].range.1);
            let (_, stats) = overlay.route_1d(NodeId(i % (i.max(1))), key, 64);
            joins += stats;
        }
        overlay.bootstrap_stats = joins;
        overlay
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the overlay is empty (never true post-bootstrap).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Application key-space dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &BatonNode {
        &self.nodes[id.0]
    }

    /// Mutably borrow a node (ops module).
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut BatonNode {
        &mut self.nodes[id.0]
    }

    /// Iterate over nodes.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = &BatonNode> {
        self.nodes.iter()
    }

    /// Simulated join cost of the whole population.
    pub fn bootstrap_stats(&self) -> OpStats {
        self.bootstrap_stats
    }

    /// Ground-truth owner of a 1-d key (direct scan; tests only).
    pub fn owner_of_1d(&self, key: f64) -> NodeId {
        self.nodes
            .iter()
            .find(|nd| nd.contains(key))
            .map(|nd| nd.id)
            .expect("ranges tile [0,1]")
    }

    /// Route a message toward the owner of 1-d key `key`.
    ///
    /// Greedy over BATON's link set (parent, children, adjacents, and the
    /// exponential same-level fingers): always forward to the link whose
    /// range is strictly closest to the key. Fingers make this O(log N).
    pub fn route_1d(&self, from: NodeId, key: f64, msg_bytes: u64) -> (NodeId, OpStats) {
        assert!((0.0..=1.0).contains(&key), "key {key} outside [0,1]");
        let mut current = from;
        let mut stats = OpStats::zero();
        for _ in 0..self.config.max_route_hops {
            let node = &self.nodes[current.0];
            if node.contains(key) {
                return (current, stats);
            }
            let cur_dist = node.range_dist(key);
            let mut best: Option<(f64, NodeId)> = None;
            let links = node
                .parent
                .iter()
                .chain(node.left.iter())
                .chain(node.right.iter())
                .chain(node.adj_prev.iter())
                .chain(node.adj_next.iter())
                .chain(node.left_table.iter())
                .chain(node.right_table.iter());
            for &link in links {
                // A link that *contains* the key always wins — this also
                // resolves the boundary case where the key sits exactly on
                // a range edge (distance 0 to two nodes, only one owning).
                let ln = &self.nodes[link.0];
                let d = if ln.contains(key) {
                    -1.0
                } else {
                    ln.range_dist(key)
                };
                let better = match best {
                    None => d < cur_dist,
                    Some((bd, bid)) => {
                        d < bd - 1e-18 || (d <= bd + 1e-18 && link < bid && d < cur_dist)
                    }
                };
                if better {
                    best = Some((d, link));
                }
            }
            let Some((_, next)) = best else {
                // The adjacent link always makes progress, so this cannot
                // happen on a well-formed tree.
                unreachable!("BATON routing stuck at {current} for key {key}");
            };
            stats += OpStats::one_hop(msg_bytes);
            current = next;
        }
        panic!(
            "routing exceeded {} hops — broken tree",
            self.config.max_route_hops
        );
    }

    /// Encode an application-space point to its 1-d key.
    pub fn encode(&self, point: &[f64]) -> f64 {
        self.zorder.encode(point)
    }

    /// Stored objects per node.
    pub fn store_sizes(&self) -> Vec<usize> {
        self.nodes.iter().map(|nd| nd.store.len()).collect()
    }

    /// Summarised item mass per node (replicas multiply-counted).
    pub fn stored_items_per_node(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|nd| nd.store.iter().map(|o| o.payload.items as u64).sum())
            .collect()
    }

    /// Structural invariants (ranges tile, adjacency chains the key space,
    /// tables point to the right positions). Test support.
    pub fn check_invariants(&self) {
        let n = self.nodes.len();
        let total: f64 = self.nodes.iter().map(|nd| nd.range.1 - nd.range.0).sum();
        assert!((total - 1.0).abs() < 1e-9, "ranges do not tile: {total}");
        for nd in &self.nodes {
            if let Some(next) = nd.adj_next {
                assert!(
                    (self.nodes[next.0].range.0 - nd.range.1).abs() < 1e-12,
                    "adjacency gap at {}",
                    nd.id
                );
                assert_eq!(
                    self.nodes[next.0].adj_prev,
                    Some(nd.id),
                    "asymmetric adjacency"
                );
            }
            for (j, &f) in nd.left_table.iter().enumerate() {
                let other = &self.nodes[f.0];
                assert_eq!(other.level, nd.level);
                assert_eq!(other.pos, nd.pos - (1u64 << j));
            }
            for (j, &f) in nd.right_table.iter().enumerate() {
                let other = &self.nodes[f.0];
                assert_eq!(other.level, nd.level);
                assert_eq!(other.pos, nd.pos + (1u64 << j));
            }
        }
        // Exactly one node contains any sample key.
        for i in 0..32 {
            let key = (i as f64 + 0.5) / 32.0;
            let owners = self.nodes.iter().filter(|nd| nd.contains(key)).count();
            assert_eq!(owners, 1, "key {key} owned by {owners} nodes");
        }
        let _ = n;
    }
}

/// In-order walk of the complete binary tree with `n` heap-indexed nodes.
fn inorder_walk(root: usize, n: usize, out: &mut Vec<usize>) {
    if root >= n {
        return;
    }
    inorder_walk(2 * root + 1, n, out);
    out.push(root);
    inorder_walk(2 * root + 2, n, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bootstrap_invariants_many_sizes() {
        for n in [1usize, 2, 3, 7, 8, 31, 32, 33, 100] {
            let overlay = BatonOverlay::bootstrap(BatonConfig::new(2), n);
            overlay.check_invariants();
            assert_eq!(overlay.len(), n);
        }
    }

    #[test]
    fn routing_reaches_owner() {
        let overlay = BatonOverlay::bootstrap(BatonConfig::new(1), 64);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            let key: f64 = rng.gen();
            let from = NodeId(rng.gen_range(0..64));
            let (owner, stats) = overlay.route_1d(from, key, 1);
            assert_eq!(owner, overlay.owner_of_1d(key));
            assert!(stats.hops <= 64);
        }
    }

    #[test]
    fn routing_is_logarithmic() {
        // Average hops should grow like log n, not n: compare 32 vs 512.
        let avg_hops = |n: usize| {
            let overlay = BatonOverlay::bootstrap(BatonConfig::new(1), n);
            let mut rng = StdRng::seed_from_u64(2);
            let trials = 400;
            let total: u64 = (0..trials)
                .map(|_| {
                    let key: f64 = rng.gen();
                    let from = NodeId(rng.gen_range(0..n));
                    overlay.route_1d(from, key, 1).1.hops
                })
                .sum();
            total as f64 / trials as f64
        };
        let small = avg_hops(32);
        let large = avg_hops(512);
        // 16× more nodes: hops must grow far less than 16× (log-ish).
        assert!(large < small * 4.0, "small {small}, large {large}");
        assert!(
            large < 2.0 * (512f64).log2(),
            "large {large} not logarithmic"
        );
    }

    #[test]
    fn single_node_owns_everything() {
        let overlay = BatonOverlay::bootstrap(BatonConfig::new(3), 1);
        let (owner, stats) = overlay.route_1d(NodeId(0), 0.73, 1);
        assert_eq!(owner, NodeId(0));
        assert_eq!(stats.hops, 0);
    }

    #[test]
    fn adjacency_chains_whole_key_space() {
        let overlay = BatonOverlay::bootstrap(BatonConfig::new(2), 25);
        // Walk the chain from the leftmost node; must visit all 25 in
        // increasing range order.
        let mut current = overlay.nodes().find(|nd| nd.adj_prev.is_none()).unwrap().id;
        let mut visited = 1;
        let mut last_hi = overlay.node(current).range.1;
        assert_eq!(overlay.node(current).range.0, 0.0);
        while let Some(next) = overlay.node(current).adj_next {
            current = next;
            visited += 1;
            assert!((overlay.node(current).range.0 - last_hi).abs() < 1e-12);
            last_hi = overlay.node(current).range.1;
        }
        assert_eq!(visited, 25);
        assert!((last_hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_join_costs_are_logarithmic_per_node() {
        let overlay = BatonOverlay::bootstrap(BatonConfig::new(1), 256);
        let per_join = overlay.bootstrap_stats().hops as f64 / 255.0;
        assert!(per_join < 2.5 * (256f64).log2(), "per-join hops {per_join}");
    }
}
