//! Morton (Z-order) curve mapping `[0,1)^d → [0,1)`.
//!
//! BATON indexes a one-dimensional key range; Hyper-M's wavelet subspaces
//! are 1–8 dimensional. The Morton curve linearises them while preserving
//! the property that matters for correctness: **domination monotonicity** —
//! if `a ≤ b` coordinate-wise then `z(a) ≤ z(b)`. Hence for any box
//! `[lo, hi]` and any point `p` inside it, `z(lo) ≤ z(p) ≤ z(hi)`, so a
//! contiguous 1-d range query over `[z(lo), z(hi)]` retrieves a superset of
//! the box's contents (never a miss; extra candidates are filtered by the
//! exact d-dimensional geometry).

/// A Morton mapper for a fixed dimensionality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZOrder {
    dim: usize,
    bits_per_dim: u32,
}

impl ZOrder {
    /// Total Morton bits used (bounded so the code fits an `u64`).
    const TOTAL_BITS: u32 = 60;

    /// A mapper for `dim`-dimensional keys (1 ≤ dim ≤ 16).
    pub fn new(dim: usize) -> Self {
        assert!(
            (1..=16).contains(&dim),
            "dimension {dim} out of range 1..=16"
        );
        Self {
            dim,
            bits_per_dim: Self::TOTAL_BITS / dim as u32,
        }
    }

    /// Dimensionality of the input space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Grid resolution per dimension (`2^bits_per_dim` cells).
    pub fn cells_per_dim(&self) -> u64 {
        1u64 << self.bits_per_dim
    }

    /// Map a point of `[0,1)^d` to a Morton code, normalised into `[0,1)`.
    pub fn encode(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        let cells = self.cells_per_dim();
        let mut code: u64 = 0;
        // Interleave bits: bit b of dimension k lands at position
        // b*dim + k (LSB-first), giving the classic Morton layout.
        for (k, &x) in point.iter().enumerate() {
            let cell = ((x.clamp(0.0, 1.0 - 1e-12) * cells as f64) as u64).min(cells - 1);
            for b in 0..self.bits_per_dim {
                let bit = (cell >> b) & 1;
                code |= bit << (b as usize * self.dim + k);
            }
        }
        let total_bits = self.bits_per_dim as usize * self.dim;
        code as f64 / (1u64 << total_bits) as f64
    }

    /// The Z-interval `[z(lo_corner), z(hi_corner)]` of an axis-aligned box
    /// (clamped to the unit cube). Every point of the box maps inside it.
    pub fn interval_of_box(&self, lo: &[f64], hi: &[f64]) -> (f64, f64) {
        assert_eq!(lo.len(), self.dim, "box dimension mismatch");
        assert_eq!(hi.len(), self.dim, "box dimension mismatch");
        let z_lo = self.encode(lo);
        // The hi corner cell's *upper* edge bounds the interval: add one
        // cell's worth of code to stay conservative at cell granularity.
        let z_hi = self.encode(hi);
        let total_bits = self.bits_per_dim as usize * self.dim;
        let cell_code = self.dim as f64 / (1u64 << total_bits) as f64;
        (
            z_lo,
            (z_hi + cell_code * 2f64.powi(self.dim as i32)).min(1.0),
        )
    }

    /// The Z-interval covering a ball `(centre, radius)`.
    pub fn interval_of_sphere(&self, centre: &[f64], radius: f64) -> (f64, f64) {
        assert!(radius >= 0.0, "negative radius");
        let lo: Vec<f64> = centre.iter().map(|c| (c - radius).max(0.0)).collect();
        let hi: Vec<f64> = centre
            .iter()
            .map(|c| (c + radius).min(1.0 - 1e-12))
            .collect();
        self.interval_of_box(&lo, &hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn one_dimensional_is_identity_up_to_quantisation() {
        let z = ZOrder::new(1);
        for x in [0.0, 0.25, 0.5, 0.93] {
            assert!((z.encode(&[x]) - x).abs() < 1e-9, "x = {x}");
        }
    }

    #[test]
    fn encode_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for dim in 1..=8usize {
            let z = ZOrder::new(dim);
            for _ in 0..100 {
                let p: Vec<f64> = (0..dim).map(|_| rng.gen()).collect();
                let c = z.encode(&p);
                assert!((0.0..1.0).contains(&c), "code {c}");
            }
        }
    }

    #[test]
    fn domination_monotonicity() {
        let mut rng = StdRng::seed_from_u64(2);
        for dim in [2usize, 3, 4, 8] {
            let z = ZOrder::new(dim);
            for _ in 0..200 {
                let a: Vec<f64> = (0..dim).map(|_| rng.gen()).collect();
                let b: Vec<f64> = a
                    .iter()
                    .map(|&x| (x + rng.gen::<f64>() * (1.0 - x)).min(1.0 - 1e-9))
                    .collect();
                assert!(z.encode(&a) <= z.encode(&b) + 1e-15, "domination violated");
            }
        }
    }

    #[test]
    fn points_in_box_map_into_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for dim in [2usize, 4] {
            let z = ZOrder::new(dim);
            for _ in 0..50 {
                let lo: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() * 0.5).collect();
                let hi: Vec<f64> = lo.iter().map(|&l| l + rng.gen::<f64>() * 0.4).collect();
                let (zl, zh) = z.interval_of_box(&lo, &hi);
                for _ in 0..50 {
                    let p: Vec<f64> = lo
                        .iter()
                        .zip(&hi)
                        .map(|(&l, &h)| l + rng.gen::<f64>() * (h - l))
                        .collect();
                    let c = z.encode(&p);
                    assert!(c >= zl - 1e-15 && c <= zh + 1e-15, "point escaped interval");
                }
            }
        }
    }

    #[test]
    fn sphere_interval_covers_sphere_points() {
        let z = ZOrder::new(3);
        let centre = [0.4, 0.6, 0.5];
        let r = 0.1;
        let (zl, zh) = z.interval_of_sphere(&centre, r);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            // Random point in the ball.
            let mut off: Vec<f64> = (0..3).map(|_| rng.gen::<f64>() - 0.5).collect();
            let n: f64 = off.iter().map(|x| x * x).sum::<f64>().sqrt();
            let len = r * rng.gen::<f64>();
            for o in off.iter_mut() {
                *o = *o / n * len;
            }
            let p: Vec<f64> = centre
                .iter()
                .zip(&off)
                .map(|(c, o)| (c + o).clamp(0.0, 0.999999))
                .collect();
            let c = z.encode(&p);
            assert!(c >= zl - 1e-15 && c <= zh + 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dimension_limit_enforced() {
        ZOrder::new(17);
    }
}
