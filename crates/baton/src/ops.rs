//! Object operations over BATON: sphere insertion with replication, point
//! lookup and flooding range queries.
//!
//! Objects keep their full d-dimensional geometry (`centre`, `radius` in
//! the application key space); only *placement* goes through the Z-order
//! mapping. A sphere is replicated into every node whose 1-d range
//! intersects the sphere's Z-interval (a conservative superset of the
//! zones it truly overlaps); range queries walk the same interval via the
//! in-order adjacency chain and filter candidates by the exact
//! d-dimensional sphere test — so, as with the CAN substrate, no true
//! match can be missed.

use crate::tree::BatonOverlay;
use hyperm_can::{InsertOutcome, ObjectRef, RangeOutcome, StoredObject};
use hyperm_sim::{NodeId, OpStats};

fn query_bytes(dim: usize) -> u64 {
    8 * (dim as u64 + 1) + 16
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

impl BatonOverlay {
    /// Insert a d-dimensional sphere object.
    ///
    /// Routes to the owner of the centre's Z-code; with `replicate` on,
    /// replicas spread along the adjacency chain across the sphere's
    /// Z-interval (each step one message).
    pub fn insert_sphere(
        &mut self,
        from: NodeId,
        centre: Vec<f64>,
        radius: f64,
        payload: ObjectRef,
        replicate: bool,
    ) -> InsertOutcome {
        assert_eq!(centre.len(), self.dim(), "centre dimension mismatch");
        assert!(radius >= 0.0, "negative radius {radius}");
        let id = self.next_object_id;
        self.next_object_id += 1;
        let obj = StoredObject {
            id,
            centre,
            radius,
            payload,
        };
        let bytes = obj.wire_bytes();

        let z_centre = self.encode(&obj.centre);
        let (owner, mut stats) = self.route_1d(from, z_centre, bytes);
        let route_hops = stats.hops;

        let mut replicas = 0usize;
        let mut flood_depth = 0u64;
        if replicate && radius > 0.0 {
            let (z_lo, z_hi) = self.zorder.interval_of_sphere(&obj.centre, obj.radius);
            // Walk left from the owner across the interval…
            let mut covered = vec![owner];
            let mut cur = owner;
            let mut left_steps = 0u64;
            while let Some(prev) = self.node(cur).adj_prev {
                if self.node(prev).range.1 <= z_lo {
                    break;
                }
                stats += OpStats::one_hop(bytes);
                left_steps += 1;
                covered.push(prev);
                cur = prev;
            }
            // …and right.
            let mut cur = owner;
            let mut right_steps = 0u64;
            while let Some(next) = self.node(cur).adj_next {
                if self.node(next).range.0 >= z_hi {
                    break;
                }
                stats += OpStats::one_hop(bytes);
                right_steps += 1;
                covered.push(next);
                cur = next;
            }
            // The two chain walks run in parallel; each is sequential.
            flood_depth = left_steps.max(right_steps);
            for n in covered {
                self.node_mut(n).store.push(obj.clone());
                replicas += 1;
            }
        } else {
            self.node_mut(owner).store.push(obj);
            replicas = 1;
        }
        InsertOutcome {
            owner,
            replicas,
            // Tree publishes are reliable: every intended replica lands.
            targets: replicas,
            stats,
            rounds: route_hops + flood_depth,
        }
    }

    /// Insert a zero-sized (point) object.
    pub fn insert_point(
        &mut self,
        from: NodeId,
        point: Vec<f64>,
        payload: ObjectRef,
    ) -> InsertOutcome {
        self.insert_sphere(from, point, 0.0, payload, false)
    }

    /// Remove every stored object (all replicas, all versions) published by
    /// `peer` under `tag`; one invalidation message per removed replica.
    pub fn remove_objects(&mut self, peer: usize, tag: u64) -> (usize, OpStats) {
        let mut removed = 0usize;
        for idx in 0..self.len() {
            let node = self.node_mut(NodeId(idx));
            let before = node.store.len();
            node.store
                .retain(|o| !(o.payload.peer == peer && o.payload.tag == tag));
            removed += before - node.store.len();
        }
        let stats = OpStats {
            hops: removed as u64,
            messages: removed as u64,
            bytes: removed as u64 * 24,
            ..OpStats::zero()
        };
        (removed, stats)
    }

    /// Route to the owner of `point`'s Z-code and return the stored spheres
    /// containing the point (exact d-dimensional test).
    pub fn point_lookup(&self, from: NodeId, point: &[f64]) -> (Vec<StoredObject>, OpStats) {
        assert_eq!(point.len(), self.dim(), "point dimension mismatch");
        let z = self.encode(point);
        let (owner, mut stats) = self.route_1d(from, z, query_bytes(self.dim()));
        let matches: Vec<StoredObject> = self
            .node(owner)
            .store
            .iter()
            .filter(|o| euclid(&o.centre, point) <= o.radius + 1e-12)
            .cloned()
            .collect();
        let resp_bytes: u64 = matches
            .iter()
            .map(StoredObject::wire_bytes)
            .sum::<u64>()
            .max(16);
        stats += OpStats::one_hop(resp_bytes);
        (matches, stats)
    }

    /// Flooding range query over the query ball's Z-interval; candidates
    /// filtered by the exact sphere-intersection test, deduplicated by id.
    pub fn range_query(&self, from: NodeId, centre: &[f64], radius: f64) -> RangeOutcome {
        assert_eq!(centre.len(), self.dim(), "centre dimension mismatch");
        assert!(radius >= 0.0, "negative radius {radius}");
        let qb = query_bytes(self.dim());
        let z_centre = self.encode(centre);
        let (owner, mut stats) = self.route_1d(from, z_centre, qb);
        let (z_lo, z_hi) = self.zorder.interval_of_sphere(centre, radius);

        // Collect the contiguous run of nodes covering the interval.
        let mut visited = vec![owner];
        let mut cur = owner;
        while let Some(prev) = self.node(cur).adj_prev {
            if self.node(prev).range.1 <= z_lo {
                break;
            }
            stats += OpStats::one_hop(qb);
            visited.push(prev);
            cur = prev;
        }
        let mut cur = owner;
        while let Some(next) = self.node(cur).adj_next {
            if self.node(next).range.0 >= z_hi {
                break;
            }
            stats += OpStats::one_hop(qb);
            visited.push(next);
            cur = next;
        }

        let mut seen = std::collections::HashSet::new();
        let mut matches = Vec::new();
        let mut resp_bytes = 0u64;
        for &n in &visited {
            let mut local = 0u64;
            for obj in &self.node(n).store {
                if euclid(&obj.centre, centre) <= obj.radius + radius + 1e-12 && seen.insert(obj.id)
                {
                    local += obj.wire_bytes();
                    matches.push(obj.clone());
                }
            }
            resp_bytes += local.max(16);
        }
        let nv = visited.len();
        stats += OpStats {
            hops: nv as u64,
            messages: nv as u64,
            bytes: resp_bytes,
            ..OpStats::zero()
        };
        RangeOutcome {
            matches,
            nodes_visited: nv,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BatonConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn payload(peer: usize) -> ObjectRef {
        ObjectRef {
            peer,
            tag: 0,
            items: 1,
        }
    }

    #[test]
    fn point_insert_and_lookup() {
        let mut overlay = BatonOverlay::bootstrap(BatonConfig::new(2), 16);
        overlay.insert_sphere(NodeId(0), vec![0.3, 0.3], 0.1, payload(1), true);
        let (hits, _) = overlay.point_lookup(NodeId(5), &[0.32, 0.3]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].payload.peer, 1);
        let (miss, _) = overlay.point_lookup(NodeId(5), &[0.8, 0.8]);
        assert!(miss.is_empty());
    }

    #[test]
    fn replication_covers_z_interval() {
        let mut overlay = BatonOverlay::bootstrap(BatonConfig::new(2), 32);
        let out = overlay.insert_sphere(NodeId(0), vec![0.5, 0.5], 0.2, payload(1), true);
        assert!(out.replicas >= 1);
        // Every node whose range intersects the sphere's z-interval holds a
        // replica.
        let (z_lo, z_hi) = overlay.zorder.interval_of_sphere(&[0.5, 0.5], 0.2);
        for nd in overlay.nodes() {
            let intersects = nd.range.1 > z_lo && nd.range.0 < z_hi;
            let has = nd.store.iter().any(|o| o.id == 0);
            assert_eq!(intersects, has, "node {} replica mismatch", nd.id);
        }
    }

    #[test]
    fn range_query_complete_vs_linear_scan() {
        let mut overlay = BatonOverlay::bootstrap(BatonConfig::new(2), 24);
        let mut rng = StdRng::seed_from_u64(3);
        let mut truth: Vec<(Vec<f64>, f64)> = Vec::new();
        for i in 0..150 {
            let centre = vec![rng.gen::<f64>(), rng.gen::<f64>()];
            let r = rng.gen::<f64>() * 0.08;
            overlay.insert_sphere(NodeId(0), centre.clone(), r, payload(i), true);
            truth.push((centre, r));
        }
        for _ in 0..40 {
            let q = [rng.gen::<f64>(), rng.gen::<f64>()];
            let qr = rng.gen::<f64>() * 0.15;
            let res = overlay.range_query(NodeId(1), &q, qr);
            let expected = truth
                .iter()
                .filter(|(c, r)| euclid(c, &q) <= r + qr + 1e-12)
                .count();
            assert_eq!(res.matches.len(), expected, "q = {q:?}, qr = {qr}");
        }
    }

    #[test]
    fn no_replication_mode_stores_once() {
        let mut overlay = BatonOverlay::bootstrap(BatonConfig::new(2), 16);
        let out = overlay.insert_sphere(NodeId(0), vec![0.5, 0.5], 0.3, payload(1), false);
        assert_eq!(out.replicas, 1);
        assert_eq!(overlay.store_sizes().iter().sum::<usize>(), 1);
    }

    #[test]
    fn one_dimensional_subspace_works() {
        // Hyper-M's A and D0 overlays are 1-d: the Z-map degenerates to the
        // identity and replication walks the plain interval.
        let mut overlay = BatonOverlay::bootstrap(BatonConfig::new(1), 20);
        overlay.insert_sphere(NodeId(0), vec![0.45], 0.1, payload(2), true);
        let res = overlay.range_query(NodeId(7), &[0.5], 0.02);
        assert_eq!(res.matches.len(), 1);
        let res = overlay.range_query(NodeId(7), &[0.9], 0.02);
        assert!(res.matches.is_empty());
    }

    #[test]
    fn costs_are_recorded() {
        let mut overlay = BatonOverlay::bootstrap(BatonConfig::new(2), 64);
        let out = overlay.insert_sphere(NodeId(9), vec![0.8, 0.2], 0.05, payload(1), true);
        assert_eq!(out.stats.hops, out.stats.messages);
        assert!(out.stats.bytes >= out.stats.messages * 16);
        let res = overlay.range_query(NodeId(3), &[0.8, 0.2], 0.1);
        assert!(res.stats.messages > 0);
        assert!(res.nodes_visited >= 1);
    }
}
