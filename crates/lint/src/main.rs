//! The `hyperm-lint` binary: lint the workspace, print diagnostics,
//! write `LINT_report.json`, exit non-zero on violations.
//!
//! Usage: `cargo run -p hyperm-lint --release [-- --root <dir>]`
//! (default root: the nearest ancestor of the current directory that
//! holds a `Cargo.toml` with a `[workspace]` table).
//!
//! * `--rule <name>` — restrict the run's output (and exit status) to
//!   one rule, so CI or a developer can bisect a single pass;
//! * `--check-baseline <file>` — CI gate mode: instead of writing a
//!   report, compare the run against the committed baseline. Fails
//!   (exit 3) if any violation survives or if the suppression set
//!   differs from the baseline in any way — growing the suppression
//!   list requires committing the matching `LINT_report.json` diff.

#![forbid(unsafe_code)]

use hyperm_telemetry::json::JsonValue;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut rule: Option<String> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_path = args.next().map(PathBuf::from),
            "--rule" => rule = args.next(),
            "--check-baseline" => baseline = args.next().map(PathBuf::from),
            other => {
                eprintln!(
                    "unknown argument {other:?} (expected --root <dir> / --json <file> / \
                     --rule <name> / --check-baseline <file>)"
                );
                return ExitCode::from(2);
            }
        }
    }
    if let Some(r) = &rule {
        if !hyperm_lint::RULES.contains(&r.as_str()) {
            eprintln!(
                "unknown rule {r:?}; known rules: {}",
                hyperm_lint::RULES.join(", ")
            );
            return ExitCode::from(2);
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let mut report = hyperm_lint::run_workspace(&root);
    if let Some(r) = &rule {
        report.violations.retain(|v| v.rule == r.as_str());
        report.suppressed.retain(|s| s.violation.rule == r.as_str());
    }

    for v in &report.violations {
        println!("{}", v.render());
    }

    if let Some(baseline) = baseline {
        return check_baseline(&report, &baseline);
    }

    let json = report.to_json(hyperm_lint::RULES);
    let json_path = json_path.unwrap_or_else(|| root.join("LINT_report.json"));
    if let Err(e) = std::fs::write(&json_path, json) {
        eprintln!("cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    println!(
        "hyperm-lint: {} files, {} violation(s), {} justified suppression(s) — report: {}",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len(),
        json_path.display(),
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Gate mode: the run must be violation-free and its suppression set
/// must match the committed baseline exactly (as a multiset of
/// (file, line, rule, reason)). Timings and rule lists are ignored —
/// the comparison is semantic, not byte-for-byte.
fn check_baseline(report: &hyperm_lint::report::Report, baseline: &PathBuf) -> ExitCode {
    if !report.violations.is_empty() {
        eprintln!(
            "baseline check FAILED: {} violation(s) (baseline requires 0)",
            report.violations.len()
        );
        return ExitCode::from(3);
    }
    let text = match std::fs::read_to_string(baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {}: {e}", baseline.display());
            return ExitCode::from(2);
        }
    };
    let parsed = match JsonValue::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("baseline {} is not valid JSON: {e:?}", baseline.display());
            return ExitCode::from(2);
        }
    };
    let mut want: BTreeMap<(String, u64, String, String), i64> = BTreeMap::new();
    for s in parsed
        .get("suppressed")
        .and_then(|v| v.as_arr())
        .unwrap_or(&[])
    {
        let key = (
            s.get("file")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            s.get("line").and_then(|v| v.as_u64()).unwrap_or(0),
            s.get("rule")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            s.get("reason")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
        );
        *want.entry(key).or_insert(0) += 1;
    }
    let mut diff = want;
    for s in &report.suppressed {
        let key = (
            s.violation.file.clone(),
            s.violation.line as u64,
            s.violation.rule.to_string(),
            s.reason.clone(),
        );
        *diff.entry(key).or_insert(0) -= 1;
    }
    let mut drifted = false;
    for ((file, line, rule, _), n) in diff.iter().filter(|(_, &n)| n != 0) {
        drifted = true;
        let what = if *n < 0 {
            "NEW suppression (not in baseline)"
        } else {
            "baseline suppression gone"
        };
        eprintln!("baseline check: {what}: {file}:{line}: {rule}");
    }
    if drifted {
        eprintln!(
            "baseline check FAILED: suppression set differs from {}; regenerate the \
             report (`cargo run -p hyperm-lint --release`) and commit the diff",
            baseline.display()
        );
        return ExitCode::from(3);
    }
    println!(
        "baseline check OK: 0 violations, {} suppression(s) match {}",
        report.suppressed.len(),
        baseline.display()
    );
    ExitCode::SUCCESS
}

/// Nearest ancestor (including cwd) with a `[workspace]` Cargo.toml.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
