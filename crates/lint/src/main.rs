//! The `hyperm-lint` binary: lint the workspace, print diagnostics,
//! write `LINT_report.json`, exit non-zero on violations.
//!
//! Usage: `cargo run -p hyperm-lint --release [-- --root <dir>]`
//! (default root: the nearest ancestor of the current directory that
//! holds a `Cargo.toml` with a `[workspace]` table).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_path = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument {other:?} (expected --root <dir> / --json <file>)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let report = hyperm_lint::run_workspace(&root);

    for v in &report.violations {
        println!("{}", v.render());
    }
    let json = report.to_json(hyperm_lint::RULES);
    let json_path = json_path.unwrap_or_else(|| root.join("LINT_report.json"));
    if let Err(e) = std::fs::write(&json_path, json) {
        eprintln!("cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    println!(
        "hyperm-lint: {} files, {} violation(s), {} justified suppression(s) — report: {}",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len(),
        json_path.display(),
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Nearest ancestor (including cwd) with a `[workspace]` Cargo.toml.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
