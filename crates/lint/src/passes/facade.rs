//! Facade pass: every public type a core crate exports at its root must
//! either be re-exported by name from the `hyperm` umbrella crate or be
//! explicitly excluded (with a reason) in `crates/lint/facade.allow`.
//! This keeps the user-facing API surface a deliberate decision instead
//! of an accident of crate layout.

use crate::lexer::{lex, Tok, Token};
use crate::report::Violation;
use std::path::Path;

/// Crates whose root API the facade must account for.
pub const FACADE_CRATES: &[&str] = &[
    "core",
    "can",
    "repair",
    "cluster",
    "wavelet",
    "geometry",
    "sim",
    "telemetry",
    "transport",
    "datagen",
    "load",
];

/// Run the pass. `root` is the workspace root.
pub fn run(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();

    let facade_src = match std::fs::read_to_string(root.join("src/lib.rs")) {
        Ok(s) => s,
        Err(e) => {
            return vec![Violation {
                file: "src/lib.rs".to_string(),
                line: 1,
                rule: "facade-export",
                message: format!("cannot read facade crate: {e}"),
            }]
        }
    };
    let flattened = flattened_names(&lex(&facade_src).tokens);

    let manifest_path = root.join("crates/lint/facade.allow");
    let (allowed, mut manifest_problems) = parse_manifest(&manifest_path);
    out.append(&mut manifest_problems);

    for krate in FACADE_CRATES {
        let rel = format!("crates/{krate}/src/lib.rs");
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        for (name, line) in root_public_types(&lex(&src).tokens) {
            let qualified = format!("{krate}::{name}");
            if flattened.contains(&name) || allowed.contains(&qualified) {
                continue;
            }
            out.push(Violation {
                file: rel.clone(),
                line,
                rule: "facade-export",
                message: format!(
                    "public type `{qualified}` is not re-exported from the `hyperm` facade; \
                     add it to src/lib.rs or exclude it in crates/lint/facade.allow"
                ),
            });
        }
    }
    out.sort();
    out
}

/// Type names flattened by the facade: `pub use hyperm_x::{A, B as C};`
/// at root depth (module aliases `pub use hyperm_x as x;` don't count).
fn flattened_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (_, item) in root_items(toks, "use") {
        // Skip `… as alias;` module re-exports: a trailing `as` outside
        // a brace group.
        collect_use_names(item, &mut names);
    }
    names.retain(|n| is_type_name(n));
    names.sort();
    names.dedup();
    names
}

/// Root-level public type names of a crate: declarations and by-name
/// re-exports, with their lines.
fn root_public_types(toks: &[Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (line, item) in root_items(toks, "struct")
        .into_iter()
        .chain(root_items(toks, "enum"))
        .chain(root_items(toks, "trait"))
        .chain(root_items(toks, "type"))
    {
        if let Some(Tok::Ident(name)) = item.first().map(|t| &t.tok) {
            if is_type_name(name) {
                out.push((name.clone(), line));
            }
        }
    }
    for (line, item) in root_items(toks, "use") {
        let mut names = Vec::new();
        collect_use_names(item, &mut names);
        for n in names {
            if is_type_name(&n) {
                out.push((n, line));
            }
        }
    }
    out.sort();
    out.dedup_by(|a, b| a.0 == b.0);
    out
}

/// Slices of tokens following root-level (brace depth 0) `pub <kw>`,
/// up to the terminating `;` or `{`. Returns (line of kw, item tokens).
fn root_items<'a>(toks: &'a [Token], kw: &str) -> Vec<(u32, &'a [Token])> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut ix = 0usize;
    while ix < toks.len() {
        match &toks[ix].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => depth -= 1,
            Tok::Ident(id) if id == "pub" && depth == 0 => {
                // `pub` / `pub(crate)` — a visibility-scoped export is
                // not public API, skip it.
                let mut jx = ix + 1;
                if matches!(&toks.get(jx).map(|t| &t.tok), Some(Tok::Punct('('))) {
                    ix += 1;
                    continue;
                }
                if toks.get(jx).map(|t| &t.tok) == Some(&Tok::Ident(kw.to_string())) {
                    jx += 1;
                    let start = jx;
                    let mut d = 0i32;
                    while jx < toks.len() {
                        match &toks[jx].tok {
                            Tok::Punct('{') if kw != "use" => break,
                            Tok::Punct('{') => d += 1,
                            Tok::Punct('}') => d -= 1,
                            Tok::Punct(';') if d == 0 => break,
                            Tok::Punct('<') if kw != "use" => break, // generics: name ends
                            _ => {}
                        }
                        jx += 1;
                    }
                    out.push((toks[ix].line, &toks[start..jx.min(toks.len())]));
                    // `use` groups contain braces; account for any we
                    // skipped so root depth stays correct.
                    ix = jx;
                    continue;
                }
            }
            _ => {}
        }
        ix += 1;
    }
    out
}

/// Names exported by one `use` item body (path with optional group and
/// `as` aliases). `vendor::x::{A, B as C}` yields A, C.
fn collect_use_names(item: &[Token], out: &mut Vec<String>) {
    // Split on top-level-in-group commas; per element, the exported name
    // is the ident after a trailing `as`, otherwise the last ident.
    let mut element: Vec<&str> = Vec::new();
    let mut commit = |element: &mut Vec<&str>| {
        if element.is_empty() {
            return;
        }
        let name = if let Some(pos) = element.iter().rposition(|w| *w == "as") {
            element.get(pos + 1).copied()
        } else {
            element.last().copied()
        };
        if let Some(n) = name {
            if n != "self" && n != "*" {
                out.push(n.to_string());
            }
        }
        element.clear();
    };
    for t in item {
        match &t.tok {
            Tok::Ident(id) => element.push(id.as_str()),
            Tok::Punct(',') => commit(&mut element),
            _ => {}
        }
    }
    commit(&mut element);
}

/// CamelCase type names only: starts uppercase and has a lowercase char
/// (filters out SCREAMING consts and lowercase fns/mods).
fn is_type_name(n: &str) -> bool {
    n.starts_with(|c: char| c.is_ascii_uppercase()) && n.contains(|c: char| c.is_ascii_lowercase())
}

/// Parse `facade.allow`: lines `crate::Type — reason`; `#` comments.
fn parse_manifest(path: &Path) -> (Vec<String>, Vec<Violation>) {
    let mut allowed = Vec::new();
    let mut problems = Vec::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return (allowed, problems);
    };
    for (ix, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (entry, reason) = match line.split_once('—').or_else(|| line.split_once(" - ")) {
            Some((e, r)) => (e.trim(), r.trim()),
            None => (line, ""),
        };
        if reason.is_empty() {
            problems.push(Violation {
                file: "crates/lint/facade.allow".to_string(),
                line: (ix + 1) as u32,
                rule: "lint-directive",
                message: format!("manifest entry `{entry}` needs a `— <reason>`"),
            });
            continue;
        }
        allowed.push(entry.to_string());
    }
    (allowed, problems)
}
