//! The pass pipeline: each pass scans one file's token stream and
//! reports raw violations (suppressions are applied by the driver).

pub mod concurrency;
pub mod determinism;
pub mod facade;
pub mod panics;
pub mod protocol;
pub mod taxonomy;
pub mod wiretaint;

use crate::lexer::{Tok, Token};
use crate::report::Violation;

/// Everything a per-file pass can see.
pub struct FileCtx<'a> {
    /// Workspace-relative path (diagnostics key).
    pub path: &'a str,
    /// Crate the file belongs to: the directory name under `crates/`
    /// (`core`, `can`, …), or `hyperm` for the root crate's `src/`.
    pub crate_name: &'a str,
    /// Token stream.
    pub tokens: &'a [Token],
    /// Per-token `#[cfg(test)] mod` mask (same length as `tokens`).
    pub in_test: &'a [bool],
}

impl<'a> FileCtx<'a> {
    /// The identifier at `ix`, if any.
    pub fn ident(&self, ix: usize) -> Option<&'a str> {
        match self.tokens.get(ix).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether token `ix` is punctuation `c`.
    pub fn punct(&self, ix: usize, c: char) -> bool {
        matches!(self.tokens.get(ix).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    /// Whether tokens at `ix..ix+2` are `::`.
    pub fn path_sep(&self, ix: usize) -> bool {
        self.punct(ix, ':') && self.punct(ix + 1, ':')
    }

    /// Line of token `ix` (0 if out of range — callers always pass valid
    /// indices, this keeps the helpers total).
    pub fn line(&self, ix: usize) -> u32 {
        self.tokens.get(ix).map(|t| t.line).unwrap_or(0)
    }

    /// Build a violation at token `ix`.
    pub fn violation(&self, ix: usize, rule: &'static str, message: String) -> Violation {
        Violation {
            file: self.path.to_string(),
            line: self.line(ix),
            rule,
            message,
        }
    }
}

/// Split the argument list of a call whose opening `(` is at `open`
/// into top-level argument token ranges. Returns `None` when the call is
/// unterminated. Range bounds are token indices `[from, to)`.
pub fn call_args(tokens: &[Token], open: usize) -> Option<Vec<(usize, usize)>> {
    debug_assert!(matches!(tokens[open].tok, Tok::Punct('(')));
    let mut depth = 0i32;
    let mut args = Vec::new();
    let mut arg_start = open + 1;
    let mut ix = open;
    while ix < tokens.len() {
        match &tokens[ix].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    if ix > arg_start {
                        args.push((arg_start, ix));
                    }
                    return Some(args);
                }
            }
            Tok::Punct(',') if depth == 1 => {
                args.push((arg_start, ix));
                arg_start = ix + 1;
            }
            _ => {}
        }
        ix += 1;
    }
    None
}
