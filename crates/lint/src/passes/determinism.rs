//! Determinism pass: in result-affecting crates, flag the three classic
//! ways a refactor silently breaks bit-identical replay.
//!
//! * `det-unordered-iter` — iterating a `HashMap`/`HashSet`. Bindings are
//!   tracked intraprocedurally (let-bindings and fn params whose type or
//!   initialiser names an unordered container); iteration is any
//!   `for … in` over such a binding or a call of an order-exposing method
//!   (`iter`, `keys`, `values`, `drain`, …) on one.
//! * `det-wall-clock` — `SystemTime::now` / `Instant::now`: host time
//!   must never feed simulated results (sim-clock only).
//! * `det-unseeded-rng` — RNG constructed from ambient entropy
//!   (`thread_rng`, `from_entropy`, `from_os_rng`, `OsRng`): all
//!   randomness must be seeded so runs replay.

use super::FileCtx;
use crate::lexer::Tok;
use crate::report::Violation;

/// Crates whose code paths feed query results, published summaries or
/// serialised snapshots — the bit-identical-replay surface.
pub const RESULT_CRATES: &[&str] = &[
    "core", "can", "repair", "cluster", "wavelet", "geometry", "vbi", "baton",
];

const UNORDERED: &[&str] = &["HashMap", "HashSet"];
const ORDER_EXPOSING: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];
const UNSEEDED: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "OsRng"];

/// Run the pass over one file.
pub fn run(ctx: &FileCtx<'_>) -> Vec<Violation> {
    if !RESULT_CRATES.contains(&ctx.crate_name) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let unordered_bindings = collect_unordered_bindings(ctx);

    let toks = ctx.tokens;
    let mut ix = 0usize;
    while ix < toks.len() {
        if ctx.in_test[ix] {
            ix += 1;
            continue;
        }
        match &toks[ix].tok {
            // SystemTime::now / Instant::now
            Tok::Ident(id)
                if (id == "SystemTime" || id == "Instant")
                    && ctx.path_sep(ix + 1)
                    && ctx.ident(ix + 3) == Some("now") =>
            {
                out.push(ctx.violation(
                    ix,
                    "det-wall-clock",
                    format!(
                        "`{id}::now` reads host wall-clock time in a result-affecting crate; \
                         use the sim clock (Recorder::set_time) or justify with a suppression"
                    ),
                ));
                ix += 4;
                continue;
            }
            Tok::Ident(id) if UNSEEDED.contains(&id.as_str()) => {
                out.push(ctx.violation(
                    ix,
                    "det-unseeded-rng",
                    format!(
                        "`{id}` constructs ambient-entropy randomness; seed explicitly \
                         (StdRng::seed_from_u64) so runs replay bit-identically"
                    ),
                ));
            }
            // for <pat> in <expr> { — flag when <expr> mentions an
            // unordered binding.
            Tok::Ident(id) if id == "for" => {
                if let Some((in_ix, body_ix)) = for_clause(ctx, ix) {
                    for (jx, t) in toks.iter().enumerate().take(body_ix).skip(in_ix + 1) {
                        if ctx.in_test[jx] {
                            continue;
                        }
                        if let Tok::Ident(name) = &t.tok {
                            if unordered_bindings.contains(&name.as_str())
                                && !is_field_access(ctx, jx)
                            {
                                out.push(ctx.violation(
                                    jx,
                                    "det-unordered-iter",
                                    format!(
                                        "iteration over unordered container `{name}`; use BTreeMap/\
                                         BTreeSet or sort the keys first (hash order is not \
                                         deterministic across runs)"
                                    ),
                                ));
                                break;
                            }
                        }
                    }
                }
            }
            // <name>.iter() / .keys() / … on an unordered binding.
            Tok::Ident(name)
                if unordered_bindings.contains(&name.as_str())
                    && !is_field_access(ctx, ix)
                    && ctx.punct(ix + 1, '.') =>
            {
                if let Some(m) = ctx.ident(ix + 2) {
                    if ORDER_EXPOSING.contains(&m) && ctx.punct(ix + 3, '(') {
                        out.push(ctx.violation(
                            ix,
                            "det-unordered-iter",
                            format!(
                                "`{name}.{m}()` exposes hash iteration order; use BTreeMap/BTreeSet \
                                 or collect-and-sort before iterating"
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
        ix += 1;
    }
    dedup_by_line(out)
}

/// `name` is used as `something.name` (a field access, not the binding).
fn is_field_access(ctx: &FileCtx<'_>, ix: usize) -> bool {
    ix > 0 && ctx.punct(ix - 1, '.')
}

/// For a `for` keyword at `ix`, return (index of `in`, index of the loop
/// body `{`). `None` when the clause cannot be delimited.
fn for_clause(ctx: &FileCtx<'_>, ix: usize) -> Option<(usize, usize)> {
    let toks = ctx.tokens;
    let mut jx = ix + 1;
    let mut depth = 0i32;
    let mut in_ix = None;
    while jx < toks.len() {
        match &toks[jx].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Ident(id) if id == "in" && depth == 0 && in_ix.is_none() => in_ix = Some(jx),
            Tok::Punct('{') if depth == 0 => {
                return in_ix.map(|i| (i, jx));
            }
            Tok::Punct(';') if depth == 0 => return None, // not a for-loop (e.g. `for` in macro)
            _ => {}
        }
        jx += 1;
    }
    None
}

/// Names bound (by `let` or fn param) to a HashMap/HashSet in this file.
fn collect_unordered_bindings<'a>(ctx: &FileCtx<'a>) -> Vec<&'a str> {
    let toks = ctx.tokens;
    let mut names: Vec<&str> = Vec::new();
    let mut ix = 0usize;
    while ix < toks.len() {
        match &toks[ix].tok {
            Tok::Ident(id) if id == "let" => {
                // let [mut] NAME [: ty] = init ;
                let mut jx = ix + 1;
                if ctx.ident(jx) == Some("mut") {
                    jx += 1;
                }
                let Some(name) = ctx.ident(jx) else {
                    ix += 1;
                    continue;
                };
                // Scan the statement (to `;` at balanced depth) for an
                // unordered container name.
                let mut depth = 0i32;
                let mut kx = jx + 1;
                let mut found = false;
                while kx < toks.len() {
                    match &toks[kx].tok {
                        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                        Tok::Punct(';') if depth <= 0 => break,
                        Tok::Ident(t) if UNORDERED.contains(&t.as_str()) => found = true,
                        _ => {}
                    }
                    kx += 1;
                }
                if found {
                    names.push(name);
                }
                ix = jx + 1;
                continue;
            }
            Tok::Ident(id) if id == "fn" => {
                // fn name ( params ) — mark params typed HashMap/HashSet.
                let mut jx = ix + 1;
                while jx < toks.len() && !ctx.punct(jx, '(') {
                    // Stop at `{`/`;` — a `fn` pointer type, not an item.
                    if ctx.punct(jx, '{') || ctx.punct(jx, ';') {
                        break;
                    }
                    jx += 1;
                }
                if jx < toks.len() && ctx.punct(jx, '(') {
                    if let Some(args) = super::call_args(toks, jx) {
                        for (from, to) in args {
                            // Param shape: [mut] name : <type tokens>
                            let mut px = from;
                            if ctx.ident(px) == Some("mut") {
                                px += 1;
                            }
                            let Some(name) = ctx.ident(px) else { continue };
                            if !ctx.punct(px + 1, ':') {
                                continue;
                            }
                            let typed_unordered = (px + 2..to).any(|t| {
                                matches!(&toks[t].tok, Tok::Ident(i) if UNORDERED.contains(&i.as_str()))
                            });
                            if typed_unordered {
                                names.push(name);
                            }
                        }
                    }
                }
                ix = jx + 1;
                continue;
            }
            _ => {}
        }
        ix += 1;
    }
    names.sort_unstable();
    names.dedup();
    names
}

fn dedup_by_line(mut v: Vec<Violation>) -> Vec<Violation> {
    v.sort();
    v.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    v
}
