//! Protocol-consistency pass: the wire protocol's three sources of
//! truth must agree, and the linter links them in at build time (the
//! same trick as `tel-taxonomy`) so they cannot drift:
//!
//! * `hyperm_can::codec::kind::ALL` — the kind table (byte ↔ variant);
//! * `Message::reply_kind_of` — the request→reply pairing;
//! * `hyperm_transport::runtime::RESENDABLE_KINDS` — the client's
//!   timeout-retry set, which must stay inside
//!   `kind::IDEMPOTENT` (the protocol's declaration of which requests
//!   tolerate duplicate delivery).
//!
//! Rules:
//! * `proto-exhaustive` — every kind in `ALL` has a `Message::Variant`
//!   dispatch arm in `runtime.rs`; a kind with no handler is a request
//!   the node silently drops.
//! * `proto-pairing` — kind bytes don't collide, the `kind` consts in
//!   `codec.rs` source agree with `ALL` (names and values), every
//!   request's reply target exists and is not itself a request, and
//!   every kind is classified (request, some request's reply, or the
//!   `HELLO` handshake).
//! * `proto-retry-set` — `RESENDABLE_KINDS` is non-empty, duplicate-free
//!   and a subset of `IDEMPOTENT`; `IDEMPOTENT` only names request
//!   kinds (an idempotence claim about a reply is meaningless).
//!
//! Like the facade pass this runs once per workspace (not per file) and
//! attributes findings to the defining source line where one can be
//! located. [`check`] is separated from [`run`] so fixture tests can
//! feed doctored tables and token streams; `run` wires in the real
//! linked constants.

use crate::lexer::{lex, Tok, Token};
use crate::report::Violation;
use hyperm_can::codec::{kind, Message};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

const CODEC: &str = "crates/can/src/codec.rs";
const RUNTIME: &str = "crates/transport/src/runtime.rs";

/// The protocol's sources of truth, decoupled from the linked crates so
/// the checker is testable with synthetic tables.
pub struct ProtoTables {
    /// (kind byte, variant name) — `kind::ALL`.
    pub all: Vec<(u8, String)>,
    /// Request kinds declared duplicate-tolerant — `kind::IDEMPOTENT`.
    pub idempotent: Vec<u8>,
    /// The client's timeout-retry set — `runtime::RESENDABLE_KINDS`.
    pub resendable: Vec<u8>,
    /// (request, reply) pairs — `Message::reply_kind_of`.
    pub reply: Vec<(u8, u8)>,
    /// Kinds allowed to be neither request nor reply (the `HELLO`
    /// handshake).
    pub unpaired_ok: Vec<u8>,
}

impl ProtoTables {
    /// Build from the real constants linked into this binary.
    pub fn from_workspace() -> Self {
        ProtoTables {
            all: kind::ALL.iter().map(|&(b, n)| (b, n.to_string())).collect(),
            idempotent: kind::IDEMPOTENT.to_vec(),
            resendable: hyperm_transport::runtime::RESENDABLE_KINDS.to_vec(),
            reply: kind::ALL
                .iter()
                .filter_map(|&(b, _)| Message::reply_kind_of(b).map(|r| (b, r)))
                .collect(),
            unpaired_ok: vec![kind::HELLO],
        }
    }
}

/// Run the pass over the workspace rooted at `root` using the real
/// linked tables.
pub fn run(root: &Path) -> Vec<Violation> {
    check(
        &ProtoTables::from_workspace(),
        &lex_file(root, CODEC),
        &lex_file(root, RUNTIME),
    )
}

/// Check `tables` for internal consistency and against the lexed
/// `codec.rs` / `runtime.rs` sources.
pub fn check(tables: &ProtoTables, codec_toks: &[Token], runtime_toks: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    let name_of = |b: u8| -> &str {
        tables
            .all
            .iter()
            .find(|&&(kb, _)| kb == b)
            .map(|(_, n)| n.as_str())
            .unwrap_or("?")
    };
    let reply_of =
        |k: u8| -> Option<u8> { tables.reply.iter().find(|&&(q, _)| q == k).map(|&(_, r)| r) };

    // --- proto-pairing: byte collisions inside ALL -----------------------
    let mut by_byte: BTreeMap<u8, Vec<&str>> = BTreeMap::new();
    for (b, name) in &tables.all {
        by_byte.entry(*b).or_default().push(name.as_str());
    }
    for (b, names) in &by_byte {
        if names.len() > 1 {
            out.push(Violation {
                file: CODEC.to_string(),
                line: const_line(codec_toks, &screaming(names[0])).unwrap_or(1),
                rule: "proto-pairing",
                message: format!(
                    "kind byte {b} is claimed by {}; kind bytes must be unique",
                    names.join(" and ")
                ),
            });
        }
    }

    // --- proto-pairing: source consts agree with ALL ---------------------
    let src_consts = kind_consts(codec_toks);
    let table: BTreeMap<String, u8> = tables
        .all
        .iter()
        .map(|(b, name)| (screaming(name), *b))
        .collect();
    for (name, (value, line)) in &src_consts {
        match table.get(name) {
            None => out.push(Violation {
                file: CODEC.to_string(),
                line: *line,
                rule: "proto-pairing",
                message: format!(
                    "`kind::{name}` is declared in codec.rs but missing from `kind::ALL`; \
                     the kind table must list every kind"
                ),
            }),
            Some(&b) if b != *value => out.push(Violation {
                file: CODEC.to_string(),
                line: *line,
                rule: "proto-pairing",
                message: format!(
                    "`kind::{name}` is {value} in source but {b} in `kind::ALL`; the table \
                     has drifted from the consts"
                ),
            }),
            _ => {}
        }
    }
    for (name, &b) in &table {
        if !src_consts.contains_key(name) {
            out.push(Violation {
                file: CODEC.to_string(),
                line: 1,
                rule: "proto-pairing",
                message: format!(
                    "`kind::ALL` lists ({b}, {name}) but no `pub const {name}: u8` exists \
                     in codec.rs"
                ),
            });
        }
    }

    // --- proto-pairing: reply targets + full classification --------------
    let requests: BTreeSet<u8> = tables.reply.iter().map(|&(q, _)| q).collect();
    let reply_targets: BTreeSet<u8> = tables.reply.iter().map(|&(_, r)| r).collect();
    for &req in &requests {
        let reply = reply_of(req).unwrap_or(req);
        if !by_byte.contains_key(&reply) {
            out.push(Violation {
                file: CODEC.to_string(),
                line: const_line(codec_toks, &screaming(name_of(req))).unwrap_or(1),
                rule: "proto-pairing",
                message: format!(
                    "request `{}` ({req}) expects reply kind {reply}, which is not in \
                     `kind::ALL`",
                    name_of(req)
                ),
            });
        }
        if reply_of(reply).is_some() {
            out.push(Violation {
                file: CODEC.to_string(),
                line: const_line(codec_toks, &screaming(name_of(reply))).unwrap_or(1),
                rule: "proto-pairing",
                message: format!(
                    "`{}` ({reply}) is `{}`'s reply but also expects a reply of its own; \
                     pairing must be one level deep",
                    name_of(reply),
                    name_of(req)
                ),
            });
        }
    }
    for (b, name) in &tables.all {
        if !requests.contains(b) && !reply_targets.contains(b) && !tables.unpaired_ok.contains(b) {
            out.push(Violation {
                file: CODEC.to_string(),
                line: const_line(codec_toks, &screaming(name)).unwrap_or(1),
                rule: "proto-pairing",
                message: format!(
                    "kind `{name}` ({b}) is neither a request (no `reply_kind_of` entry) \
                     nor any request's reply; classify it or add it to the handshake \
                     allow-list"
                ),
            });
        }
    }

    // --- proto-exhaustive: every kind has a dispatch arm -----------------
    let dispatched = message_variants(runtime_toks);
    for (b, name) in &tables.all {
        if !dispatched.contains(name.as_str()) {
            out.push(Violation {
                file: RUNTIME.to_string(),
                line: 1,
                rule: "proto-exhaustive",
                message: format!(
                    "kind `{name}` ({b}) has no `Message::{name}` dispatch arm in \
                     runtime.rs; the node would drop it on the floor"
                ),
            });
        }
    }

    // --- proto-retry-set --------------------------------------------------
    let retry_line = const_line(runtime_toks, "RESENDABLE_KINDS").unwrap_or(1);
    if tables.resendable.is_empty() {
        out.push(Violation {
            file: RUNTIME.to_string(),
            line: retry_line,
            rule: "proto-retry-set",
            message: "RESENDABLE_KINDS is empty: every timeout would be terminal, which \
                      defeats the retry layer"
                .to_string(),
        });
    }
    let mut seen = BTreeSet::new();
    for &k in &tables.resendable {
        if !seen.insert(k) {
            out.push(Violation {
                file: RUNTIME.to_string(),
                line: retry_line,
                rule: "proto-retry-set",
                message: format!("RESENDABLE_KINDS lists `{}` ({k}) twice", name_of(k)),
            });
        }
        if !tables.idempotent.contains(&k) {
            out.push(Violation {
                file: RUNTIME.to_string(),
                line: retry_line,
                rule: "proto-retry-set",
                message: format!(
                    "RESENDABLE_KINDS contains `{}` ({k}) which `kind::IDEMPOTENT` does \
                     not declare safe to duplicate; a resend could double-apply",
                    name_of(k)
                ),
            });
        }
    }
    for &k in &tables.idempotent {
        if !requests.contains(&k) {
            out.push(Violation {
                file: CODEC.to_string(),
                line: const_line(codec_toks, &screaming(name_of(k))).unwrap_or(1),
                rule: "proto-retry-set",
                message: format!(
                    "`kind::IDEMPOTENT` lists `{}` ({k}) which is not a request kind; \
                     idempotence only makes sense for requests",
                    name_of(k)
                ),
            });
        }
    }

    out.sort();
    out.dedup();
    out
}

fn lex_file(root: &Path, rel: &str) -> Vec<Token> {
    std::fs::read_to_string(root.join(rel))
        .map(|src| lex(&src).tokens)
        .unwrap_or_default()
}

/// `VariantName` → `VARIANT_NAME`.
fn screaming(variant: &str) -> String {
    let mut out = String::new();
    for (i, c) in variant.chars().enumerate() {
        if c.is_ascii_uppercase() && i > 0 {
            out.push('_');
        }
        out.push(c.to_ascii_uppercase());
    }
    out
}

/// All `const NAME: u8 = <num>;` declarations → (value, line).
fn kind_consts(toks: &[Token]) -> BTreeMap<String, (u8, u32)> {
    let mut out = BTreeMap::new();
    for ix in 0..toks.len() {
        let Tok::Ident(kw) = &toks[ix].tok else {
            continue;
        };
        if kw != "const" {
            continue;
        }
        let Some(Token {
            tok: Tok::Ident(name),
            line,
        }) = toks.get(ix + 1)
        else {
            continue;
        };
        if !matches!(toks.get(ix + 2).map(|t| &t.tok), Some(Tok::Punct(':'))) {
            continue;
        }
        if !matches!(toks.get(ix + 3).map(|t| &t.tok), Some(Tok::Ident(ty)) if ty == "u8") {
            continue;
        }
        if !matches!(toks.get(ix + 4).map(|t| &t.tok), Some(Tok::Punct('='))) {
            continue;
        }
        let Some(Token {
            tok: Tok::Num(raw), ..
        }) = toks.get(ix + 5)
        else {
            continue;
        };
        if let Ok(v) = raw.replace('_', "").parse::<u8>() {
            out.insert(name.clone(), (v, *line));
        }
    }
    out
}

/// Line of `const NAME` / `pub const NAME` in the token stream.
fn const_line(toks: &[Token], name: &str) -> Option<u32> {
    toks.windows(2).find_map(|w| match (&w[0].tok, &w[1].tok) {
        (Tok::Ident(kw), Tok::Ident(n)) if kw == "const" && n == name => Some(w[1].line),
        _ => None,
    })
}

/// Every `Message :: Variant` path mentioned in the token stream.
fn message_variants(toks: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for ix in 0..toks.len().saturating_sub(3) {
        let Tok::Ident(base) = &toks[ix].tok else {
            continue;
        };
        if base != "Message" {
            continue;
        }
        let (Tok::Punct(':'), Tok::Punct(':')) = (&toks[ix + 1].tok, &toks[ix + 2].tok) else {
            continue;
        };
        if let Tok::Ident(variant) = &toks[ix + 3].tok {
            out.insert(variant.clone());
        }
    }
    out
}
