//! Telemetry-taxonomy pass: every event/span name reaching a `Recorder`
//! emit site (`.span` / `.event` / `.end`), a forensics matcher
//! (`.spans_named` / `.event_count`) or a metrics counter (`.add` /
//! `.counter`) must be canonical — either a string literal present in
//! `hyperm_telemetry::names::ALL` (counters may also use
//! `counters::ALL`) or a `names::CONST` / `counters::CONST` path whose
//! lowercased ident resolves to one. The canonical list is imported from
//! the telemetry crate itself at build time, so this pass can never
//! drift from the real source of truth.

use super::{call_args, FileCtx};
use crate::lexer::Tok;
use crate::report::Violation;
use hyperm_telemetry::taxonomy::{is_canonical, is_canonical_counter};

/// Emit-site methods: (method name, 0-based index of the name argument,
/// counter namespace allowed).
const SITES: &[(&str, usize, bool)] = &[
    ("span", 1, false),
    ("event", 1, false),
    ("end", 1, false),
    ("spans_named", 0, false),
    ("event_count", 0, false),
    ("add", 0, true),
    ("counter", 0, true),
];

/// Run the pass over one file.
pub fn run(ctx: &FileCtx<'_>) -> Vec<Violation> {
    let toks = ctx.tokens;
    let mut out = Vec::new();
    for ix in 0..toks.len() {
        if ctx.in_test[ix] {
            continue;
        }
        if !ctx.punct(ix, '.') {
            continue;
        }
        let Some(method) = ctx.ident(ix + 1) else {
            continue;
        };
        let Some(&(_, arg_ix, counter_ok)) = SITES.iter().find(|(m, _, _)| *m == method) else {
            continue;
        };
        if !ctx.punct(ix + 2, '(') {
            continue;
        }
        let Some(args) = call_args(toks, ix + 2) else {
            continue;
        };
        let Some(&(from, to)) = args.get(arg_ix) else {
            continue;
        };
        let ok = |name: &str| {
            if counter_ok {
                is_canonical_counter(name)
            } else {
                is_canonical(name)
            }
        };
        // Shape 1: a lone string literal.
        if to == from + 1 {
            if let Tok::Str(name) = &toks[from].tok {
                if !ok(name) {
                    out.push(ctx.violation(
                        from,
                        "tel-taxonomy",
                        format!(
                            "event name {name:?} is not in the canonical taxonomy \
                             (hyperm_telemetry::names::ALL); add it there or fix the name"
                        ),
                    ));
                }
                continue;
            }
        }
        // Shape 2: a path ending `names::CONST` / `counters::CONST`.
        if to >= from + 3 && ctx.path_sep(to - 3) {
            let ns = ctx.ident(to - 4);
            if let (Some(ns), Some(konst)) = (ns, ctx.ident(to - 1)) {
                if ns == "names" || ns == "counters" {
                    let resolved = konst.to_ascii_lowercase();
                    let valid = if ns == "counters" {
                        counter_ok && is_canonical_counter(&resolved)
                    } else {
                        ok(&resolved)
                    };
                    if !valid {
                        out.push(ctx.violation(
                            to - 1,
                            "tel-taxonomy",
                            format!(
                                "`{ns}::{konst}` does not resolve to a canonical taxonomy name"
                            ),
                        ));
                    }
                }
            }
        }
        // Anything else (a variable, `ev.name`, …) is dynamic — the
        // runtime taxonomy test covers those.
    }
    out
}
