//! Wire-taint pass: every byte of a frame body is attacker-controlled.
//!
//! PR 6 hand-fixed the decode paths so no length read off the wire
//! reaches an allocation before `Reader::need` (or an explicit bound
//! check) has vouched for it. This pass locks that discipline in as an
//! enforced invariant over the two wire-facing files
//! ([`WIRE_PATHS`]): a value produced by a frame read
//! (`Reader::take`/`u8`/`u16`/`u32`/`u64`, `from_le_bytes`) is
//! *tainted*; a tainted value flowing into
//!
//! * `Vec::with_capacity(x)` / `vec![_; x]` (allocation sized by the
//!   attacker),
//! * a slice index `buf[x]`,
//! * a 64-bit read cast straight through `as usize`,
//!
//! without first passing a recognised validator is a `wire-taint`
//! violation. Validators — the operations that bound a value before it
//! is trusted — are `need(x)` (the codec's pre-validation),
//! `try_from(x)`, `checked_mul`/`checked_add`/`checked_sub`, `.min(…)`,
//! and appearing in a `<`/`>`/`<=`/`>=` comparison (the `len >
//! MAX_FRAME` guard in frame.rs).
//!
//! The pass also flags `.unwrap()`/`.expect(…)` in non-test wire code:
//! a decode helper that can panic on truncated input is a remote crash,
//! whatever the panics pass thinks about hot paths. Taint state is
//! per-function (reset at each `fn`): the tracker is flow-insensitive
//! within a body — once validated anywhere in the function, a name is
//! trusted — which matches the codec's straight-line decode style.

use super::FileCtx;
use crate::lexer::Tok;
use crate::report::Violation;
use std::collections::BTreeMap;

/// Exact workspace-relative paths the pass runs on: where bytes enter
/// from the network.
pub const WIRE_PATHS: &[&str] = &["crates/can/src/codec.rs", "crates/transport/src/frame.rs"];

/// Frame-read methods whose results are tainted. `u64` (and
/// `from_le_bytes` on 8 bytes) additionally mark the value *wide*: an
/// `as usize` cast of a wide value is flagged even outside a sink,
/// because on 32-bit targets it truncates silently.
const SOURCES: &[(&str, bool)] = &[
    ("take", false),
    ("u8", false),
    ("u16", false),
    ("u32", false),
    ("u64", true),
    ("f64", false),
    ("from_le_bytes", false),
];

const VALIDATORS: &[&str] = &[
    "need",
    "try_from",
    "checked_mul",
    "checked_add",
    "checked_sub",
    "min",
];

#[derive(Debug, Clone, Copy, PartialEq)]
struct Taint {
    wide: bool,
    validated: bool,
}

/// Run the pass over one file (no-op off [`WIRE_PATHS`]).
pub fn run(ctx: &FileCtx<'_>) -> Vec<Violation> {
    if !WIRE_PATHS.contains(&ctx.path) {
        return Vec::new();
    }
    let toks = ctx.tokens;
    let mut out = Vec::new();
    // name -> taint, current function only.
    let mut tainted: BTreeMap<String, Taint> = BTreeMap::new();
    for ix in 0..toks.len() {
        if ctx.in_test[ix] {
            continue;
        }
        let Tok::Ident(id) = &toks[ix].tok else {
            continue;
        };
        match id.as_str() {
            "fn" => tainted.clear(),
            // `let [mut] name = <init…>;` — taint the binding when the
            // initialiser contains a source call; inherit validation
            // when it also contains a validator (e.g.
            // `usize::try_from(r.u64()?)`).
            "let" => {
                let mut jx = ix + 1;
                if ctx.ident(jx) == Some("mut") {
                    jx += 1;
                }
                let Some(name) = ctx.ident(jx) else { continue };
                if !ctx.punct(jx + 1, '=') || ctx.punct(jx + 2, '=') {
                    continue;
                }
                let mut source = None;
                let mut validated = false;
                let mut kx = jx + 2;
                let mut d = 0i32;
                while kx < toks.len() {
                    match &toks[kx].tok {
                        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => d += 1,
                        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => d -= 1,
                        Tok::Punct(';') if d <= 0 => break,
                        Tok::Ident(m) if ctx.punct(kx + 1, '(') => {
                            if let Some(&(_, wide)) = SOURCES.iter().find(|(s, _)| s == m) {
                                source = Some(source.unwrap_or(false) || wide);
                            }
                            if VALIDATORS.contains(&m.as_str()) {
                                validated = true;
                            }
                            // Propagation: initialiser mentions an
                            // already-tainted name.
                        }
                        Tok::Ident(m) => {
                            if let Some(t) = tainted.get(m.as_str()).copied() {
                                source = Some(source.unwrap_or(false) || t.wide);
                                validated |= t.validated;
                            }
                        }
                        _ => {}
                    }
                    kx += 1;
                }
                if let Some(wide) = source {
                    tainted.insert(name.to_string(), Taint { wide, validated });
                }
            }
            // Validator call: every tainted name among the arguments (or
            // the receiver, for `.min(…)`/`.checked_mul(…)`) becomes
            // trusted.
            m if VALIDATORS.contains(&m) && ctx.punct(ix + 1, '(') => {
                if let Some(args) = super::call_args(toks, ix + 1) {
                    for (from, to) in args {
                        for j in from..to {
                            if let Some(w) = ctx.ident(j) {
                                if let Some(t) = tainted.get_mut(w) {
                                    t.validated = true;
                                }
                            }
                        }
                    }
                }
                if ix >= 2 && ctx.punct(ix - 1, '.') {
                    if let Some(recv) = ctx.ident(ix - 2) {
                        if let Some(t) = tainted.get_mut(recv) {
                            t.validated = true;
                        }
                    }
                }
            }
            // Sink: attacker-sized allocation.
            "with_capacity" if ctx.punct(ix + 1, '(') => {
                check_sink_args(ctx, ix, &tainted, "Vec::with_capacity", &mut out);
            }
            "vec" if ctx.punct(ix + 1, '!') => {
                // `vec![_; x]` — taint check on the repeat count.
                if let Some(name) = repeat_count_ident(ctx, ix + 2) {
                    if let Some(t) = tainted.get(name) {
                        if !t.validated {
                            out.push(ctx.violation(
                                ix,
                                "wire-taint",
                                format!(
                                    "`vec![_; {name}]` sizes an allocation with the \
                                     unvalidated wire value `{name}`; call `need()` or \
                                     bound-check it first"
                                ),
                            ));
                        }
                    }
                }
            }
            "unwrap" | "expect" if ix > 0 && ctx.punct(ix - 1, '.') && ctx.punct(ix + 1, '(') => {
                out.push(ctx.violation(
                    ix,
                    "wire-taint",
                    format!(
                        "`.{id}()` in wire-decode code can panic on hostile input; \
                         return a typed `CodecError` instead"
                    ),
                ));
            }
            "as" => {
                // `x as usize` where x is a tainted wide (u64) read.
                if ctx.ident(ix + 1) == Some("usize") {
                    if let Some(name) = ctx.ident(ix.wrapping_sub(1)) {
                        if let Some(t) = tainted.get(name) {
                            if t.wide && !t.validated {
                                out.push(ctx.violation(
                                    ix,
                                    "wire-taint",
                                    format!(
                                        "`{name} as usize` truncates a 64-bit wire value \
                                         on 32-bit targets; use `usize::try_from` or \
                                         validate the range first"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            _ => {
                // Slice-index sink: `buf[x]` with x tainted-unvalidated.
                if ctx.punct(ix + 1, '[') {
                    if let Some(name) = ctx.ident(ix + 2) {
                        if ctx.punct(ix + 3, ']') {
                            if let Some(t) = tainted.get(name) {
                                if !t.validated {
                                    out.push(ctx.violation(
                                        ix + 2,
                                        "wire-taint",
                                        format!(
                                            "`[{name}]` indexes with the unvalidated wire \
                                             value `{name}`; bound-check it first"
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
                // Comparison counts as validation: `if len > MAX { … }`.
                let compared = ctx.punct(ix + 1, '<')
                    || ctx.punct(ix + 1, '>')
                    || (ix > 0 && (ctx.punct(ix - 1, '<') || ctx.punct(ix - 1, '>')));
                if compared {
                    if let Some(t) = tainted.get_mut(id.as_str()) {
                        t.validated = true;
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule && a.message == b.message);
    out
}

/// Flag tainted-unvalidated idents among a sink call's arguments.
fn check_sink_args(
    ctx: &FileCtx<'_>,
    ix: usize,
    tainted: &BTreeMap<String, Taint>,
    sink: &str,
    out: &mut Vec<Violation>,
) {
    let Some(args) = super::call_args(ctx.tokens, ix + 1) else {
        return;
    };
    for (from, to) in args {
        for j in from..to {
            let Some(name) = ctx.ident(j) else { continue };
            let Some(t) = tainted.get(name) else { continue };
            if !t.validated {
                out.push(ctx.violation(
                    ix,
                    "wire-taint",
                    format!(
                        "`{sink}({name})` sizes an allocation with the unvalidated wire \
                         value `{name}`; call `need()` or bound-check it first"
                    ),
                ));
            }
        }
    }
}

/// For `vec![` at `open` (`[` index), return the repeat-count ident of a
/// `vec![expr; count]` form, if the count is a bare ident.
fn repeat_count_ident<'t>(ctx: &'t FileCtx<'_>, open: usize) -> Option<&'t str> {
    if !ctx.punct(open, '[') {
        return None;
    }
    let toks = ctx.tokens;
    let mut d = 0i32;
    let mut semi = None;
    let mut jx = open;
    while jx < toks.len() {
        match &toks[jx].tok {
            Tok::Punct('[') | Tok::Punct('(') | Tok::Punct('{') => d += 1,
            Tok::Punct(']') | Tok::Punct(')') | Tok::Punct('}') => {
                d -= 1;
                if d == 0 {
                    let s = semi?;
                    // Count must be the single token between `;` and `]`.
                    if jx == s + 2 {
                        return ctx.ident(s + 1);
                    }
                    return None;
                }
            }
            Tok::Punct(';') if d == 1 => semi = Some(jx),
            _ => {}
        }
        jx += 1;
    }
    None
}
