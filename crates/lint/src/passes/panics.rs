//! Panic-path pass: on the query/publish/repair hot paths, library code
//! must not panic without a written justification. A panic mid-query
//! takes down a peer thread; a panic mid-repair can strand a zone.
//!
//! Rules:
//! * `panic-unwrap` — `.unwrap()` / `.expect(…)`;
//! * `panic-explicit` — `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!`;
//! * `panic-index` — direct slice/array indexing `x[i]` (prefer `.get`
//!   on untrusted indices; pervasively-indexed files carry a file-level
//!   allow explaining why their indices are invariant-protected).

use super::FileCtx;
use crate::lexer::Tok;
use crate::report::Violation;

/// Workspace-relative path prefixes of the hot paths.
pub const HOT_PATHS: &[&str] = &[
    "crates/core/src/query/",
    "crates/core/src/publish.rs",
    "crates/core/src/network.rs",
    "crates/core/src/churn.rs",
    "crates/can/src/ops.rs",
    "crates/can/src/overlay.rs",
    "crates/can/src/repair.rs",
    "crates/repair/src/lib.rs",
];

const EXPLICIT: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Run the pass over one file.
pub fn run(ctx: &FileCtx<'_>) -> Vec<Violation> {
    if !HOT_PATHS.iter().any(|p| ctx.path.starts_with(p)) {
        return Vec::new();
    }
    let toks = ctx.tokens;
    let mut out = Vec::new();
    for ix in 0..toks.len() {
        if ctx.in_test[ix] {
            continue;
        }
        match &toks[ix].tok {
            Tok::Ident(id)
                if (id == "unwrap" || id == "expect")
                    && ix > 0
                    && ctx.punct(ix - 1, '.')
                    && ctx.punct(ix + 1, '(') =>
            {
                out.push(ctx.violation(
                    ix,
                    "panic-unwrap",
                    format!(
                        "`.{id}()` on a hot path; handle the None/Err (or justify why it \
                         cannot occur with a suppression)"
                    ),
                ));
            }
            Tok::Ident(id) if EXPLICIT.contains(&id.as_str()) && ctx.punct(ix + 1, '!') => {
                out.push(ctx.violation(
                    ix,
                    "panic-explicit",
                    format!("`{id}!` on a hot path; return an error or justify with a suppression"),
                ));
            }
            Tok::Punct('[') if ix > 0 && is_index_receiver(&toks[ix - 1].tok) => {
                out.push(
                    ctx.violation(
                        ix,
                        "panic-index",
                        "direct indexing can panic on a hot path; prefer `.get()` or justify"
                            .to_string(),
                    ),
                );
            }
            _ => {}
        }
    }
    out.sort();
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    out
}

/// `[` is an *index* operation when the previous token can end an
/// expression: an identifier, a close bracket, or a literal. Everything
/// else (`#[attr]`, `: [T; N]`, `&[…]`, `= […]`, `vec![…]`… — the last
/// is preceded by `!`) is a type, attribute or array literal.
fn is_index_receiver(prev: &Tok) -> bool {
    match prev {
        // A keyword before `[` introduces an array literal/pattern, not
        // an indexing expression (`return [..]`, `in [..]`, …).
        Tok::Ident(id) => !matches!(
            id.as_str(),
            "return"
                | "in"
                | "mut"
                | "ref"
                | "as"
                | "if"
                | "else"
                | "match"
                | "move"
                | "break"
                | "continue"
                | "loop"
                | "where"
                | "dyn"
                | "impl"
                | "const"
                | "static"
        ),
        Tok::Str(_) | Tok::Num(_) => true,
        Tok::Punct(c) => matches!(c, ')' | ']'),
        _ => false,
    }
}
