//! Concurrency pass: guard-liveness tracking over the token stream.
//!
//! The transport layer (PRs 6–9) is hand-built on `Mutex` + `Condvar`,
//! so the three classic ways threaded code deadlocks or stalls are now
//! reachable from every query: inconsistent lock acquisition order
//! across call sites, blocking while a guard is live, and a guard
//! smuggled into another thread. This pass tracks `MutexGuard` bindings
//! to end-of-scope (token-level brace matching, no parser) and reports:
//!
//! * `conc-lock-order` — a lock-acquisition-order cycle. Every
//!   "lock B acquired while lock A is held" site contributes a directed
//!   edge A→B to a workspace-wide graph ([`LockEdge`]); any edge on a
//!   cycle (including a re-acquisition self-edge) is a potential
//!   deadlock and is reported at its acquisition site.
//! * `conc-blocking-hold` — a blocking call (mailbox send/recv, condvar
//!   waits, socket writes, `thread::sleep`, dials) while a guard is
//!   live. Condvar-style waits that *consume* the guard (the guard name
//!   appears in the call's arguments, as in
//!   `not_full.wait_timeout(state, …)`) are the sanctioned pattern and
//!   are exempt.
//! * `conc-guard-across-spawn` — a live guard's name captured by a
//!   `thread::spawn` call or a `move` closure: guards are `!Send` in
//!   spirit even where the compiler allows a borrow to slip through,
//!   and holding one across a spawn point extends its critical section
//!   by an unbounded amount.
//!
//! Lock identities are file-qualified (`<path>#<name>`): a `Mutex`/
//! `RwLock` struct field or static, a `let`-bound `Mutex::new`, or a
//! guard-returning helper method (`fn lock(…) -> MutexGuard`, resolved
//! to the field its body locks when possible). Acquisitions are
//! `.lock()`/`.read()`/`.write()` on a known lock name and calls of
//! known helper methods.

use super::FileCtx;
use crate::lexer::Tok;
use crate::report::Violation;
use std::collections::{BTreeMap, BTreeSet};

/// One "`to` acquired while `from` was held" observation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock already held (file-qualified id).
    pub from: String,
    /// Lock acquired under it (file-qualified id).
    pub to: String,
    /// File of the inner acquisition.
    pub file: String,
    /// Line of the inner acquisition.
    pub line: u32,
}

/// Calls that can block the current thread for an unbounded (or
/// scheduler-decided) time. Flagged only while a guard is live.
const BLOCKING: &[&str] = &[
    "send_blocking",
    "send_timeout",
    "send_tagged",
    "send",
    "recv_timeout",
    "recv",
    "wait",
    "wait_timeout",
    "sleep",
    "write_frame",
    "read_frame",
    "write_all",
    "read_exact",
    "flush",
    "connect",
    "join",
];

/// How long a tracked guard stays live.
#[derive(Debug, Clone, PartialEq)]
enum GuardEnd {
    /// Bound guard: dies when the enclosing block (brace depth at
    /// binding time) closes.
    Depth(i32),
    /// Statement temporary: dies after this token index.
    Token(usize),
}

#[derive(Debug, Clone)]
struct Guard {
    /// Binding name (`None` for statement temporaries).
    name: Option<String>,
    /// File-qualified lock id.
    lock: String,
    /// Acquisition line (for messages).
    line: u32,
    end: GuardEnd,
}

/// Run the pass over one file: violations plus the file's contribution
/// to the workspace lock-order graph. Cycle detection over the edges is
/// the driver's job ([`order_cycles`]) so intra- and cross-file cycles
/// are found by the same code.
pub fn run(ctx: &FileCtx<'_>) -> (Vec<Violation>, Vec<LockEdge>) {
    let locks = collect_locks(ctx);
    if locks.names.is_empty() && locks.helpers.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let toks = ctx.tokens;
    let mut out = Vec::new();
    let mut edges = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_start = 0usize;
    let mut ix = 0usize;
    while ix < toks.len() {
        // Expire statement temporaries.
        guards.retain(|g| !matches!(g.end, GuardEnd::Token(end) if ix > end));
        if ctx.in_test[ix] {
            match &toks[ix].tok {
                // Keep depth honest through masked test modules.
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                _ => {}
            }
            ix += 1;
            continue;
        }
        match &toks[ix].tok {
            Tok::Punct('{') => {
                depth += 1;
                stmt_start = ix + 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                stmt_start = ix + 1;
                guards.retain(|g| !matches!(g.end, GuardEnd::Depth(d) if d > depth));
            }
            Tok::Punct(';') => stmt_start = ix + 1,
            // drop(guard) ends a binding early.
            Tok::Ident(id) if id == "drop" && ctx.punct(ix + 1, '(') => {
                if let Some(name) = ctx.ident(ix + 2) {
                    if ctx.punct(ix + 3, ')') {
                        guards.retain(|g| g.name.as_deref() != Some(name));
                    }
                }
            }
            Tok::Ident(id) if id == "move" && ctx.punct(ix + 1, '|') => {
                if let Some((name, lock)) = closure_captures_guard(ctx, ix + 1, &guards) {
                    out.push(ctx.violation(
                        ix,
                        "conc-guard-across-spawn",
                        format!(
                            "guard `{name}` of `{lock}` is captured by a `move` closure; \
                             a lock guard must not cross a closure/thread boundary"
                        ),
                    ));
                }
            }
            Tok::Ident(id) if id == "spawn" && ctx.punct(ix + 1, '(') => {
                if let Some(args) = super::call_args(toks, ix + 1) {
                    for (from, to) in args {
                        for g in &guards {
                            let Some(name) = &g.name else { continue };
                            if (from..to).any(|j| ctx.ident(j) == Some(name.as_str())) {
                                out.push(ctx.violation(
                                    ix,
                                    "conc-guard-across-spawn",
                                    format!(
                                        "guard `{name}` of `{}` (held since line {}) is \
                                         referenced inside a `spawn` call; the guard would \
                                         cross a thread boundary",
                                        g.lock, g.line
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            Tok::Ident(id) => {
                if let Some(lock_id) = acquisition_at(ctx, ix, &locks) {
                    record_acquisition(
                        ctx,
                        ix,
                        &lock_id,
                        &mut guards,
                        &mut edges,
                        &mut out,
                        depth,
                        stmt_start,
                    );
                    // Skip past `name (` so the method ident is not also
                    // treated as a blocking call.
                    ix += 1;
                    continue;
                }
                if BLOCKING.contains(&id.as_str()) && ctx.punct(ix + 1, '(') && !guards.is_empty() {
                    // Condvar pattern: a wait that consumes the guard
                    // (guard name among the arguments) is the sanctioned
                    // way to sleep on a condition — exempt.
                    let consumes_guard = super::call_args(toks, ix + 1)
                        .map(|args| {
                            args.iter().any(|&(from, to)| {
                                (from..to).any(|j| {
                                    ctx.ident(j).is_some_and(|w| {
                                        guards.iter().any(|g| g.name.as_deref() == Some(w))
                                    })
                                })
                            })
                        })
                        .unwrap_or(false);
                    if !consumes_guard {
                        let g = &guards[guards.len() - 1];
                        out.push(ctx.violation(
                            ix,
                            "conc-blocking-hold",
                            format!(
                                "`{id}(…)` may block while the guard of `{}` (held since \
                                 line {}) is live; release the lock first or justify",
                                g.lock, g.line
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
        ix += 1;
    }
    out.sort();
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule && a.message == b.message);
    edges.sort();
    edges.dedup();
    (out, edges)
}

/// Handle one acquisition of `lock_id` at token `ix` (the method ident):
/// emit order edges against live guards, detect re-entry, and start
/// tracking the new guard.
#[allow(clippy::too_many_arguments)]
fn record_acquisition(
    ctx: &FileCtx<'_>,
    ix: usize,
    lock_id: &str,
    guards: &mut Vec<Guard>,
    edges: &mut Vec<LockEdge>,
    out: &mut Vec<Violation>,
    depth: i32,
    stmt_start: usize,
) {
    for g in guards.iter() {
        if g.lock == lock_id {
            // Non-reentrant std locks: re-acquiring while held is an
            // unconditional self-deadlock, no graph needed.
            out.push(ctx.violation(
                ix,
                "conc-lock-order",
                format!(
                    "`{lock_id}` is re-acquired while its own guard (line {}) is still \
                     live — std mutexes are not reentrant, this self-deadlocks",
                    g.line
                ),
            ));
        } else {
            edges.push(LockEdge {
                from: g.lock.clone(),
                to: lock_id.to_string(),
                file: ctx.path.to_string(),
                line: ctx.line(ix),
            });
        }
    }
    let Some(close) = matching_paren(ctx, ix + 1) else {
        return;
    };
    let (name, end) = guard_binding(ctx, close, depth, stmt_start);
    guards.push(Guard {
        name,
        lock: lock_id.to_string(),
        line: ctx.line(ix),
        end,
    });
}

/// Is token `ix` the method ident of a lock acquisition? Returns the
/// file-qualified lock id.
fn acquisition_at(ctx: &FileCtx<'_>, ix: usize, locks: &Locks) -> Option<String> {
    let method = ctx.ident(ix)?;
    if !(ix > 0 && ctx.punct(ix - 1, '.') && ctx.punct(ix + 1, '(')) {
        return None;
    }
    match method {
        "lock" | "read" | "write" => {
            // `<field>.lock()` on a declared Mutex/RwLock name.
            if let Some(recv) = ctx.ident(ix.wrapping_sub(2)) {
                if let Some((id, is_rw)) = locks.names.get(recv) {
                    let rw_ok = method == "lock" && !is_rw || *is_rw && method != "lock";
                    if rw_ok {
                        return Some(id.clone());
                    }
                }
            }
            // `self.lock()`-style helper defined in this file.
            if method == "lock" {
                if let Some(id) = locks.helpers.get(method) {
                    return Some(id.clone());
                }
            }
            None
        }
        m => locks.helpers.get(m).cloned(),
    }
}

struct Locks {
    /// Declared lock names (field/static/local) → (id, is_rwlock).
    names: BTreeMap<String, (String, bool)>,
    /// Guard-returning helper methods → lock id.
    helpers: BTreeMap<String, String>,
}

/// Collect the file's lock identities: `name: Mutex<…>` / `RwLock<…>`
/// fields and statics, `let name = …Mutex::new…` locals, and helper
/// methods whose return type names a guard.
fn collect_locks(ctx: &FileCtx<'_>) -> Locks {
    let toks = ctx.tokens;
    let mut names = BTreeMap::new();
    let mut helpers = BTreeMap::new();
    let id_of = |name: &str| format!("{}#{}", ctx.path, name);
    let mut ix = 0usize;
    while ix < toks.len() {
        match &toks[ix].tok {
            // `name : … Mutex < …` (struct field, static, fn param).
            Tok::Ident(name)
                if ctx.punct(ix + 1, ':') && !ctx.path_sep(ix + 1) && !ctx.punct(ix, ':') =>
            {
                // Scan the type tokens up to a delimiter for Mutex</RwLock<.
                let mut jx = ix + 2;
                while jx < toks.len() && jx < ix + 12 {
                    match &toks[jx].tok {
                        Tok::Punct(',')
                        | Tok::Punct(';')
                        | Tok::Punct('=')
                        | Tok::Punct('{')
                        | Tok::Punct('}')
                        | Tok::Punct(')') => break,
                        Tok::Ident(t)
                            if (t == "Mutex" || t == "RwLock") && ctx.punct(jx + 1, '<') =>
                        {
                            names.insert(name.clone(), (id_of(name), t == "RwLock"));
                            break;
                        }
                        _ => {}
                    }
                    jx += 1;
                }
            }
            // `let [mut] name = … Mutex::new …`.
            Tok::Ident(id) if id == "let" => {
                let mut jx = ix + 1;
                if ctx.ident(jx) == Some("mut") {
                    jx += 1;
                }
                if let Some(name) = ctx.ident(jx) {
                    if ctx.punct(jx + 1, '=') {
                        let mut kx = jx + 2;
                        let mut d = 0i32;
                        while kx < toks.len() {
                            match &toks[kx].tok {
                                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => d += 1,
                                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => d -= 1,
                                Tok::Punct(';') if d <= 0 => break,
                                Tok::Ident(t)
                                    if (t == "Mutex" || t == "RwLock")
                                        && ctx.path_sep(kx + 1)
                                        && ctx.ident(kx + 3) == Some("new") =>
                                {
                                    names.insert(name.to_string(), (id_of(name), t == "RwLock"));
                                }
                                _ => {}
                            }
                            kx += 1;
                        }
                    }
                }
            }
            // `fn name(…) -> … MutexGuard/RwLock*Guard …`.
            Tok::Ident(id) if id == "fn" => {
                if let Some((name, body_open)) = guard_helper_at(ctx, ix) {
                    let resolved =
                        helper_lock_field(ctx, body_open, &names).unwrap_or_else(|| id_of(&name));
                    helpers.insert(name, resolved);
                }
            }
            _ => {}
        }
        ix += 1;
    }
    Locks { names, helpers }
}

/// If the `fn` at `ix` returns a guard type, yield (fn name, index of
/// its body `{`).
fn guard_helper_at(ctx: &FileCtx<'_>, ix: usize) -> Option<(String, usize)> {
    let name = ctx.ident(ix + 1)?.to_string();
    // Find the param list, then the body `{` / item end `;`, checking
    // the return-type tokens for a guard type name.
    let toks = ctx.tokens;
    let mut jx = ix + 2;
    while jx < toks.len() && !ctx.punct(jx, '(') {
        if ctx.punct(jx, '{') || ctx.punct(jx, ';') {
            return None;
        }
        jx += 1;
    }
    let close = matching_paren(ctx, jx)?;
    let mut kx = close + 1;
    let mut has_guard = false;
    while kx < toks.len() {
        match &toks[kx].tok {
            Tok::Punct('{') => return has_guard.then_some((name, kx)),
            Tok::Punct(';') => return None,
            Tok::Ident(t)
                if t == "MutexGuard" || t == "RwLockReadGuard" || t == "RwLockWriteGuard" =>
            {
                has_guard = true;
            }
            _ => {}
        }
        kx += 1;
    }
    None
}

/// Which declared lock a helper's body acquires: the receiver field of
/// the first `.lock()` in the body, when it is a known lock name.
fn helper_lock_field(
    ctx: &FileCtx<'_>,
    body_open: usize,
    names: &BTreeMap<String, (String, bool)>,
) -> Option<String> {
    let toks = ctx.tokens;
    let mut d = 0i32;
    let mut jx = body_open;
    while jx < toks.len() {
        match &toks[jx].tok {
            Tok::Punct('{') => d += 1,
            Tok::Punct('}') => {
                d -= 1;
                if d == 0 {
                    return None;
                }
            }
            Tok::Ident(m)
                if (m == "lock" || m == "read" || m == "write")
                    && ctx.punct(jx + 1, '(')
                    && jx >= 2
                    && ctx.punct(jx - 1, '.') =>
            {
                if let Some(recv) = ctx.ident(jx - 2) {
                    if let Some((id, _)) = names.get(recv) {
                        return Some(id.clone());
                    }
                }
            }
            _ => {}
        }
        jx += 1;
    }
    None
}

/// Determine how the acquisition at method ident `ix` (call closes at
/// `close`) is held: a `let`-bound guard (scope = enclosing block) or a
/// statement temporary (scope = end of statement / scrutinee block).
fn guard_binding(
    ctx: &FileCtx<'_>,
    close: usize,
    depth: i32,
    stmt_start: usize,
) -> (Option<String>, GuardEnd) {
    let toks = ctx.tokens;
    // `.expect("…")` / `.unwrap()` after the acquisition unwraps to the
    // same guard — skip the chain so `let g = m.lock().expect(…);` binds.
    let mut close = close;
    while ctx.punct(close + 1, '.')
        && matches!(ctx.ident(close + 2), Some("expect" | "unwrap"))
        && ctx.punct(close + 3, '(')
    {
        match matching_paren(ctx, close + 3) {
            Some(c) => close = c,
            None => break,
        }
    }
    // `let [mut] name = <acq>();` or `let [mut] name = match <acq>() { … };`
    // bind the guard itself; anything trailing the call makes the guard a
    // temporary of the statement (`let len = m.lock().queue.len();`).
    if ctx.ident(stmt_start) == Some("let") {
        let mut jx = stmt_start + 1;
        if ctx.ident(jx) == Some("mut") {
            jx += 1;
        }
        if let Some(name) = ctx.ident(jx) {
            if ctx.punct(jx + 1, '=') {
                let direct = ctx.punct(close + 1, ';');
                let via_match = ctx.ident(jx + 2) == Some("match");
                if direct || via_match {
                    return (Some(name.to_string()), GuardEnd::Depth(depth));
                }
            }
        }
    }
    // Temporary: live to the statement's `;`, through the brace block
    // when the acquisition sits in an `if let`/`while let`/`match` head
    // (Rust extends scrutinee temporaries to the end of the construct),
    // or to the enclosing block's `}` for a tail expression.
    let mut d = 0i32;
    let mut jx = close + 1;
    while jx < toks.len() {
        match &toks[jx].tok {
            Tok::Punct('(') | Tok::Punct('[') => d += 1,
            Tok::Punct('{') if d == 0 => {
                // Scrutinee: walk to the matching `}`.
                let mut bd = 0i32;
                let mut kx = jx;
                while kx < toks.len() {
                    match &toks[kx].tok {
                        Tok::Punct('{') => bd += 1,
                        Tok::Punct('}') => {
                            bd -= 1;
                            if bd == 0 {
                                return (None, GuardEnd::Token(kx));
                            }
                        }
                        _ => {}
                    }
                    kx += 1;
                }
                return (None, GuardEnd::Token(toks.len() - 1));
            }
            Tok::Punct('{') => d += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                if d == 0 {
                    // Call-argument temporary or tail expression: dies
                    // with the enclosing call / block.
                    return (None, GuardEnd::Token(jx));
                }
                d -= 1;
            }
            Tok::Punct(';') if d == 0 => return (None, GuardEnd::Token(jx)),
            _ => {}
        }
        jx += 1;
    }
    (None, GuardEnd::Token(toks.len() - 1))
}

/// Does the closure whose first `|` is at `bar` mention a live guard?
fn closure_captures_guard(
    ctx: &FileCtx<'_>,
    bar: usize,
    guards: &[Guard],
) -> Option<(String, String)> {
    let toks = ctx.tokens;
    // Find the closing `|` of the parameter list.
    let mut jx = bar + 1;
    while jx < toks.len() && !ctx.punct(jx, '|') {
        jx += 1;
    }
    // Body: a brace block, or an expression up to `,` / `)` at depth 0.
    let (from, to) = if ctx.punct(jx + 1, '{') {
        let mut bd = 0i32;
        let mut kx = jx + 1;
        loop {
            if kx >= toks.len() {
                break (jx + 1, toks.len());
            }
            match &toks[kx].tok {
                Tok::Punct('{') => bd += 1,
                Tok::Punct('}') => {
                    bd -= 1;
                    if bd == 0 {
                        break (jx + 1, kx);
                    }
                }
                _ => {}
            }
            kx += 1;
        }
    } else {
        let mut d = 0i32;
        let mut kx = jx + 1;
        loop {
            if kx >= toks.len() {
                break (jx + 1, toks.len());
            }
            match &toks[kx].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => d += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') if d == 0 => {
                    break (jx + 1, kx)
                }
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => d -= 1,
                Tok::Punct(',') if d == 0 => break (jx + 1, kx),
                Tok::Punct(';') if d == 0 => break (jx + 1, kx),
                _ => {}
            }
            kx += 1;
        }
    };
    for g in guards {
        let Some(name) = &g.name else { continue };
        if (from..to).any(|j| ctx.ident(j) == Some(name.as_str())) {
            return Some((name.clone(), g.lock.clone()));
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(ctx: &FileCtx<'_>, open: usize) -> Option<usize> {
    if !ctx.punct(open, '(') {
        return None;
    }
    let toks = ctx.tokens;
    let mut d = 0i32;
    let mut jx = open;
    while jx < toks.len() {
        match &toks[jx].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => d += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                d -= 1;
                if d == 0 {
                    return Some(jx);
                }
            }
            _ => {}
        }
        jx += 1;
    }
    None
}

/// Cycle detection over the merged workspace edge set: any edge whose
/// target can reach its source again is on an acquisition-order cycle.
/// Violations are attributed to each participating edge's site so every
/// involved file sees its half of the inversion.
pub fn order_cycles(edges: &[LockEdge]) -> Vec<Violation> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let reaches = |from: &str, target: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    let mut out = Vec::new();
    let mut sorted: Vec<&LockEdge> = edges.iter().collect();
    sorted.sort();
    sorted
        .dedup_by(|a, b| a.file == b.file && a.line == b.line && a.from == b.from && a.to == b.to);
    for e in sorted {
        if reaches(&e.to, &e.from) {
            let counter = edges
                .iter()
                .find(|o| o.from == e.to || (o.from != e.from && o.to == e.from))
                .map(|o| format!(" (counter-ordered acquisition at {}:{})", o.file, o.line))
                .unwrap_or_default();
            out.push(Violation {
                file: e.file.clone(),
                line: e.line,
                rule: "conc-lock-order",
                message: format!(
                    "lock-order cycle: `{}` is acquired while `{}` is held here, but the \
                     reverse order also occurs{counter}; pick one global order",
                    e.to, e.from
                ),
            });
        }
    }
    out.sort();
    out.dedup();
    out
}
