//! A small Rust lexer: just enough to run token-level lint passes.
//!
//! Produces a flat token stream (identifiers, punctuation, string and
//! numeric literals) with 1-based line numbers, plus the comment text per
//! line (suppression directives live in comments). Handles the lexical
//! constructs that would otherwise break naive text scanning: line and
//! nested block comments, string/char/byte literals with escapes, raw
//! strings with `#` fences, and lifetimes vs. char literals. It does
//! **not** parse — the passes work on token patterns.

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (decoded content not needed — raw text between the
    /// quotes, escapes left as written).
    Str(String),
    /// Character or byte literal (content ignored by the passes).
    Char,
    /// Numeric literal, raw digits as written (`0x1F`, `1_000`, `2.5`) —
    /// the protocol pass reads kind-const values out of these.
    Num(String),
    /// Lifetime such as `'a` (passes ignore these, but they must not be
    /// confused with char literals).
    Lifetime,
    /// Single punctuation character (`.`, `:`, `(`, `[`, `!`, …).
    Punct(char),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// The token itself.
    pub tok: Tok,
}

/// A comment with its 1-based source line (block comments are attributed
/// to their *starting* line; directives must not span lines).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: the token stream and every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Unterminated constructs consume to end of input
/// rather than erroring: lint passes prefer partial streams over hard
/// failures on exotic files.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advance over `s[i..j]`, counting newlines.
    macro_rules! bump_to {
        ($j:expr) => {{
            let j = $j;
            line += src[i..j].bytes().filter(|&c| c == b'\n').count() as u32;
            i = j;
        }};
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map(|o| i + o).unwrap_or(b.len());
                out.comments.push(Comment {
                    line,
                    text: src[i + 2..end].to_string(),
                });
                bump_to!(end);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let inner_end = j.saturating_sub(2).max(i + 2);
                out.comments.push(Comment {
                    line: start_line,
                    text: src[i + 2..inner_end].to_string(),
                });
                bump_to!(j);
            }
            b'"' => {
                let start_line = line;
                let (content, j) = scan_string(src, i + 1);
                out.tokens.push(Token {
                    line: start_line,
                    tok: Tok::Str(content),
                });
                bump_to!(j);
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let start_line = line;
                let (content, j) = scan_raw_string(src, i);
                out.tokens.push(Token {
                    line: start_line,
                    tok: Tok::Str(content),
                });
                bump_to!(j);
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'\'' => {
                let (_, j) = scan_char(src, i + 2);
                out.tokens.push(Token {
                    line,
                    tok: Tok::Char,
                });
                bump_to!(j);
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'"' => {
                let start_line = line;
                let (content, j) = scan_string(src, i + 2);
                out.tokens.push(Token {
                    line: start_line,
                    tok: Tok::Str(content),
                });
                bump_to!(j);
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) or char literal (`'x'`,
                // `'\n'`). A quote followed by an ident run that is NOT
                // closed by another quote is a lifetime.
                if is_lifetime(b, i) {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        line,
                        tok: Tok::Lifetime,
                    });
                    i = j;
                } else {
                    let (_, j) = scan_char(src, i + 1);
                    out.tokens.push(Token {
                        line,
                        tok: Tok::Char,
                    });
                    bump_to!(j);
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Ident(src[i..j].to_string()),
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                // Good enough for numerics incl. floats/exponents/suffixes;
                // `1.method()` never appears in this codebase's sources.
                while j < b.len()
                    && (b[j].is_ascii_alphanumeric()
                        || b[j] == b'_'
                        || b[j] == b'.'
                        || ((b[j] == b'+' || b[j] == b'-')
                            && (b[j - 1] == b'e' || b[j - 1] == b'E')))
                {
                    // Stop before `..` (range) and before `.method`.
                    if b[j] == b'.'
                        && j + 1 < b.len()
                        && (b[j + 1] == b'.' || b[j + 1].is_ascii_alphabetic())
                    {
                        break;
                    }
                    j += 1;
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Num(src[i..j].to_string()),
                });
                i = j;
            }
            c => {
                out.tokens.push(Token {
                    line,
                    tok: Tok::Punct(c as char),
                });
                i += 1;
            }
        }
    }
    out
}

fn is_lifetime(b: &[u8], i: usize) -> bool {
    // b[i] == '\''. `'a'` is a char, `'a` (no closing quote right after
    // one ident char run) is a lifetime. `'_'` the reserved lifetime is
    // also followed by no quote... except `'_'` — treat a quote right
    // after a single char as a char literal.
    let mut j = i + 1;
    if j >= b.len() || !(b[j].is_ascii_alphabetic() || b[j] == b'_') {
        return false; // escape or punctuation: char literal
    }
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    !(j < b.len() && b[j] == b'\'')
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r" r#" br" rb"? (rb isn't real rust; br is). Accept r / br prefixes.
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn scan_raw_string(src: &str, i: usize) -> (String, usize) {
    let b = src.as_bytes();
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // r
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let start = j;
    let closer: String = format!("\"{}", "#".repeat(hashes));
    match src[j..].find(&closer) {
        Some(o) => (src[start..j + o].to_string(), j + o + closer.len()),
        None => (src[start..].to_string(), b.len()),
    }
}

/// Scan a (non-raw) string body starting just after the opening quote;
/// returns (content, index past closing quote).
fn scan_string(src: &str, start: usize) -> (String, usize) {
    let b = src.as_bytes();
    let mut j = start;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (src[start..j].to_string(), j + 1),
            _ => j += 1,
        }
    }
    (src[start..].to_string(), b.len())
}

/// Scan a char/byte-literal body starting just after the opening quote.
fn scan_char(src: &str, start: usize) -> ((), usize) {
    let b = src.as_bytes();
    let mut j = start;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return ((), j + 1),
            _ => j += 1,
        }
    }
    ((), b.len())
}

/// Per-token flag: `true` when the token is inside a `#[cfg(test)] mod`
/// block (lint passes skip test code). Detects the attribute token
/// sequence `# [ cfg ( test ) ]` followed by `mod <name> {` and marks
/// everything to the matching close brace.
pub fn test_module_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut k = 0usize;
    while k < tokens.len() {
        if is_cfg_test_at(tokens, k) {
            // Find the `mod` that follows (possibly after more attributes).
            let mut m = k + 7; // past `# [ cfg ( test ) ]`
            while m < tokens.len() {
                match &tokens[m].tok {
                    Tok::Punct('#') => {
                        // Skip the whole following attribute `[...]`.
                        let mut depth = 0i32;
                        m += 1;
                        while m < tokens.len() {
                            match &tokens[m].tok {
                                Tok::Punct('[') => depth += 1,
                                Tok::Punct(']') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        m += 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            m += 1;
                        }
                    }
                    Tok::Ident(id) if id == "mod" => break,
                    _ => break,
                }
            }
            let is_mod =
                matches!(&tokens.get(m).map(|t| &t.tok), Some(Tok::Ident(id)) if id == "mod");
            if is_mod {
                // Skip to the opening brace, then mark to its close.
                let mut j = m;
                while j < tokens.len() && tokens[j].tok != Tok::Punct('{') {
                    j += 1;
                }
                let mut depth = 0i32;
                let start = k;
                while j < tokens.len() {
                    match &tokens[j].tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                for flag in mask.iter_mut().take((j + 1).min(tokens.len())).skip(start) {
                    *flag = true;
                }
                k = j + 1;
                continue;
            }
        }
        k += 1;
    }
    mask
}

fn is_cfg_test_at(tokens: &[Token], k: usize) -> bool {
    let pat = ["#", "[", "cfg", "(", "test", ")", "]"];
    if k + pat.len() > tokens.len() {
        return false;
    }
    pat.iter()
        .enumerate()
        .all(|(o, want)| match &tokens[k + o].tok {
            Tok::Ident(id) => id == want,
            Tok::Punct(c) => want.len() == 1 && *c == want.chars().next().unwrap(),
            _ => false,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r##"
// HashMap in a comment
let s = "HashMap in a string";
/* block HashMap /* nested */ still comment */
let r = r#"raw "HashMap" here"#;
"##;
        assert!(!idents(src).iter().any(|i| i == "HashMap"));
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("HashMap in a comment"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lx = lex(src);
        let lifetimes = lx.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = lx.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = 1;\n/* c\nc\nc */\nlet b = 2;";
        let lx = lex(src);
        let b_tok = lx
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b_tok.line, 5);
    }

    #[test]
    fn test_module_mask_covers_cfg_test_mod() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn after() {}";
        let lx = lex(src);
        let mask = test_module_mask(&lx.tokens);
        for (t, m) in lx.tokens.iter().zip(&mask) {
            if let Tok::Ident(id) = &t.tok {
                match id.as_str() {
                    "live" | "after" => assert!(!m, "{id} wrongly masked"),
                    "unwrap" | "tests" => assert!(m, "{id} should be masked"),
                    _ => {}
                }
            }
        }
    }
}
