//! `hyperm-lint` — in-tree static analysis for the Hyper-M workspace.
//!
//! The correctness story of this repo (Theorems 3.1/4.1, the parallel ==
//! serial and faults-off == legacy acceptance suites, byte-equal
//! telemetry streams) rests on **bit-identical replay**. Nothing in the
//! type system stops a future change from iterating a `HashMap` into a
//! result, reading the wall clock on a scoring path, or inventing a
//! telemetry event name the forensics tooling has never heard of — so
//! this crate machine-checks those project invariants the way mature
//! systems repos encode review folklore as custom lints. Dep-free (the
//! workspace builds offline) and token-level: a small lexer
//! ([`lexer`]), not a full parser.
//!
//! Passes (rule slugs in parentheses):
//! * **determinism** ([`passes::determinism`]) — unordered-container
//!   iteration (`det-unordered-iter`), wall-clock reads
//!   (`det-wall-clock`) and unseeded RNG (`det-unseeded-rng`) in
//!   result-affecting crates;
//! * **panic-path** ([`passes::panics`]) — `unwrap`/`expect`
//!   (`panic-unwrap`), `panic!`-family macros (`panic-explicit`) and
//!   direct indexing (`panic-index`) on the query/publish/repair hot
//!   paths;
//! * **telemetry taxonomy** ([`passes::taxonomy`]) — emit-site names
//!   must come from `hyperm_telemetry::names::ALL` (`tel-taxonomy`);
//! * **facade** ([`passes::facade`]) — root public types of core crates
//!   are re-exported from `hyperm` or excluded in
//!   `crates/lint/facade.allow` (`facade-export`).
//!
//! Suppressions: `// hyperm-lint: allow(<rule>) — <reason>` on the
//! flagged line or the line above; `allow-file(<rule>) — <reason>`
//! anywhere for a whole file. The reason is mandatory, and unused or
//! malformed directives are themselves violations (`lint-directive`).
//!
//! Run `cargo run -p hyperm-lint --release`; it prints
//! `file:line: rule: message` diagnostics, writes `LINT_report.json`,
//! and exits non-zero on violations.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod passes;
pub mod report;

use passes::FileCtx;
use report::{apply_suppressions, parse_directives, Report, Suppressed, Violation};
use std::path::{Path, PathBuf};

/// Every rule slug the tool can emit.
pub const RULES: &[&str] = &[
    "det-unordered-iter",
    "det-wall-clock",
    "det-unseeded-rng",
    "panic-unwrap",
    "panic-explicit",
    "panic-index",
    "tel-taxonomy",
    "facade-export",
    "lint-directive",
];

/// Directory names never scanned: generated output, vendored stand-ins,
/// test code (integration tests may do anything), and lint fixtures.
const SKIP_DIRS: &[&str] = &["target", "vendor", "tests", "benches", "fixtures", ".git"];

/// Lint one source text as if it lived at `rel_path` in crate
/// `crate_name`. Returns surviving violations and applied suppressions.
/// This is the unit the fixture tests drive.
pub fn lint_source(
    rel_path: &str,
    crate_name: &str,
    src: &str,
) -> (Vec<Violation>, Vec<Suppressed>) {
    let lexed = lexer::lex(src);
    let mask = lexer::test_module_mask(&lexed.tokens);
    let ctx = FileCtx {
        path: rel_path,
        crate_name,
        tokens: &lexed.tokens,
        in_test: &mask,
    };
    let mut raw = Vec::new();
    raw.extend(passes::determinism::run(&ctx));
    raw.extend(passes::panics::run(&ctx));
    raw.extend(passes::taxonomy::run(&ctx));
    raw.sort();
    let directives = parse_directives(&lexed.comments);
    apply_suppressions(rel_path, raw, &directives)
}

/// Crate name for a workspace-relative path: `crates/<name>/…` maps to
/// `<name>`, everything else (root `src/`, `examples/`) to `hyperm`.
pub fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("hyperm")
}

/// Scannable Rust sources under `root`, workspace-relative, sorted (the
/// lint's own output must be deterministic too).
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["src", "crates", "examples"] {
        walk(&root.join(top), root, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, root, out);
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// Run every pass over the workspace at `root`.
pub fn run_workspace(root: &Path) -> Report {
    let mut report = Report::default();
    for rel in workspace_sources(root) {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        report.files_scanned += 1;
        let (mut viol, mut supp) = lint_source(&rel_str, crate_of(&rel_str), &src);
        report.violations.append(&mut viol);
        report.suppressed.append(&mut supp);
    }
    report.violations.extend(passes::facade::run(root));
    report.violations.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/core/src/query/range.rs"), "core");
        assert_eq!(crate_of("src/lib.rs"), "hyperm");
        assert_eq!(crate_of("examples/quickstart.rs"), "hyperm");
    }
}
