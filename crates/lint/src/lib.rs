//! `hyperm-lint` — in-tree static analysis for the Hyper-M workspace.
//!
//! The correctness story of this repo (Theorems 3.1/4.1, the parallel ==
//! serial and faults-off == legacy acceptance suites, byte-equal
//! telemetry streams) rests on **bit-identical replay**. Nothing in the
//! type system stops a future change from iterating a `HashMap` into a
//! result, reading the wall clock on a scoring path, or inventing a
//! telemetry event name the forensics tooling has never heard of — so
//! this crate machine-checks those project invariants the way mature
//! systems repos encode review folklore as custom lints. Dep-free (the
//! workspace builds offline) and token-level: a small lexer
//! ([`lexer`]), not a full parser.
//!
//! Passes (rule slugs in parentheses):
//! * **determinism** ([`passes::determinism`]) — unordered-container
//!   iteration (`det-unordered-iter`), wall-clock reads
//!   (`det-wall-clock`) and unseeded RNG (`det-unseeded-rng`) in
//!   result-affecting crates;
//! * **panic-path** ([`passes::panics`]) — `unwrap`/`expect`
//!   (`panic-unwrap`), `panic!`-family macros (`panic-explicit`) and
//!   direct indexing (`panic-index`) on the query/publish/repair hot
//!   paths;
//! * **telemetry taxonomy** ([`passes::taxonomy`]) — emit-site names
//!   must come from `hyperm_telemetry::names::ALL` (`tel-taxonomy`);
//! * **facade** ([`passes::facade`]) — root public types of core crates
//!   are re-exported from `hyperm` or excluded in
//!   `crates/lint/facade.allow` (`facade-export`);
//! * **concurrency** ([`passes::concurrency`]) — lock-acquisition-order
//!   cycles over a workspace-wide graph (`conc-lock-order`), blocking
//!   calls while a guard is live (`conc-blocking-hold`), and guards
//!   crossing `spawn`/closure boundaries (`conc-guard-across-spawn`);
//! * **wire-taint** ([`passes::wiretaint`]) — frame-derived values
//!   reaching allocations, indexes or unchecked casts without
//!   validation in the wire-decode files (`wire-taint`);
//! * **protocol** ([`passes::protocol`]) — kind table, reply pairing,
//!   dispatch and retry set must agree (`proto-exhaustive`,
//!   `proto-pairing`, `proto-retry-set`), checked against the real
//!   `hyperm-can`/`hyperm-transport` constants linked in at build time.
//!
//! Suppressions: `// hyperm-lint: allow(<rule>) — <reason>` on the
//! flagged line or the line above; `allow-file(<rule>) — <reason>`
//! anywhere for a whole file. The reason is mandatory, and unused or
//! malformed directives are themselves violations (`lint-directive`).
//!
//! Run `cargo run -p hyperm-lint --release`; it prints
//! `file:line: rule: message` diagnostics, writes `LINT_report.json`,
//! and exits non-zero on violations.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod passes;
pub mod report;

use passes::concurrency::LockEdge;
use passes::FileCtx;
use report::{apply_suppressions, parse_directives, Report, Suppressed, Violation};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Every rule slug the tool can emit, in stable report order.
pub const RULES: &[&str] = &[
    "det-unordered-iter",
    "det-wall-clock",
    "det-unseeded-rng",
    "panic-unwrap",
    "panic-explicit",
    "panic-index",
    "tel-taxonomy",
    "facade-export",
    "conc-lock-order",
    "conc-blocking-hold",
    "conc-guard-across-spawn",
    "wire-taint",
    "proto-exhaustive",
    "proto-pairing",
    "proto-retry-set",
    "lint-directive",
];

/// Pass names, in the order `timings_ms` reports them.
pub const PASSES: &[&str] = &[
    "determinism",
    "panics",
    "taxonomy",
    "concurrency",
    "wiretaint",
    "facade",
    "protocol",
];

/// Per-pass wall-time accumulator (the lint itself is not a
/// result-affecting crate, so `Instant` is fair game here).
#[derive(Debug, Default)]
struct PassClock {
    spent: std::collections::BTreeMap<&'static str, Duration>,
}

impl PassClock {
    fn time<T>(&mut self, pass: &'static str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        *self.spent.entry(pass).or_default() += t0.elapsed();
        out
    }

    fn timings(&self) -> Vec<(String, f64)> {
        PASSES
            .iter()
            .map(|&p| {
                let ms = self
                    .spent
                    .get(p)
                    .map(|d| d.as_secs_f64() * 1000.0)
                    .unwrap_or(0.0);
                (p.to_string(), ms)
            })
            .collect()
    }
}

/// Directory names never scanned: generated output, vendored stand-ins,
/// test code (integration tests may do anything), and lint fixtures.
const SKIP_DIRS: &[&str] = &["target", "vendor", "tests", "benches", "fixtures", ".git"];

/// Run the per-file passes over one prepared token stream: raw
/// violations plus the file's lock-order edges. Shared by
/// [`lint_source`] (which resolves cycles locally) and
/// [`run_workspace`] (which resolves them globally, once).
fn analyze(ctx: &FileCtx<'_>, clock: &mut PassClock) -> (Vec<Violation>, Vec<LockEdge>) {
    let mut raw = Vec::new();
    raw.extend(clock.time("determinism", || passes::determinism::run(ctx)));
    raw.extend(clock.time("panics", || passes::panics::run(ctx)));
    raw.extend(clock.time("taxonomy", || passes::taxonomy::run(ctx)));
    let (conc, edges) = clock.time("concurrency", || passes::concurrency::run(ctx));
    raw.extend(conc);
    raw.extend(clock.time("wiretaint", || passes::wiretaint::run(ctx)));
    (raw, edges)
}

/// Lint one source text as if it lived at `rel_path` in crate
/// `crate_name`. Returns surviving violations and applied suppressions.
/// This is the unit the fixture tests drive. Lock-order cycles are
/// resolved over this file's edges alone; the workspace driver merges
/// edges across files instead, so cross-file inversions surface there.
pub fn lint_source(
    rel_path: &str,
    crate_name: &str,
    src: &str,
) -> (Vec<Violation>, Vec<Suppressed>) {
    let lexed = lexer::lex(src);
    let mask = lexer::test_module_mask(&lexed.tokens);
    let ctx = FileCtx {
        path: rel_path,
        crate_name,
        tokens: &lexed.tokens,
        in_test: &mask,
    };
    let mut clock = PassClock::default();
    let (mut raw, edges) = analyze(&ctx, &mut clock);
    raw.extend(passes::concurrency::order_cycles(&edges));
    raw.sort();
    let directives = parse_directives(&lexed.comments);
    apply_suppressions(rel_path, raw, &directives)
}

/// Crate name for a workspace-relative path: `crates/<name>/…` maps to
/// `<name>`, everything else (root `src/`, `examples/`) to `hyperm`.
pub fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("hyperm")
}

/// Scannable Rust sources under `root`, workspace-relative, sorted (the
/// lint's own output must be deterministic too).
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["src", "crates", "examples"] {
        walk(&root.join(top), root, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, root, out);
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// Run every pass over the workspace at `root`.
///
/// Per-file passes run first, accumulating every file's lock-order
/// edges; cycle detection then runs once over the merged graph so
/// inversions *between* files are caught, and each cycle violation is
/// attributed (and suppressible) at its acquisition site. The
/// workspace-level passes (facade, protocol) append after suppression —
/// their findings are structural and are fixed at the source of truth,
/// not allowed away.
pub fn run_workspace(root: &Path) -> Report {
    let mut report = Report::default();
    let mut clock = PassClock::default();
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut pending = Vec::new();
    for rel in workspace_sources(root) {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        report.files_scanned += 1;
        let lexed = lexer::lex(&src);
        let mask = lexer::test_module_mask(&lexed.tokens);
        let ctx = FileCtx {
            path: &rel_str,
            crate_name: crate_of(&rel_str),
            tokens: &lexed.tokens,
            in_test: &mask,
        };
        let (raw, mut file_edges) = analyze(&ctx, &mut clock);
        edges.append(&mut file_edges);
        pending.push((rel_str, raw, parse_directives(&lexed.comments)));
    }
    let mut cycles = clock.time("concurrency", || passes::concurrency::order_cycles(&edges));
    for (rel_str, mut raw, directives) in pending {
        let (mine, rest): (Vec<_>, Vec<_>) = cycles.into_iter().partition(|v| v.file == rel_str);
        cycles = rest;
        raw.extend(mine);
        raw.sort();
        let (mut viol, mut supp) = apply_suppressions(&rel_str, raw, &directives);
        report.violations.append(&mut viol);
        report.suppressed.append(&mut supp);
    }
    report
        .violations
        .extend(clock.time("facade", || passes::facade::run(root)));
    report
        .violations
        .extend(clock.time("protocol", || passes::protocol::run(root)));
    report.violations.sort();
    report.timings_ms = clock.timings();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/core/src/query/range.rs"), "core");
        assert_eq!(crate_of("src/lib.rs"), "hyperm");
        assert_eq!(crate_of("examples/quickstart.rs"), "hyperm");
    }
}
