//! Violations, suppression directives, and the JSON report.

use crate::lexer::Comment;
use hyperm_telemetry::json::JsonObj;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule slug (e.g. `det-unordered-iter`).
    pub rule: &'static str,
    /// Human message.
    pub message: String,
}

impl Violation {
    /// `file:line: rule: message` — the human diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A suppression that matched a violation (kept for the report).
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The violation that was suppressed.
    pub violation: Violation,
    /// The justification from the directive.
    pub reason: String,
}

/// Parsed `hyperm-lint:` directives of one file.
#[derive(Debug, Default)]
pub struct Directives {
    /// `allow(rule)` directives: (comment line, rule, reason).
    pub line_allows: Vec<(u32, String, String)>,
    /// `allow-file(rule)` directives: (rule, reason).
    pub file_allows: Vec<(String, String)>,
    /// Malformed directives: (line, problem).
    pub malformed: Vec<(u32, String)>,
}

/// Parse suppression directives out of a file's comments.
///
/// Syntax (one per comment):
/// `// hyperm-lint: allow(<rule>[, <rule>…]) — <reason>` suppresses a
/// violation of `<rule>` on the same line or the next line;
/// `allow-file(<rule>) — <reason>` suppresses the rule in the whole file.
/// The reason is mandatory — a suppression without a why is itself a
/// violation (`lint-directive`).
pub fn parse_directives(comments: &[Comment]) -> Directives {
    let mut out = Directives::default();
    for c in comments {
        // Doc comments (`///`, `//!`, `/** … */`) never carry directives —
        // they *describe* the syntax (this crate's own docs do).
        if c.text.starts_with('/') || c.text.starts_with('!') || c.text.starts_with('*') {
            continue;
        }
        let Some(pos) = c.text.find("hyperm-lint:") else {
            continue;
        };
        let rest = c.text[pos + "hyperm-lint:".len()..].trim_start();
        let file_scope = rest.starts_with("allow-file(");
        let line_scope = rest.starts_with("allow(");
        if !file_scope && !line_scope {
            out.malformed.push((
                c.line,
                format!(
                    "unrecognised directive {:?} (expected allow(...) or allow-file(...))",
                    rest
                ),
            ));
            continue;
        }
        let open = rest.find('(').unwrap();
        let Some(close) = rest.find(')') else {
            out.malformed
                .push((c.line, "unclosed rule list".to_string()));
            continue;
        };
        let rules: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            out.malformed.push((c.line, "empty rule list".to_string()));
            continue;
        }
        // Reason: everything after the `)`, minus separator dashes.
        let reason = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '-', ':'])
            .trim()
            .to_string();
        if reason.is_empty() {
            out.malformed.push((
                c.line,
                "suppression without a justification (add `— <reason>`)".to_string(),
            ));
            continue;
        }
        for rule in rules {
            if file_scope {
                out.file_allows.push((rule, reason.clone()));
            } else {
                out.line_allows.push((c.line, rule, reason.clone()));
            }
        }
    }
    out
}

/// Apply `directives` to raw `violations`: returns (surviving, suppressed)
/// and marks used directives. Unused line-level directives become
/// `lint-directive` violations — a stale suppression hides nothing but
/// misleads readers.
pub fn apply_suppressions(
    file: &str,
    violations: Vec<Violation>,
    directives: &Directives,
) -> (Vec<Violation>, Vec<Suppressed>) {
    let mut used = vec![false; directives.line_allows.len()];
    let mut surviving = Vec::new();
    let mut suppressed = Vec::new();
    for v in violations {
        // A line directive matches on the violation's own line or the
        // line directly above it.
        let line_hit = directives
            .line_allows
            .iter()
            .position(|(l, rule, _)| (*l == v.line || *l + 1 == v.line) && rule == v.rule);
        if let Some(ix) = line_hit {
            used[ix] = true;
            suppressed.push(Suppressed {
                reason: directives.line_allows[ix].2.clone(),
                violation: v,
            });
            continue;
        }
        if let Some((_, reason)) = directives.file_allows.iter().find(|(r, _)| r == v.rule) {
            suppressed.push(Suppressed {
                reason: reason.clone(),
                violation: v,
            });
            continue;
        }
        surviving.push(v);
    }
    for (ix, (line, rule, _)) in directives.line_allows.iter().enumerate() {
        if !used[ix] {
            surviving.push(Violation {
                file: file.to_string(),
                line: *line,
                rule: "lint-directive",
                message: format!("unused suppression for `{rule}` — nothing to allow here"),
            });
        }
    }
    for (line, problem) in &directives.malformed {
        surviving.push(Violation {
            file: file.to_string(),
            line: *line,
            rule: "lint-directive",
            message: problem.clone(),
        });
    }
    (surviving, suppressed)
}

/// The full run result.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived suppression, sorted by (file, line).
    pub violations: Vec<Violation>,
    /// Suppressed (justified) findings.
    pub suppressed: Vec<Suppressed>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Per-pass wall time, (pass name, milliseconds), in fixed pass
    /// order. Informational: the baseline gate ignores this field.
    pub timings_ms: Vec<(String, f64)>,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render `LINT_report.json`.
    pub fn to_json(&self, rules: &[&str]) -> String {
        let viols: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                JsonObj::new()
                    .s("file", &v.file)
                    .u("line", v.line as u64)
                    .s("rule", v.rule)
                    .s("message", &v.message)
                    .render()
            })
            .collect();
        let supp: Vec<String> = self
            .suppressed
            .iter()
            .map(|s| {
                JsonObj::new()
                    .s("file", &s.violation.file)
                    .u("line", s.violation.line as u64)
                    .s("rule", s.violation.rule)
                    .s("reason", &s.reason)
                    .render()
            })
            .collect();
        let rule_list: Vec<String> = rules.iter().map(|r| format!("\"{r}\"")).collect();
        let mut timings = JsonObj::new();
        for (pass, ms) in &self.timings_ms {
            timings = timings.f(pass, *ms, 3);
        }
        JsonObj::new()
            .s("tool", "hyperm-lint")
            .u("files_scanned", self.files_scanned as u64)
            .b("clean", self.is_clean())
            .u("violation_count", self.violations.len() as u64)
            .u("suppressed_count", self.suppressed.len() as u64)
            .obj("timings_ms", timings)
            .arr("rules", &rule_list)
            .arr("violations", &viols)
            .arr("suppressed", &supp)
            .render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(line: u32, text: &str) -> Comment {
        Comment {
            line,
            text: text.to_string(),
        }
    }

    fn viol(line: u32, rule: &'static str) -> Violation {
        Violation {
            file: "f.rs".into(),
            line,
            rule,
            message: "m".into(),
        }
    }

    #[test]
    fn line_allow_suppresses_same_and_next_line() {
        let d = parse_directives(&[comment(
            9,
            " hyperm-lint: allow(panic-unwrap) — bounded by invariant",
        )]);
        let (rest, supp) = apply_suppressions("f.rs", vec![viol(10, "panic-unwrap")], &d);
        assert!(rest.is_empty());
        assert_eq!(supp.len(), 1);
        assert_eq!(supp[0].reason, "bounded by invariant");

        let (rest, supp) = apply_suppressions("f.rs", vec![viol(9, "panic-unwrap")], &d);
        assert!(rest.is_empty());
        assert_eq!(supp.len(), 1);
    }

    #[test]
    fn missing_reason_and_unused_allow_are_violations() {
        let d = parse_directives(&[comment(1, "hyperm-lint: allow(det-wall-clock)")]);
        let (rest, _) = apply_suppressions("f.rs", vec![], &d);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].rule, "lint-directive");

        let d = parse_directives(&[comment(1, "hyperm-lint: allow(det-wall-clock) — why not")]);
        let (rest, _) = apply_suppressions("f.rs", vec![], &d);
        assert_eq!(rest.len(), 1, "unused allow must surface");
        assert!(rest[0].message.contains("unused"));
    }

    #[test]
    fn file_allow_covers_whole_file_without_unused_tracking() {
        let d = parse_directives(&[comment(
            2,
            "hyperm-lint: allow-file(panic-index) — slot ids are invariant-checked",
        )]);
        let (rest, supp) = apply_suppressions(
            "f.rs",
            vec![viol(50, "panic-index"), viol(90, "panic-index")],
            &d,
        );
        assert!(rest.is_empty());
        assert_eq!(supp.len(), 2);
    }

    #[test]
    fn multi_rule_allow() {
        let d = parse_directives(&[comment(
            4,
            "hyperm-lint: allow(det-wall-clock, panic-unwrap) — host-only metric",
        )]);
        let (rest, supp) = apply_suppressions(
            "f.rs",
            vec![viol(5, "det-wall-clock"), viol(5, "panic-unwrap")],
            &d,
        );
        assert!(rest.is_empty());
        assert_eq!(supp.len(), 2);
    }
}
