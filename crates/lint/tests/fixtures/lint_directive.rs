// Fixture: a suppression without a justification (lint-directive).
// hyperm-lint: allow(panic-unwrap)
pub fn fine() {}
