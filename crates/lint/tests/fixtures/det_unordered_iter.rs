// Fixture: iteration over a HashMap must be flagged (det-unordered-iter).
use std::collections::HashMap;

pub fn tally() -> f64 {
    let scores: HashMap<usize, f64> = HashMap::new();
    let mut total = 0.0;
    for (_k, v) in scores.iter() {
        total += *v;
    }
    total
}
