use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

pub struct Pool {
    conns: Mutex<BTreeMap<u32, u32>>,
    routes: Mutex<BTreeMap<u32, u32>>,
}

impl Pool {
    /// Same order everywhere: edges conns->routes only, no cycle.
    pub fn forward_a(&self) {
        let a = self.conns.lock().unwrap();
        let b = self.routes.lock().unwrap();
        drop(b);
        drop(a);
    }

    pub fn forward_b(&self) {
        let a = self.conns.lock().unwrap();
        let b = self.routes.lock().unwrap();
        drop(b);
        drop(a);
    }

    /// Guard scoped to the block; the sleep runs lock-free.
    pub fn nap(&self) {
        let n = {
            let g = self.conns.lock().unwrap();
            g.len() as u64
        };
        std::thread::sleep(Duration::from_millis(n));
    }
}
