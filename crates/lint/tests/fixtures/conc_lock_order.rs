use std::collections::BTreeMap;
use std::sync::Mutex;

pub struct Pool {
    conns: Mutex<BTreeMap<u32, u32>>,
    routes: Mutex<BTreeMap<u32, u32>>,
}

impl Pool {
    pub fn forward(&self) {
        let a = self.conns.lock().unwrap();
        let b = self.routes.lock().unwrap(); // inner: conns -> routes
        drop(b);
        drop(a);
    }

    pub fn backward(&self) {
        let b = self.routes.lock().unwrap();
        let a = self.conns.lock().unwrap(); // inner: routes -> conns
        drop(a);
        drop(b);
    }
}
