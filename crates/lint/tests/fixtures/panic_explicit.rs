// Fixture: explicit panic on a hot path (panic-explicit).
pub fn nope() {
    panic!("boom");
}
