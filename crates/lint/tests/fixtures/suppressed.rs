// Fixture: a justified suppression silences the violation.
pub fn first(v: &[u64]) -> u64 {
    // hyperm-lint: allow(panic-unwrap) — fixture demonstrating a justified suppression
    *v.first().unwrap()
}
