// Fixture: a non-canonical event name at an emit site (tel-taxonomy).
pub fn trace(tel: &hyperm_telemetry::Recorder) {
    tel.event(hyperm_telemetry::SpanId::NONE, "mystery_event", vec![]);
}
