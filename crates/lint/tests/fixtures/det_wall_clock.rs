// Fixture: host wall-clock read in a result-affecting crate (det-wall-clock).
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
