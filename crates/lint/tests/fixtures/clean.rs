// Fixture: deterministic, panic-free, canonically named — lint-clean.
use std::collections::BTreeMap;

pub fn tally(scores: &BTreeMap<usize, f64>) -> f64 {
    scores.values().sum()
}
