pub fn decode(r: &mut Reader<'_>) -> Result<Vec<u8>, CodecError> {
    let n = r.u32()? as usize;
    r.need(n)?;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(r.take(n)?);
    Ok(out)
}

pub fn offset(r: &mut Reader<'_>) -> Result<usize, CodecError> {
    let off = r.u64()?;
    usize::try_from(off).map_err(|_| CodecError::CorruptField("offset"))
}
