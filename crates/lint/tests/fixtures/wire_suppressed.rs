pub fn decode(r: &mut Reader<'_>) -> Result<Vec<u8>, CodecError> {
    let n = r.u32()? as usize;
    // hyperm-lint: allow(wire-taint) — fixture: n is bounded by the framing layer's MAX_FRAME check
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(r.take(n)?);
    Ok(out)
}
