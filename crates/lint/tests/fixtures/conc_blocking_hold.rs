use std::sync::Mutex;
use std::time::Duration;

pub struct Slot {
    state: Mutex<u32>,
}

impl Slot {
    pub fn slow(&self) {
        let g = self.state.lock().unwrap();
        std::thread::sleep(Duration::from_millis(1)); // blocks with g live
        drop(g);
    }
}
