pub fn decode(r: &mut Reader<'_>) -> Result<Vec<u8>, CodecError> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n); // attacker-sized allocation
    out.extend_from_slice(r.take(n)?);
    Ok(out)
}

pub fn offset(r: &mut Reader<'_>) -> Result<usize, CodecError> {
    let off = r.u64()?;
    Ok(off as usize) // 64-bit wire value truncated on 32-bit hosts
}
