use std::sync::Mutex;
use std::time::Duration;

pub struct Slot {
    state: Mutex<u32>,
}

impl Slot {
    pub fn justified(&self) {
        let g = self.state.lock().unwrap();
        // hyperm-lint: allow(conc-blocking-hold) — fixture: the hold is the point of the test
        std::thread::sleep(Duration::from_millis(1));
        drop(g);
    }
}
