pub struct Exported;
pub struct Hidden;
pub struct Excluded;
