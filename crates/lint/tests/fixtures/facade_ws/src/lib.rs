pub use hyperm_can::Exported;
