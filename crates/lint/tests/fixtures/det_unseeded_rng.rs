// Fixture: ambient-entropy RNG construction (det-unseeded-rng).
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    4
}
