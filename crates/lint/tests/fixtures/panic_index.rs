// Fixture: direct slice indexing on a hot path (panic-index).
pub fn pick(v: &[u64], i: usize) -> u64 {
    v[i]
}
