use std::sync::Mutex;

pub struct Slot {
    state: Mutex<u32>,
}

impl Slot {
    pub fn bad(&self) {
        let g = self.state.lock().unwrap();
        std::thread::spawn(move || println!("{}", *g)); // guard crosses spawn
    }
}
