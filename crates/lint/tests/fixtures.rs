//! Fixture tests: one deliberately bad snippet per rule, asserted at the
//! exact line; a clean fixture; a justified-suppression fixture; a facade
//! fixture workspace; an injection test that plants a `HashMap` iteration
//! into a real hot-path source; and a self-run asserting the workspace
//! itself is lint-clean.

use hyperm_lint::{lint_source, passes, run_workspace};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint a fixture as if it lived on a hot path of a result-affecting
/// crate, so every pass is active.
fn lint_hot(name: &str) -> (Vec<hyperm_lint::report::Violation>, usize) {
    let src = fixture(name);
    let (violations, suppressed) = lint_source("crates/core/src/query/fixture.rs", "core", &src);
    (violations, suppressed.len())
}

fn assert_single(name: &str, rule: &str, line: u32) {
    let (violations, _) = lint_hot(name);
    assert_eq!(
        violations.len(),
        1,
        "{name}: expected exactly one violation, got {violations:?}"
    );
    assert_eq!(violations[0].rule, rule, "{name}: wrong rule");
    assert_eq!(violations[0].line, line, "{name}: wrong line");
}

#[test]
fn det_unordered_iter_fixture() {
    assert_single("det_unordered_iter.rs", "det-unordered-iter", 7);
}

#[test]
fn det_wall_clock_fixture() {
    assert_single("det_wall_clock.rs", "det-wall-clock", 5);
}

#[test]
fn det_unseeded_rng_fixture() {
    assert_single("det_unseeded_rng.rs", "det-unseeded-rng", 3);
}

#[test]
fn panic_unwrap_fixture() {
    assert_single("panic_unwrap.rs", "panic-unwrap", 3);
}

#[test]
fn panic_explicit_fixture() {
    assert_single("panic_explicit.rs", "panic-explicit", 3);
}

#[test]
fn panic_index_fixture() {
    assert_single("panic_index.rs", "panic-index", 3);
}

#[test]
fn tel_taxonomy_fixture() {
    assert_single("tel_taxonomy.rs", "tel-taxonomy", 3);
}

#[test]
fn lint_directive_fixture() {
    assert_single("lint_directive.rs", "lint-directive", 2);
}

#[test]
fn clean_fixture_is_clean() {
    let (violations, suppressed) = lint_hot("clean.rs");
    assert!(
        violations.is_empty(),
        "clean fixture flagged: {violations:?}"
    );
    assert_eq!(suppressed, 0);
}

#[test]
fn justified_suppression_is_honoured() {
    let (violations, suppressed) = lint_hot("suppressed.rs");
    assert!(
        violations.is_empty(),
        "suppressed fixture flagged: {violations:?}"
    );
    assert_eq!(suppressed, 1, "the suppression must be recorded as used");
}

#[test]
fn determinism_pass_is_scoped_to_result_crates() {
    // The same bad source in a non-result crate (datagen) is not flagged.
    let src = fixture("det_unordered_iter.rs");
    let (violations, _) = lint_source("crates/datagen/src/lib.rs", "datagen", &src);
    assert!(
        violations.is_empty(),
        "datagen is not a result crate: {violations:?}"
    );
}

#[test]
fn panic_pass_is_scoped_to_hot_paths() {
    let src = fixture("panic_unwrap.rs");
    let (violations, _) = lint_source("crates/core/src/score.rs", "core", &src);
    assert!(
        violations.is_empty(),
        "score.rs is not a hot path: {violations:?}"
    );
}

#[test]
fn facade_fixture_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/facade_ws");
    let mut violations = passes::facade::run(&root);
    violations.sort();
    // `Exported` is flattened, `Excluded` is manifested with a reason;
    // `Hidden` must be flagged at its declaration line, and the
    // reason-less manifest entry is a lint-directive violation.
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert_eq!(violations[0].file, "crates/can/src/lib.rs");
    assert_eq!(violations[0].rule, "facade-export");
    assert_eq!(violations[0].line, 2);
    assert!(violations[0].message.contains("can::Hidden"));
    assert_eq!(violations[1].file, "crates/lint/facade.allow");
    assert_eq!(violations[1].rule, "lint-directive");
    assert_eq!(violations[1].line, 2);
}

/// Acceptance criterion: a deliberately introduced `HashMap` iteration in
/// a real `crates/core/src/query/` source is caught at the planted line.
#[test]
fn injected_hashmap_iteration_in_query_engine_is_caught() {
    let repo_root = workspace_root();
    let rel = "crates/core/src/query/engine.rs";
    let original = std::fs::read_to_string(repo_root.join(rel)).expect("read engine.rs");

    // The pristine source must be det-clean (suppressions included).
    let (violations, _) = lint_source(rel, "core", &original);
    let det: Vec<_> = violations
        .iter()
        .filter(|v| v.rule.starts_with("det-"))
        .collect();
    assert!(
        det.is_empty(),
        "engine.rs already has det violations: {det:?}"
    );

    // Plant a HashMap iteration at a known line past the end.
    let planted = format!(
        "{original}\nfn planted() -> f64 {{\n    let m: std::collections::HashMap<u32, f64> = \
         std::collections::HashMap::new();\n    let mut acc = 0.0;\n    for (_k, v) in m.iter() \
         {{\n        acc += *v;\n    }}\n    acc\n}}\n"
    );
    let loop_line = planted
        .lines()
        .position(|l| l.contains("for (_k, v) in m.iter()"))
        .expect("planted loop present") as u32
        + 1;
    let (violations, _) = lint_source(rel, "core", &planted);
    let det: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "det-unordered-iter")
        .collect();
    assert_eq!(det.len(), 1, "planted iteration not caught: {violations:?}");
    assert_eq!(det[0].line, loop_line, "wrong line for the planted loop");
}

/// The workspace itself must be lint-clean — the same invariant CI
/// enforces by running the binary.
#[test]
fn workspace_is_lint_clean() {
    let report = run_workspace(&workspace_root());
    let rendered: Vec<String> = report.violations.iter().map(|v| v.render()).collect();
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {} files",
        report.files_scanned
    );
    assert!(
        !report.suppressed.is_empty(),
        "expected the workspace's justified suppressions to be recorded"
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <root>/crates/lint")
        .to_path_buf()
}
