//! Fixture tests: one deliberately bad snippet per rule, asserted at the
//! exact line; a clean fixture; a justified-suppression fixture; a facade
//! fixture workspace; injection tests that plant a `HashMap` iteration
//! into a real hot-path source and a lock-order inversion into the real
//! TCP pool; and a self-run asserting the workspace itself is lint-clean.

use hyperm_lint::{lint_source, passes, run_workspace};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint a fixture as if it lived on a hot path of a result-affecting
/// crate, so every pass is active.
fn lint_hot(name: &str) -> (Vec<hyperm_lint::report::Violation>, usize) {
    let src = fixture(name);
    let (violations, suppressed) = lint_source("crates/core/src/query/fixture.rs", "core", &src);
    (violations, suppressed.len())
}

fn assert_single(name: &str, rule: &str, line: u32) {
    let (violations, _) = lint_hot(name);
    assert_eq!(
        violations.len(),
        1,
        "{name}: expected exactly one violation, got {violations:?}"
    );
    assert_eq!(violations[0].rule, rule, "{name}: wrong rule");
    assert_eq!(violations[0].line, line, "{name}: wrong line");
}

#[test]
fn det_unordered_iter_fixture() {
    assert_single("det_unordered_iter.rs", "det-unordered-iter", 7);
}

#[test]
fn det_wall_clock_fixture() {
    assert_single("det_wall_clock.rs", "det-wall-clock", 5);
}

#[test]
fn det_unseeded_rng_fixture() {
    assert_single("det_unseeded_rng.rs", "det-unseeded-rng", 3);
}

#[test]
fn panic_unwrap_fixture() {
    assert_single("panic_unwrap.rs", "panic-unwrap", 3);
}

#[test]
fn panic_explicit_fixture() {
    assert_single("panic_explicit.rs", "panic-explicit", 3);
}

#[test]
fn panic_index_fixture() {
    assert_single("panic_index.rs", "panic-index", 3);
}

#[test]
fn tel_taxonomy_fixture() {
    assert_single("tel_taxonomy.rs", "tel-taxonomy", 3);
}

#[test]
fn lint_directive_fixture() {
    assert_single("lint_directive.rs", "lint-directive", 2);
}

#[test]
fn clean_fixture_is_clean() {
    let (violations, suppressed) = lint_hot("clean.rs");
    assert!(
        violations.is_empty(),
        "clean fixture flagged: {violations:?}"
    );
    assert_eq!(suppressed, 0);
}

#[test]
fn justified_suppression_is_honoured() {
    let (violations, suppressed) = lint_hot("suppressed.rs");
    assert!(
        violations.is_empty(),
        "suppressed fixture flagged: {violations:?}"
    );
    assert_eq!(suppressed, 1, "the suppression must be recorded as used");
}

#[test]
fn determinism_pass_is_scoped_to_result_crates() {
    // The same bad source in a non-result crate (datagen) is not flagged.
    let src = fixture("det_unordered_iter.rs");
    let (violations, _) = lint_source("crates/datagen/src/lib.rs", "datagen", &src);
    assert!(
        violations.is_empty(),
        "datagen is not a result crate: {violations:?}"
    );
}

#[test]
fn panic_pass_is_scoped_to_hot_paths() {
    let src = fixture("panic_unwrap.rs");
    let (violations, _) = lint_source("crates/core/src/score.rs", "core", &src);
    assert!(
        violations.is_empty(),
        "score.rs is not a hot path: {violations:?}"
    );
}

#[test]
fn facade_fixture_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/facade_ws");
    let mut violations = passes::facade::run(&root);
    violations.sort();
    // `Exported` is flattened, `Excluded` is manifested with a reason;
    // `Hidden` must be flagged at its declaration line, and the
    // reason-less manifest entry is a lint-directive violation.
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert_eq!(violations[0].file, "crates/can/src/lib.rs");
    assert_eq!(violations[0].rule, "facade-export");
    assert_eq!(violations[0].line, 2);
    assert!(violations[0].message.contains("can::Hidden"));
    assert_eq!(violations[1].file, "crates/lint/facade.allow");
    assert_eq!(violations[1].rule, "lint-directive");
    assert_eq!(violations[1].line, 2);
}

/// Acceptance criterion: a deliberately introduced `HashMap` iteration in
/// a real `crates/core/src/query/` source is caught at the planted line.
#[test]
fn injected_hashmap_iteration_in_query_engine_is_caught() {
    let repo_root = workspace_root();
    let rel = "crates/core/src/query/engine.rs";
    let original = std::fs::read_to_string(repo_root.join(rel)).expect("read engine.rs");

    // The pristine source must be det-clean (suppressions included).
    let (violations, _) = lint_source(rel, "core", &original);
    let det: Vec<_> = violations
        .iter()
        .filter(|v| v.rule.starts_with("det-"))
        .collect();
    assert!(
        det.is_empty(),
        "engine.rs already has det violations: {det:?}"
    );

    // Plant a HashMap iteration at a known line past the end.
    let planted = format!(
        "{original}\nfn planted() -> f64 {{\n    let m: std::collections::HashMap<u32, f64> = \
         std::collections::HashMap::new();\n    let mut acc = 0.0;\n    for (_k, v) in m.iter() \
         {{\n        acc += *v;\n    }}\n    acc\n}}\n"
    );
    let loop_line = planted
        .lines()
        .position(|l| l.contains("for (_k, v) in m.iter()"))
        .expect("planted loop present") as u32
        + 1;
    let (violations, _) = lint_source(rel, "core", &planted);
    let det: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "det-unordered-iter")
        .collect();
    assert_eq!(det.len(), 1, "planted iteration not caught: {violations:?}");
    assert_eq!(det[0].line, loop_line, "wrong line for the planted loop");
}

/// Lint a fixture at an arbitrary path (the concurrency pass is
/// path-agnostic; the wire-taint pass keys on the wire files).
fn lint_at(
    path: &str,
    crate_name: &str,
    name: &str,
) -> (Vec<hyperm_lint::report::Violation>, usize) {
    let src = fixture(name);
    let (violations, suppressed) = lint_source(path, crate_name, &src);
    (violations, suppressed.len())
}

#[test]
fn conc_lock_order_fixture() {
    // Both halves of the inversion are reported, each at its inner
    // acquisition line.
    let (violations, _) = lint_at(
        "crates/transport/src/fixture.rs",
        "transport",
        "conc_lock_order.rs",
    );
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(
        violations.iter().all(|v| v.rule == "conc-lock-order"),
        "{violations:?}"
    );
    assert_eq!(violations[0].line, 12, "forward inversion line");
    assert_eq!(violations[1].line, 19, "backward inversion line");
}

#[test]
fn conc_blocking_hold_fixture() {
    let (violations, _) = lint_at(
        "crates/transport/src/fixture.rs",
        "transport",
        "conc_blocking_hold.rs",
    );
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, "conc-blocking-hold");
    assert_eq!(violations[0].line, 11);
}

#[test]
fn conc_guard_across_spawn_fixture() {
    let (violations, _) = lint_at(
        "crates/transport/src/fixture.rs",
        "transport",
        "conc_guard_across_spawn.rs",
    );
    assert!(!violations.is_empty(), "spawn capture not caught");
    assert!(
        violations
            .iter()
            .all(|v| v.rule == "conc-guard-across-spawn" && v.line == 10),
        "{violations:?}"
    );
}

#[test]
fn conc_clean_fixture_is_clean() {
    let (violations, suppressed) = lint_at(
        "crates/transport/src/fixture.rs",
        "transport",
        "conc_clean.rs",
    );
    assert!(
        violations.is_empty(),
        "clean conc fixture flagged: {violations:?}"
    );
    assert_eq!(suppressed, 0);
}

#[test]
fn conc_suppression_is_honoured() {
    let (violations, suppressed) = lint_at(
        "crates/transport/src/fixture.rs",
        "transport",
        "conc_suppressed.rs",
    );
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(
        suppressed, 1,
        "the conc suppression must be recorded as used"
    );
}

#[test]
fn wire_taint_fixture() {
    // Linted as the real codec path so the pass is active: the
    // unvalidated `with_capacity` and the wide `as usize` cast.
    let (violations, _) = lint_at("crates/can/src/codec.rs", "can", "wire_taint.rs");
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(
        violations.iter().all(|v| v.rule == "wire-taint"),
        "{violations:?}"
    );
    assert_eq!(violations[0].line, 3, "with_capacity sink line");
    assert_eq!(violations[1].line, 10, "wide-cast line");
}

#[test]
fn wire_clean_fixture_is_clean() {
    let (violations, suppressed) = lint_at("crates/can/src/codec.rs", "can", "wire_clean.rs");
    assert!(
        violations.is_empty(),
        "validated decode flagged: {violations:?}"
    );
    assert_eq!(suppressed, 0);
}

#[test]
fn wire_suppression_is_honoured() {
    let (violations, suppressed) = lint_at("crates/can/src/codec.rs", "can", "wire_suppressed.rs");
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn wire_taint_pass_is_scoped_to_wire_files() {
    // The same tainted source anywhere else is not the wire boundary.
    let (violations, _) = lint_at("crates/core/src/score.rs", "core", "wire_taint.rs");
    assert!(
        violations.is_empty(),
        "wire-taint leaked off the wire files: {violations:?}"
    );
}

// ---------------------------------------------------------------------------
// Protocol-consistency: synthetic tables against doctored sources.
// ---------------------------------------------------------------------------

fn proto_tables() -> passes::protocol::ProtoTables {
    passes::protocol::ProtoTables {
        all: vec![
            (0, "Hello".into()),
            (1, "Join".into()),
            (2, "JoinAck".into()),
        ],
        idempotent: vec![1],
        resendable: vec![1],
        reply: vec![(1, 2)],
        unpaired_ok: vec![0],
    }
}

fn toks(src: &str) -> Vec<hyperm_lint::lexer::Token> {
    hyperm_lint::lexer::lex(src).tokens
}

const GOOD_CODEC: &str = "pub mod kind {\n    pub const HELLO: u8 = 0;\n    pub const JOIN: u8 = 1;\n    pub const JOIN_ACK: u8 = 2;\n}\n";
const GOOD_RUNTIME: &str = "pub const RESENDABLE_KINDS: &[u8] = &[1];\nfn serve() {\n    match msg {\n        Message::Hello { .. } => {}\n        Message::Join { .. } => {}\n        Message::JoinAck { .. } => {}\n    }\n}\n";

#[test]
fn proto_consistent_tables_are_clean() {
    let v = passes::protocol::check(&proto_tables(), &toks(GOOD_CODEC), &toks(GOOD_RUNTIME));
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn proto_pairing_catches_const_drift() {
    // Source says JOIN = 9, the linked table says 1.
    let drifted = GOOD_CODEC.replace("JOIN: u8 = 1", "JOIN: u8 = 9");
    let v = passes::protocol::check(&proto_tables(), &toks(&drifted), &toks(GOOD_RUNTIME));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "proto-pairing");
    assert_eq!(v[0].line, 3, "must point at the drifted const");
}

#[test]
fn proto_pairing_catches_byte_collision() {
    let mut t = proto_tables();
    t.all.push((2, "Rogue".into()));
    t.reply.push((2, 2));
    let v = passes::protocol::check(&t, &toks(GOOD_CODEC), &toks(GOOD_RUNTIME));
    assert!(
        v.iter()
            .any(|v| v.rule == "proto-pairing" && v.message.contains("claimed by")),
        "{v:?}"
    );
}

#[test]
fn proto_exhaustive_catches_missing_dispatch_arm() {
    let gutted = GOOD_RUNTIME.replace("        Message::JoinAck { .. } => {}\n", "");
    let v = passes::protocol::check(&proto_tables(), &toks(GOOD_CODEC), &toks(&gutted));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "proto-exhaustive");
    assert!(v[0].message.contains("JoinAck"), "{v:?}");
}

#[test]
fn proto_retry_set_must_be_subset_of_idempotent() {
    let mut t = proto_tables();
    t.resendable = vec![1, 2];
    let v = passes::protocol::check(&t, &toks(GOOD_CODEC), &toks(GOOD_RUNTIME));
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "proto-retry-set");
    assert_eq!(v[0].line, 1, "must point at the RESENDABLE_KINDS const");
}

#[test]
fn proto_real_workspace_tables_are_consistent() {
    let v = passes::protocol::run(&workspace_root());
    assert!(v.is_empty(), "protocol drift in the real workspace: {v:?}");
}

/// Acceptance criterion: a lock-order inversion planted into the real
/// TCP pool source is caught at the planted lines, and the pristine
/// source carries no concurrency findings.
#[test]
fn injected_lock_order_inversion_in_tcp_pool_is_caught() {
    let repo_root = workspace_root();
    let rel = "crates/transport/src/tcp.rs";
    let original = std::fs::read_to_string(repo_root.join(rel)).expect("read tcp.rs");

    let (violations, _) = lint_source(rel, "transport", &original);
    let conc: Vec<_> = violations
        .iter()
        .filter(|v| v.rule.starts_with("conc-"))
        .collect();
    assert!(
        conc.is_empty(),
        "tcp.rs already has conc findings: {conc:?}"
    );

    // Plant both halves of an inversion against the pool's real
    // guard-returning helpers.
    let planted = format!(
        "{original}\nimpl Shared {{\n    fn planted_forward(&self) {{\n        let a = \
         self.lock_conns();\n        let b = self.lock_routes(); // planted-inner-forward\n        \
         drop(b);\n        drop(a);\n    }}\n    fn planted_backward(&self) {{\n        let b = \
         self.lock_routes();\n        let a = self.lock_conns(); // planted-inner-backward\n        \
         drop(a);\n        drop(b);\n    }}\n}}\n"
    );
    let line_of = |marker: &str| {
        planted
            .lines()
            .position(|l| l.contains(marker))
            .expect("marker present") as u32
            + 1
    };
    let (violations, _) = lint_source(rel, "transport", &planted);
    let conc: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "conc-lock-order")
        .collect();
    assert_eq!(
        conc.len(),
        2,
        "planted inversion not caught: {violations:?}"
    );
    assert_eq!(conc[0].line, line_of("planted-inner-forward"));
    assert_eq!(conc[1].line, line_of("planted-inner-backward"));
}

/// The workspace itself must be lint-clean — the same invariant CI
/// enforces by running the binary.
#[test]
fn workspace_is_lint_clean() {
    let report = run_workspace(&workspace_root());
    let rendered: Vec<String> = report.violations.iter().map(|v| v.render()).collect();
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {} files",
        report.files_scanned
    );
    assert!(
        !report.suppressed.is_empty(),
        "expected the workspace's justified suppressions to be recorded"
    );
    let timed: Vec<&str> = report.timings_ms.iter().map(|(p, _)| p.as_str()).collect();
    assert_eq!(
        timed,
        hyperm_lint::PASSES,
        "per-pass timings must cover every pass in order"
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <root>/crates/lint")
        .to_path_buf()
}
