//! Flat row-major dataset container.
//!
//! Every feature-vector collection in the workspace (a peer's local items,
//! the coefficients of one wavelet subspace across all items, k-means
//! centroids) is a [`Dataset`]: one contiguous `Vec<f64>` plus a dimension.
//! Keeping rows contiguous avoids the pointer-chasing of `Vec<Vec<f64>>` in
//! the hot distance loops.

/// A dense row-major matrix of `f64` feature vectors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    data: Vec<f64>,
    dim: usize,
}

impl Dataset {
    /// Create an empty dataset of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            data: Vec::new(),
            dim,
        }
    }

    /// Create an empty dataset with capacity reserved for `rows` rows.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            data: Vec::with_capacity(dim * rows),
            dim,
        }
    }

    /// Build a dataset from a flat buffer; `flat.len()` must be a multiple
    /// of `dim`.
    pub fn from_flat(flat: Vec<f64>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            flat.len() % dim,
            0,
            "flat buffer is not a whole number of rows"
        );
        Self { data: flat, dim }
    }

    /// Build a dataset from row slices (all must share the dimension).
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Self {
        assert!(!rows.is_empty(), "cannot infer dimension from zero rows");
        let dim = rows[0].as_ref().len();
        let mut data = Vec::with_capacity(dim * rows.len());
        for r in rows {
            assert_eq!(r.as_ref().len(), dim, "ragged rows");
            data.extend_from_slice(r.as_ref());
        }
        Self { data, dim }
    }

    /// Dimensionality of each row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the dataset holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Append one row.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row dimension mismatch");
        self.data.extend_from_slice(row);
    }

    /// Iterate over rows as slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// The underlying flat buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Consume into the underlying flat buffer.
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }

    /// A new dataset containing the selected rows (by index, in order).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::with_capacity(self.dim, indices.len());
        for &i in indices {
            out.push_row(self.row(i));
        }
        out
    }

    /// Per-dimension (min, max) bounds across all rows; `None` when empty.
    pub fn bounds(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = self.row(0).to_vec();
        let mut hi = lo.clone();
        for row in self.rows().skip(1) {
            for ((l, h), &x) in lo.iter_mut().zip(hi.iter_mut()).zip(row) {
                if x < *l {
                    *l = x;
                }
                if x > *h {
                    *h = x;
                }
            }
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let ds = Dataset::from_rows(&[[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.row(1), &[3.0, 4.0]);
        assert!(!ds.is_empty());
    }

    #[test]
    fn from_flat_roundtrip() {
        let ds = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.into_flat(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn push_and_mutate() {
        let mut ds = Dataset::new(3);
        ds.push_row(&[1.0, 2.0, 3.0]);
        ds.row_mut(0)[1] = 9.0;
        assert_eq!(ds.row(0), &[1.0, 9.0, 3.0]);
    }

    #[test]
    fn rows_iterator() {
        let ds = Dataset::from_rows(&[[1.0], [2.0]]);
        let sums: Vec<f64> = ds.rows().map(|r| r[0]).collect();
        assert_eq!(sums, vec![1.0, 2.0]);
    }

    #[test]
    fn select_subset() {
        let ds = Dataset::from_rows(&[[0.0], [1.0], [2.0], [3.0]]);
        let sub = ds.select(&[3, 1]);
        assert_eq!(sub.row(0), &[3.0]);
        assert_eq!(sub.row(1), &[1.0]);
    }

    #[test]
    fn bounds_computation() {
        let ds = Dataset::from_rows(&[[1.0, -5.0], [3.0, 2.0], [-2.0, 0.0]]);
        let (lo, hi) = ds.bounds().unwrap();
        assert_eq!(lo, vec![-2.0, -5.0]);
        assert_eq!(hi, vec![3.0, 2.0]);
        assert!(Dataset::new(2).bounds().is_none());
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_rejected() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0]];
        Dataset::from_rows(&rows);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn bad_flat_rejected() {
        Dataset::from_flat(vec![1.0, 2.0, 3.0], 2);
    }
}
