//! Cluster-sphere summaries (Section 3.1 of the paper).
//!
//! "Each representative cluster is described by a centroid and a radius,
//! along with a count of the data items in the cluster. The count is used
//! for estimating the relevance of a peer with respect to a query."
//!
//! These spheres are the *only* thing a Hyper-M peer publishes into the
//! overlay — the items themselves stay local, which is where the insertion
//! speed-up and the copyright/bandwidth benefits come from.

use crate::dataset::Dataset;
use crate::kmeans::KMeansResult;
use hyperm_geometry::vecmath::{dist, sq_dist};

/// A published summary: the smallest ball around a centroid that covers all
/// member items, plus the member count.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSphere {
    /// Cluster centroid in the (sub)space the clustering ran in.
    pub centroid: Vec<f64>,
    /// Max distance from the centroid to any member item.
    pub radius: f64,
    /// Number of items summarised (`items_c` in Eq. 1).
    pub items: usize,
}

impl ClusterSphere {
    /// Dimensionality of the space the sphere lives in.
    pub fn dim(&self) -> usize {
        self.centroid.len()
    }

    /// Whether `point` lies inside (or on) the sphere.
    pub fn contains(&self, point: &[f64]) -> bool {
        sq_dist(&self.centroid, point) <= self.radius * self.radius + 1e-12
    }

    /// Distance from the sphere centre to `point`.
    pub fn centre_dist(&self, point: &[f64]) -> f64 {
        dist(&self.centroid, point)
    }

    /// Grow the sphere so it also covers `point`, incrementing the count.
    ///
    /// Used by the post-creation insertion policies of Fig. 10c: a new item
    /// can be absorbed into its nearest existing cluster without
    /// republishing (stale count) or with a republish (fresh radius).
    pub fn absorb(&mut self, point: &[f64]) {
        let d = self.centre_dist(point);
        if d > self.radius {
            self.radius = d;
        }
        self.items += 1;
    }

    /// Approximate wire size of this summary in bytes: `dim` f64
    /// coordinates + radius + a 4-byte count.
    pub fn wire_bytes(&self) -> usize {
        8 * (self.dim() + 1) + 4
    }
}

/// Derive the published sphere set from a k-means result over `data`.
///
/// The radius of each sphere is the distance to its farthest member (so the
/// sphere provably covers the cluster — required for the no-false-dismissal
/// guarantee of Theorem 4.1); singleton-free empty clusters are skipped.
pub fn spheres_from_clustering(data: &Dataset, result: &KMeansResult) -> Vec<ClusterSphere> {
    let k = result.k();
    let mut radius2 = vec![0.0f64; k];
    let mut items = vec![0usize; k];
    for (i, row) in data.rows().enumerate() {
        let c = result.assignment[i] as usize;
        let d2 = sq_dist(row, result.centroids.row(c));
        if d2 > radius2[c] {
            radius2[c] = d2;
        }
        items[c] += 1;
    }
    (0..k)
        .filter(|&c| items[c] > 0)
        .map(|c| ClusterSphere {
            centroid: result.centroids.row(c).to_vec(),
            radius: radius2[c].sqrt(),
            items: items[c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansConfig};

    #[test]
    fn spheres_cover_their_members() {
        let rows: Vec<[f64; 2]> = (0..40)
            .map(|i| {
                let blob = if i < 20 { 0.0 } else { 8.0 };
                [blob + (i % 5) as f64 * 0.1, blob - (i % 3) as f64 * 0.1]
            })
            .collect();
        let ds = Dataset::from_rows(&rows);
        let res = kmeans(&ds, &KMeansConfig::new(2).with_seed(1));
        let spheres = spheres_from_clustering(&ds, &res);
        assert_eq!(spheres.len(), 2);
        assert_eq!(spheres.iter().map(|s| s.items).sum::<usize>(), 40);
        for (i, row) in ds.rows().enumerate() {
            let c = res.assignment[i] as usize;
            // Sphere index = order of non-empty clusters = cluster id here.
            assert!(spheres[c].contains(row), "row {i} escapes its sphere");
        }
    }

    #[test]
    fn singleton_cluster_has_zero_radius() {
        let ds = Dataset::from_rows(&[[1.0, 1.0]]);
        let res = kmeans(&ds, &KMeansConfig::new(1));
        let spheres = spheres_from_clustering(&ds, &res);
        assert_eq!(spheres[0].radius, 0.0);
        assert_eq!(spheres[0].items, 1);
    }

    #[test]
    fn contains_and_centre_dist() {
        let s = ClusterSphere {
            centroid: vec![0.0, 0.0],
            radius: 5.0,
            items: 10,
        };
        assert!(s.contains(&[3.0, 4.0]));
        assert!(!s.contains(&[3.1, 4.1]));
        assert_eq!(s.centre_dist(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn absorb_grows_radius_and_count() {
        let mut s = ClusterSphere {
            centroid: vec![0.0],
            radius: 1.0,
            items: 3,
        };
        s.absorb(&[0.5]); // inside: radius unchanged
        assert_eq!(s.radius, 1.0);
        assert_eq!(s.items, 4);
        s.absorb(&[2.0]); // outside: radius grows
        assert_eq!(s.radius, 2.0);
        assert_eq!(s.items, 5);
    }

    #[test]
    fn wire_size() {
        let s = ClusterSphere {
            centroid: vec![0.0; 16],
            radius: 1.0,
            items: 3,
        };
        assert_eq!(s.wire_bytes(), 8 * 17 + 4);
    }
}
