//! Mini-batch k-means (extension).
//!
//! The paper's peers hold 200–1000 items, where full Lloyd iterations are
//! cheap; but Hyper-M's pitch is "hundreds and even thousands of data items
//! stored on small devices", so this crate also ships the standard
//! mini-batch variant (Sculley 2010 style) for peers with much larger
//! collections: each step samples a batch, assigns it, and moves centroids
//! with per-centre learning rates `1/n_c`.

use crate::dataset::Dataset;
use crate::kmeans::{nearest_centroid, InitMethod, KMeansConfig, KMeansResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a mini-batch k-means run.
#[derive(Debug, Clone)]
pub struct MiniBatchConfig {
    /// Shared k-means parameters (`k`, seed, init).
    pub base: KMeansConfig,
    /// Items sampled per step.
    pub batch_size: usize,
    /// Number of batch steps.
    pub steps: usize,
}

impl MiniBatchConfig {
    /// Defaults: batch of 64, 200 steps.
    pub fn new(k: usize) -> Self {
        Self {
            base: KMeansConfig::new(k),
            batch_size: 64,
            steps: 200,
        }
    }
}

/// Run mini-batch k-means; the returned [`KMeansResult`] has the same shape
/// as the exact algorithm's so downstream code (sphere derivation, quality
/// metrics) is agnostic to which variant produced it.
pub fn minibatch_kmeans(data: &Dataset, config: &MiniBatchConfig) -> KMeansResult {
    assert!(config.base.k > 0, "k must be positive");
    assert!(!data.is_empty(), "cannot cluster an empty dataset");
    assert!(config.batch_size > 0, "batch size must be positive");
    let n = data.len();
    let k = config.base.k.min(n);
    let mut rng = StdRng::seed_from_u64(config.base.seed);

    // Seed with k distinct random rows (Forgy) or k-means++ on a sample.
    let mut centroids = match config.base.init {
        InitMethod::Forgy | InitMethod::PlusPlus => {
            // k-means++ over the full data would defeat the purpose for huge
            // n; a random 10·k sample is the usual compromise.
            let sample: Vec<usize> = (0..(10 * k).min(n)).map(|_| rng.gen_range(0..n)).collect();
            let sub = data.select(&sample);
            let seeded = crate::kmeans::kmeans(
                &sub,
                &KMeansConfig {
                    k,
                    max_iter: 1,
                    ..config.base.clone()
                },
            );
            seeded.centroids
        }
    };
    let k = centroids.len();

    let mut counts = vec![0usize; k];
    for _ in 0..config.steps {
        for _ in 0..config.batch_size {
            let i = rng.gen_range(0..n);
            let row = data.row(i);
            let (c, _) = nearest_centroid(row, &centroids);
            counts[c] += 1;
            let eta = 1.0 / counts[c] as f64;
            let cent = centroids.row_mut(c);
            for (cx, &x) in cent.iter_mut().zip(row) {
                *cx += eta * (x - *cx);
            }
        }
    }

    // Final full assignment pass.
    let mut assignment = vec![0u32; n];
    let mut inertia = 0.0;
    for (i, row) in data.rows().enumerate() {
        let (c, d2) = nearest_centroid(row, &centroids);
        assignment[i] = c as u32;
        inertia += d2;
    }
    KMeansResult {
        centroids,
        assignment,
        inertia,
        iterations: config.steps,
        converged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansConfig};

    fn blobs(seed: u64, per_blob: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let centres = [[0.0, 0.0], [20.0, 0.0], [0.0, 20.0], [20.0, 20.0]];
        let mut ds = Dataset::new(2);
        for c in &centres {
            for _ in 0..per_blob {
                ds.push_row(&[
                    c[0] + rng.gen_range(-1.0..1.0),
                    c[1] + rng.gen_range(-1.0..1.0),
                ]);
            }
        }
        ds
    }

    #[test]
    fn minibatch_close_to_exact_on_blobs() {
        let ds = blobs(1, 250);
        let exact = kmeans(&ds, &KMeansConfig::new(4).with_seed(2));
        let mb = minibatch_kmeans(
            &ds,
            &MiniBatchConfig {
                base: KMeansConfig::new(4).with_seed(2),
                batch_size: 64,
                steps: 100,
            },
        );
        // Mini-batch inertia within 2x of the exact optimum on easy data.
        assert!(
            mb.inertia < exact.inertia * 2.0,
            "{} vs {}",
            mb.inertia,
            exact.inertia
        );
        assert_eq!(mb.k(), 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = blobs(2, 100);
        let cfg = MiniBatchConfig::new(4);
        let a = minibatch_kmeans(&ds, &cfg);
        let b = minibatch_kmeans(&ds, &cfg);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn handles_tiny_datasets() {
        let ds = Dataset::from_rows(&[[0.0], [1.0], [2.0]]);
        let res = minibatch_kmeans(&ds, &MiniBatchConfig::new(5));
        assert!(res.k() <= 3);
        assert_eq!(res.assignment.len(), 3);
    }
}
