//! A static kd-tree for peers' local scans.
//!
//! Phase 2 of every Hyper-M query ends with contacted peers answering
//! *exactly* from their local collections. A linear scan is fine for the
//! paper's ~200 items/peer, but the motivating scenario talks about
//! thousands of items on a device; this kd-tree gives the standard
//! `O(log n)`-ish local range/k-nn answers.
//!
//! The tree stores only a permutation of row indices and split metadata —
//! the caller passes the (unchanged) dataset to every query, so the items
//! are never duplicated in memory. Rows appended after the build are simply
//! not covered; the peer layer scans that small delta linearly (classic
//! main-index + delta-buffer pattern).

use crate::dataset::Dataset;
use hyperm_geometry::vecmath::sq_dist;

/// Leaf bucket size (linear scan below this).
const LEAF_SIZE: usize = 8;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Range into the permutation array.
        start: usize,
        end: usize,
    },
    Split {
        dim: usize,
        value: f64,
        /// Children node indices.
        left: usize,
        right: usize,
    },
}

/// A static kd-tree over the first `indexed_len` rows of a dataset.
#[derive(Debug, Clone)]
pub struct KdTree {
    perm: Vec<u32>,
    nodes: Vec<Node>,
    indexed_len: usize,
    dim: usize,
}

impl KdTree {
    /// Build over all current rows of `data`.
    pub fn build(data: &Dataset) -> KdTree {
        let n = data.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::new();
        if n > 0 {
            build_node(data, &mut perm, 0, n, &mut nodes);
        }
        KdTree {
            perm,
            nodes,
            indexed_len: n,
            dim: data.dim(),
        }
    }

    /// Number of rows covered by the index.
    pub fn indexed_len(&self) -> usize {
        self.indexed_len
    }

    /// Indices of indexed rows within `eps` of `q` (inclusive), unordered.
    ///
    /// `data` must be the dataset the tree was built over (rows may have
    /// been appended since; they are ignored here).
    pub fn range(&self, data: &Dataset, q: &[f64], eps: f64) -> Vec<usize> {
        assert!(data.len() >= self.indexed_len, "dataset shrank since build");
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        assert!(eps >= 0.0, "negative radius");
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let e2 = eps * eps + 1e-12;
        let mut stack = vec![(0usize, 0.0f64)]; // (node, sq distance bound to its region)
        while let Some((ni, bound)) = stack.pop() {
            if bound > e2 {
                continue;
            }
            match self.nodes[ni] {
                Node::Leaf { start, end } => {
                    for &row in &self.perm[start..end] {
                        if sq_dist(data.row(row as usize), q) <= e2 {
                            out.push(row as usize);
                        }
                    }
                }
                Node::Split {
                    dim,
                    value,
                    left,
                    right,
                } => {
                    let delta = q[dim] - value;
                    // The near child keeps the current bound; the far child
                    // must additionally cross the splitting plane.
                    let far_bound = bound.max(delta * delta);
                    if delta <= 0.0 {
                        stack.push((left, bound));
                        stack.push((right, far_bound));
                    } else {
                        stack.push((right, bound));
                        stack.push((left, far_bound));
                    }
                }
            }
        }
        out
    }

    /// The `k` indexed rows nearest to `q`, closest first (ties by index).
    pub fn knn(&self, data: &Dataset, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        assert!(data.len() >= self.indexed_len, "dataset shrank since build");
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        if k == 0 || self.nodes.is_empty() {
            return Vec::new();
        }
        // Bounded max-heap of the current best k (max squared distance on top).
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        let mut worst = f64::INFINITY;
        let push = |d2: f64, idx: usize, best: &mut Vec<(f64, usize)>| {
            best.push((d2, idx));
            best.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            if best.len() > k {
                best.pop();
            }
            if best.len() == k {
                best[k - 1].0
            } else {
                f64::INFINITY
            }
        };
        let mut stack = vec![(0usize, 0.0f64)];
        while let Some((ni, bound)) = stack.pop() {
            if bound > worst {
                continue;
            }
            match self.nodes[ni] {
                Node::Leaf { start, end } => {
                    for &row in &self.perm[start..end] {
                        let d2 = sq_dist(data.row(row as usize), q);
                        if d2 < worst || best.len() < k {
                            worst = push(d2, row as usize, &mut best);
                        }
                    }
                }
                Node::Split {
                    dim,
                    value,
                    left,
                    right,
                } => {
                    let delta = q[dim] - value;
                    let far_bound = bound.max(delta * delta);
                    if delta <= 0.0 {
                        stack.push((right, far_bound));
                        stack.push((left, bound));
                    } else {
                        stack.push((left, far_bound));
                        stack.push((right, bound));
                    }
                }
            }
        }
        best.into_iter().map(|(d2, i)| (i, d2.sqrt())).collect()
    }
}

/// Recursively build; returns the node index.
fn build_node(
    data: &Dataset,
    perm: &mut [u32],
    start: usize,
    end: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let idx = nodes.len();
    let count = end - start;
    if count <= LEAF_SIZE {
        nodes.push(Node::Leaf { start, end });
        return idx;
    }
    // Split on the widest dimension of this subset at the median.
    let dim = widest_dim(data, &perm[..], start, end);
    let mid = start + count / 2;
    // Select the median by the chosen coordinate.
    perm[start..end].select_nth_unstable_by((count / 2).saturating_sub(0), |&a, &b| {
        data.row(a as usize)[dim]
            .partial_cmp(&data.row(b as usize)[dim])
            .unwrap()
            .then(a.cmp(&b))
    });
    let value = data.row(perm[mid] as usize)[dim];
    nodes.push(Node::Split {
        dim,
        value,
        left: 0,
        right: 0,
    });
    let left = build_node(data, perm, start, mid, nodes);
    let right = build_node(data, perm, mid, end, nodes);
    if let Node::Split {
        left: l, right: r, ..
    } = &mut nodes[idx]
    {
        *l = left;
        *r = right;
    }
    idx
}

fn widest_dim(data: &Dataset, perm: &[u32], start: usize, end: usize) -> usize {
    let d = data.dim();
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for &row in &perm[start..end] {
        for (j, &x) in data.row(row as usize).iter().enumerate() {
            if x < lo[j] {
                lo[j] = x;
            }
            if x > hi[j] {
                hi[j] = x;
            }
        }
    }
    (0..d)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        let mut row = vec![0.0; dim];
        for _ in 0..n {
            for x in row.iter_mut() {
                *x = rng.gen();
            }
            ds.push_row(&row);
        }
        ds
    }

    fn linear_range(data: &Dataset, q: &[f64], eps: f64) -> Vec<usize> {
        let e2 = eps * eps + 1e-12;
        data.rows()
            .enumerate()
            .filter_map(|(i, r)| (sq_dist(r, q) <= e2).then_some(i))
            .collect()
    }

    #[test]
    fn range_matches_linear_scan() {
        let data = random_data(500, 8, 1);
        let tree = KdTree::build(&data);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let q: Vec<f64> = (0..8).map(|_| rng.gen()).collect();
            let eps = rng.gen::<f64>() * 0.8;
            let mut got = tree.range(&data, &q, eps);
            got.sort_unstable();
            let mut truth = linear_range(&data, &q, eps);
            truth.sort_unstable();
            assert_eq!(got, truth, "q {q:?} eps {eps}");
        }
    }

    #[test]
    fn knn_matches_linear_scan() {
        let data = random_data(400, 6, 3);
        let tree = KdTree::build(&data);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let q: Vec<f64> = (0..6).map(|_| rng.gen()).collect();
            let k = rng.gen_range(1..20);
            let got = tree.knn(&data, &q, k);
            // Linear truth.
            let mut all: Vec<(usize, f64)> = data
                .rows()
                .enumerate()
                .map(|(i, r)| (i, sq_dist(r, &q).sqrt()))
                .collect();
            all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            all.truncate(k);
            assert_eq!(got.len(), all.len());
            for (g, t) in got.iter().zip(&all) {
                assert_eq!(g.0, t.0, "k={k}");
                assert!((g.1 - t.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn small_and_degenerate_inputs() {
        let empty = Dataset::new(3);
        let tree = KdTree::build(&empty);
        assert!(tree.range(&empty, &[0.0, 0.0, 0.0], 1.0).is_empty());
        assert!(tree.knn(&empty, &[0.0, 0.0, 0.0], 5).is_empty());

        let one = Dataset::from_rows(&[[0.5, 0.5]]);
        let tree = KdTree::build(&one);
        assert_eq!(tree.knn(&one, &[0.0, 0.0], 3), vec![(0, 0.5f64.hypot(0.5))]);
        assert_eq!(tree.range(&one, &[0.5, 0.5], 0.0), vec![0]);
    }

    #[test]
    fn duplicate_points_handled() {
        let data = Dataset::from_rows(&[[1.0, 1.0]; 50]);
        let tree = KdTree::build(&data);
        assert_eq!(tree.range(&data, &[1.0, 1.0], 0.1).len(), 50);
        assert_eq!(tree.knn(&data, &[0.0, 0.0], 7).len(), 7);
    }

    #[test]
    fn appended_rows_are_ignored_by_design() {
        let mut data = random_data(100, 4, 5);
        let tree = KdTree::build(&data);
        data.push_row(&[0.5, 0.5, 0.5, 0.5]);
        let got = tree.range(&data, &[0.5, 0.5, 0.5, 0.5], 1e-9);
        assert!(
            got.iter().all(|&i| i < 100),
            "delta row leaked into index results"
        );
        assert_eq!(tree.indexed_len(), 100);
    }

    #[test]
    fn knn_zero_k() {
        let data = random_data(10, 2, 6);
        let tree = KdTree::build(&data);
        assert!(tree.knn(&data, &[0.5, 0.5], 0).is_empty());
    }
}
