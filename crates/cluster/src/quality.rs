//! Clustering quality metrics: cohesion, separation and their ratio.
//!
//! Figure 11 of the paper plots "the proportion between cohesion and
//! separation" per wavelet vector space: *"Cohesion is the average distance
//! of elements within the same cluster and separation measures the average
//! distance between the centroids of different clusters."* A **lower**
//! cohesion/separation ratio means tighter, better-separated clusters.
//!
//! SSE and a sampled silhouette score are included as standard companions
//! for the ablation benches.

use crate::dataset::Dataset;
use crate::kmeans::KMeansResult;
use hyperm_geometry::vecmath::{dist, sq_dist};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Bundle of quality metrics for one clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterQuality {
    /// Average distance from an item to its own centroid.
    pub cohesion: f64,
    /// Average pairwise distance between distinct centroids.
    pub separation: f64,
    /// `cohesion / separation` — Figure 11's y-axis (lower is better).
    pub ratio: f64,
    /// Sum of squared errors (k-means objective).
    pub sse: f64,
}

/// Average distance of items to their assigned centroid.
pub fn cohesion(data: &Dataset, result: &KMeansResult) -> f64 {
    assert_eq!(
        data.len(),
        result.assignment.len(),
        "assignment length mismatch"
    );
    if data.is_empty() {
        return 0.0;
    }
    let total: f64 = data
        .rows()
        .zip(&result.assignment)
        .map(|(row, &c)| dist(row, result.centroids.row(c as usize)))
        .sum();
    total / data.len() as f64
}

/// Average pairwise distance between distinct centroids.
///
/// Returns 0 when there are fewer than two clusters (the ratio is then
/// undefined; [`quality_ratio`] reports infinity).
pub fn separation(result: &KMeansResult) -> f64 {
    let k = result.k();
    if k < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..k {
        for j in i + 1..k {
            total += dist(result.centroids.row(i), result.centroids.row(j));
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Sum of squared distances of items to their assigned centroid.
pub fn sse(data: &Dataset, result: &KMeansResult) -> f64 {
    data.rows()
        .zip(&result.assignment)
        .map(|(row, &c)| sq_dist(row, result.centroids.row(c as usize)))
        .sum()
}

/// The cohesion/separation ratio plus its constituents.
pub fn quality_ratio(data: &Dataset, result: &KMeansResult) -> ClusterQuality {
    let coh = cohesion(data, result);
    let sep = separation(result);
    let ratio = if sep > 0.0 { coh / sep } else { f64::INFINITY };
    ClusterQuality {
        cohesion: coh,
        separation: sep,
        ratio,
        sse: sse(data, result),
    }
}

/// Mean silhouette coefficient over a random sample of at most
/// `max_samples` items (exact silhouette is O(n²)).
///
/// Values near 1 indicate well-separated clusters, near 0 overlapping ones,
/// negative values misassigned items. Returns 0 for degenerate clusterings
/// (single cluster or singleton data).
pub fn silhouette_sampled(
    data: &Dataset,
    result: &KMeansResult,
    max_samples: usize,
    seed: u64,
) -> f64 {
    let n = data.len();
    if n < 2 || result.k() < 2 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    if n > max_samples {
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        idx.truncate(max_samples);
    }
    let sizes = result.cluster_sizes();
    let mut acc = 0.0;
    let mut counted = 0usize;
    for &i in &idx {
        let own = result.assignment[i] as usize;
        if sizes[own] < 2 {
            continue; // silhouette undefined for singletons
        }
        // Mean distance to every cluster.
        let mut sums = vec![0.0f64; result.k()];
        for (j, row) in data.rows().enumerate() {
            if j == i {
                continue;
            }
            sums[result.assignment[j] as usize] += dist(data.row(i), row);
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..result.k())
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            acc += (b - a) / a.max(b);
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        acc / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansConfig};
    use rand::Rng;

    fn blobs(spread: f64, gap: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(2);
        for b in 0..3 {
            for _ in 0..25 {
                ds.push_row(&[
                    b as f64 * gap + rng.gen_range(-spread..spread),
                    rng.gen_range(-spread..spread),
                ]);
            }
        }
        ds
    }

    #[test]
    fn tight_clusters_beat_loose_clusters() {
        let tight = blobs(0.2, 10.0, 1);
        let loose = blobs(2.0, 10.0, 1);
        let cfg = KMeansConfig::new(3).with_seed(5);
        let qt = quality_ratio(&tight, &kmeans(&tight, &cfg));
        let ql = quality_ratio(&loose, &kmeans(&loose, &cfg));
        assert!(qt.ratio < ql.ratio, "{} !< {}", qt.ratio, ql.ratio);
        assert!(qt.cohesion < ql.cohesion);
    }

    #[test]
    fn separation_scales_with_gap() {
        let near = blobs(0.2, 4.0, 2);
        let far = blobs(0.2, 40.0, 2);
        let cfg = KMeansConfig::new(3).with_seed(5);
        assert!(separation(&kmeans(&far, &cfg)) > separation(&kmeans(&near, &cfg)));
    }

    #[test]
    fn single_cluster_ratio_is_infinite() {
        let ds = blobs(0.2, 10.0, 3);
        let q = quality_ratio(&ds, &kmeans(&ds, &KMeansConfig::new(1)));
        assert!(q.ratio.is_infinite());
        assert_eq!(q.separation, 0.0);
    }

    #[test]
    fn sse_matches_inertia() {
        let ds = blobs(0.5, 8.0, 4);
        let res = kmeans(&ds, &KMeansConfig::new(3).with_seed(1));
        assert!((sse(&ds, &res) - res.inertia).abs() < 1e-9);
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let ds = blobs(0.2, 20.0, 5);
        let res = kmeans(&ds, &KMeansConfig::new(3).with_seed(2));
        let s = silhouette_sampled(&ds, &res, 1000, 0);
        assert!(s > 0.8, "silhouette {s}");
    }

    #[test]
    fn silhouette_low_for_overclustered_blob() {
        // One blob split into 3 clusters → poor silhouette.
        let mut rng = StdRng::seed_from_u64(6);
        let mut ds = Dataset::new(2);
        for _ in 0..60 {
            ds.push_row(&[rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
        }
        let res = kmeans(&ds, &KMeansConfig::new(3).with_seed(2));
        let s = silhouette_sampled(&ds, &res, 1000, 0);
        assert!(s < 0.6, "silhouette {s}");
    }

    #[test]
    fn silhouette_sampling_is_deterministic() {
        let ds = blobs(0.4, 10.0, 7);
        let res = kmeans(&ds, &KMeansConfig::new(3).with_seed(2));
        let a = silhouette_sampled(&ds, &res, 20, 9);
        let b = silhouette_sampled(&ds, &res, 20, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs() {
        let ds = Dataset::from_rows(&[[1.0, 2.0]]);
        let res = kmeans(&ds, &KMeansConfig::new(1));
        assert_eq!(silhouette_sampled(&ds, &res, 10, 0), 0.0);
        assert_eq!(cohesion(&ds, &res), 0.0);
    }
}
