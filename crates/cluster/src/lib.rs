//! Clustering for Hyper-M (ICDE 2007).
//!
//! Hyper-M summarises each peer's data by running k-means *independently in
//! every wavelet subspace* (step *i2* of the paper's Figure 2) and publishing
//! only the resulting **cluster spheres** — centroid, radius and item count —
//! into the overlay. The paper picks k-means for its invariance to
//! translations and orthogonal transformations and because its output maps
//! directly onto the sphere representation of Section 3.1.
//!
//! * [`dataset`] — a flat row-major `f64` matrix, the in-memory format for
//!   all feature vectors in the workspace;
//! * [`kmeans`] — Lloyd's algorithm with Forgy or k-means++ seeding,
//!   convergence/tolerance control and empty-cluster repair;
//! * [`minibatch`] — a mini-batch k-means variant for peers with large local
//!   collections (extension; the paper cites speed-oriented k-means
//!   extensions [18, 19] as related work);
//! * [`sphere`] — the `ClusterSphere` summary (Section 3.1) and helpers to
//!   derive sphere sets from a clustering;
//! * [`quality`] — cohesion, separation, their ratio (the "goodness" measure
//!   plotted in Figure 11), SSE and silhouette scores;
//! * [`kdtree`] — a static kd-tree for the peers' exact local scans
//!   (main-index + delta-buffer; the paper's phase-2 retrieval).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod kdtree;
pub mod kmeans;
pub mod minibatch;
pub mod quality;
pub mod sphere;

pub use dataset::Dataset;
pub use kdtree::KdTree;
pub use kmeans::{InitMethod, KMeansConfig, KMeansResult};
pub use minibatch::{minibatch_kmeans, MiniBatchConfig};
pub use quality::{cohesion, quality_ratio, separation, silhouette_sampled, sse, ClusterQuality};
pub use sphere::{spheres_from_clustering, ClusterSphere};
