//! Lloyd's k-means with Forgy and k-means++ seeding.
//!
//! The paper runs k-means per wavelet subspace on each peer's local data
//! (typically ≈ 200–1000 items, 1–256 dimensions, k ∈ {5, 10, 20}); this
//! implementation is tuned for that regime: plain Lloyd iterations over a
//! flat dataset, deterministic under an explicit seed, with empty-cluster
//! repair so the requested `k` is always honoured when there are at least
//! `k` distinct points.

use crate::dataset::Dataset;
use hyperm_geometry::vecmath::sq_dist;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Centroid seeding strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMethod {
    /// Pick `k` distinct input rows uniformly at random (Forgy).
    Forgy,
    /// k-means++ (D² weighting) — better spread, the default.
    #[default]
    PlusPlus,
}

/// Configuration for one k-means run.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters requested.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence threshold on the maximum squared centroid movement.
    pub tol: f64,
    /// Seeding strategy.
    pub init: InitMethod,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
}

impl KMeansConfig {
    /// A sensible default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iter: 100,
            tol: 1e-9,
            init: InitMethod::default(),
            seed: 0,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style init override.
    pub fn with_init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }
}

/// Outcome of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final centroids, one row per cluster (`≤ k` rows only if the input
    /// had fewer points than `k`).
    pub centroids: Dataset,
    /// Cluster index of each input row.
    pub assignment: Vec<u32>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Whether the run stopped by tolerance rather than `max_iter`.
    pub converged: bool,
}

impl KMeansResult {
    /// Number of clusters actually produced.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Item count per cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignment {
            sizes[a as usize] += 1;
        }
        sizes
    }

    /// Indices of the rows assigned to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a as usize == c).then_some(i))
            .collect()
    }
}

/// Run k-means on `data`.
///
/// Degenerate inputs are handled gracefully: with fewer rows than `k` every
/// row becomes its own centroid. Panics only if `data` is empty or
/// `config.k == 0`.
pub fn kmeans(data: &Dataset, config: &KMeansConfig) -> KMeansResult {
    assert!(config.k > 0, "k must be positive");
    assert!(!data.is_empty(), "cannot cluster an empty dataset");
    let n = data.len();
    let k = config.k.min(n);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut centroids = match config.init {
        InitMethod::Forgy => init_forgy(data, k, &mut rng),
        InitMethod::PlusPlus => init_plusplus(data, k, &mut rng),
    };

    let mut assignment = vec![0u32; n];
    let mut iterations = 0;
    let mut converged = false;

    for iter in 0..config.max_iter {
        iterations = iter + 1;
        // Assignment step.
        for (i, row) in data.rows().enumerate() {
            assignment[i] = nearest_centroid(row, &centroids).0 as u32;
        }
        // Update step.
        let mut sums = vec![0.0; k * data.dim()];
        let mut counts = vec![0usize; k];
        for (i, row) in data.rows().enumerate() {
            let c = assignment[i] as usize;
            counts[c] += 1;
            for (s, &x) in sums[c * data.dim()..(c + 1) * data.dim()]
                .iter_mut()
                .zip(row)
            {
                *s += x;
            }
        }
        // Empty-cluster repair: reseat an empty centroid on the point
        // farthest from its current centroid.
        for c in 0..k {
            if counts[c] == 0 {
                let (far_idx, _) = data
                    .rows()
                    .enumerate()
                    .map(|(i, row)| (i, sq_dist(row, centroids.row(assignment[i] as usize))))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .expect("non-empty dataset");
                sums[c * data.dim()..(c + 1) * data.dim()].copy_from_slice(data.row(far_idx));
                counts[c] = 1;
                // Steal the point so its old cluster loses it next round.
                assignment[far_idx] = c as u32;
            }
        }
        let mut max_shift = 0.0f64;
        for c in 0..k {
            let inv = 1.0 / counts[c] as f64;
            let new: Vec<f64> = sums[c * data.dim()..(c + 1) * data.dim()]
                .iter()
                .map(|s| s * inv)
                .collect();
            max_shift = max_shift.max(sq_dist(&new, centroids.row(c)));
            centroids.row_mut(c).copy_from_slice(&new);
        }
        if max_shift <= config.tol {
            converged = true;
            break;
        }
    }

    // Final assignment against the final centroids, and inertia.
    let mut inertia = 0.0;
    for (i, row) in data.rows().enumerate() {
        let (c, d2) = nearest_centroid(row, &centroids);
        assignment[i] = c as u32;
        inertia += d2;
    }

    KMeansResult {
        centroids,
        assignment,
        inertia,
        iterations,
        converged,
    }
}

/// Index and squared distance of the centroid nearest to `row`.
pub fn nearest_centroid(row: &[f64], centroids: &Dataset) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, cent) in centroids.rows().enumerate() {
        let d2 = sq_dist(row, cent);
        if d2 < best.1 {
            best = (c, d2);
        }
    }
    best
}

fn init_forgy(data: &Dataset, k: usize, rng: &mut StdRng) -> Dataset {
    let mut indices: Vec<usize> = (0..data.len()).collect();
    indices.shuffle(rng);
    data.select(&indices[..k])
}

fn init_plusplus(data: &Dataset, k: usize, rng: &mut StdRng) -> Dataset {
    let n = data.len();
    let mut centroids = Dataset::with_capacity(data.dim(), k);
    let first = rng.gen_range(0..n);
    centroids.push_row(data.row(first));
    // d2[i] = squared distance to nearest chosen centroid so far.
    let mut d2: Vec<f64> = data.rows().map(|r| sq_dist(r, centroids.row(0))).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= f64::EPSILON {
            // All remaining mass at zero distance (duplicate points): pick
            // uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push_row(data.row(idx));
        let new_c = centroids.len() - 1;
        for (i, row) in data.rows().enumerate() {
            let nd = sq_dist(row, centroids.row(new_c));
            if nd < d2[i] {
                d2[i] = nd;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blob_data(seed: u64) -> Dataset {
        // Three well-separated 2-d blobs of 30 points each.
        let mut rng = StdRng::seed_from_u64(seed);
        let centres = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut ds = Dataset::new(2);
        for c in &centres {
            for _ in 0..30 {
                ds.push_row(&[
                    c[0] + rng.gen_range(-0.5..0.5),
                    c[1] + rng.gen_range(-0.5..0.5),
                ]);
            }
        }
        ds
    }

    #[test]
    fn recovers_separated_blobs() {
        let ds = three_blob_data(1);
        let res = kmeans(&ds, &KMeansConfig::new(3).with_seed(7));
        assert_eq!(res.k(), 3);
        assert!(res.converged);
        // Every blob is internally consistent.
        for blob in 0..3 {
            let first = res.assignment[blob * 30];
            for i in 0..30 {
                assert_eq!(res.assignment[blob * 30 + i], first, "blob {blob} split");
            }
        }
        // And the blobs get distinct clusters.
        let mut labels: Vec<u32> = (0..3).map(|b| res.assignment[b * 30]).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let ds = three_blob_data(2);
        let i1 = kmeans(&ds, &KMeansConfig::new(1).with_seed(3)).inertia;
        let i3 = kmeans(&ds, &KMeansConfig::new(3).with_seed(3)).inertia;
        let i9 = kmeans(&ds, &KMeansConfig::new(9).with_seed(3)).inertia;
        assert!(i3 < i1, "{i3} !< {i1}");
        assert!(i9 < i3, "{i9} !< {i3}");
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = three_blob_data(3);
        let cfg = KMeansConfig::new(4).with_seed(99);
        let a = kmeans(&ds, &cfg);
        let b = kmeans(&ds, &cfg);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn fewer_points_than_k() {
        let ds = Dataset::from_rows(&[[0.0, 0.0], [5.0, 5.0]]);
        let res = kmeans(&ds, &KMeansConfig::new(10));
        assert_eq!(res.k(), 2);
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn single_cluster_centroid_is_the_mean() {
        let ds = Dataset::from_rows(&[[0.0, 0.0], [2.0, 4.0], [4.0, 2.0]]);
        let res = kmeans(&ds, &KMeansConfig::new(1));
        assert_eq!(res.centroids.row(0), &[2.0, 2.0]);
    }

    #[test]
    fn duplicate_points_do_not_crash_plusplus() {
        let ds = Dataset::from_rows(&[[1.0, 1.0]; 20]);
        let res = kmeans(&ds, &KMeansConfig::new(5).with_seed(11));
        assert!(res.inertia < 1e-12);
        assert_eq!(res.assignment.len(), 20);
    }

    #[test]
    fn forgy_init_also_works() {
        let ds = three_blob_data(4);
        let res = kmeans(
            &ds,
            &KMeansConfig::new(3)
                .with_init(InitMethod::Forgy)
                .with_seed(5),
        );
        assert_eq!(res.k(), 3);
        let sizes = res.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 90);
    }

    #[test]
    fn members_and_sizes_agree() {
        let ds = three_blob_data(5);
        let res = kmeans(&ds, &KMeansConfig::new(3).with_seed(1));
        for c in 0..res.k() {
            assert_eq!(res.members(c).len(), res.cluster_sizes()[c]);
        }
    }

    #[test]
    fn assignment_is_nearest_centroid() {
        let ds = three_blob_data(6);
        let res = kmeans(&ds, &KMeansConfig::new(3).with_seed(2));
        for (i, row) in ds.rows().enumerate() {
            let (c, _) = nearest_centroid(row, &res.centroids);
            assert_eq!(c as u32, res.assignment[i]);
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        kmeans(&Dataset::new(2), &KMeansConfig::new(2));
    }
}
