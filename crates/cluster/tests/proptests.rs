//! Property-based tests for the clustering invariants Hyper-M relies on.

use hyperm_cluster::kmeans::kmeans;
use hyperm_cluster::{spheres_from_clustering, Dataset, KMeansConfig};
use proptest::prelude::*;

/// Strategy: a random dataset of 1..60 rows in 1..6 dimensions.
fn dataset() -> impl Strategy<Value = Dataset> {
    (1usize..6, 1usize..60).prop_flat_map(|(dim, rows)| {
        prop::collection::vec(-50.0..50.0f64, dim * rows)
            .prop_map(move |flat| Dataset::from_flat(flat, dim))
    })
}

proptest! {
    /// Every point is assigned to its nearest centroid after convergence.
    #[test]
    fn assignment_is_voronoi(ds in dataset(), k in 1usize..8, seed in any::<u64>()) {
        let res = kmeans(&ds, &KMeansConfig::new(k).with_seed(seed));
        for (i, row) in ds.rows().enumerate() {
            let own = res.assignment[i] as usize;
            let own_d2: f64 = row.iter().zip(res.centroids.row(own))
                .map(|(a, b)| (a - b) * (a - b)).sum();
            for c in 0..res.k() {
                let d2: f64 = row.iter().zip(res.centroids.row(c))
                    .map(|(a, b)| (a - b) * (a - b)).sum();
                prop_assert!(own_d2 <= d2 + 1e-9, "row {i} prefers cluster {c}");
            }
        }
    }

    /// Cluster sizes sum to n and every cluster the algorithm reports is
    /// non-empty.
    #[test]
    fn sizes_partition_data(ds in dataset(), k in 1usize..8, seed in any::<u64>()) {
        let res = kmeans(&ds, &KMeansConfig::new(k).with_seed(seed));
        let sizes = res.cluster_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), ds.len());
    }

    /// Published spheres cover all their members and counts add to n —
    /// the precondition of the no-false-dismissal theorem.
    #[test]
    fn spheres_cover_members(ds in dataset(), k in 1usize..8, seed in any::<u64>()) {
        let res = kmeans(&ds, &KMeansConfig::new(k).with_seed(seed));
        let spheres = spheres_from_clustering(&ds, &res);
        prop_assert_eq!(spheres.iter().map(|s| s.items).sum::<usize>(), ds.len());
        // Every row is inside at least one sphere (its own cluster's).
        for row in ds.rows() {
            prop_assert!(spheres.iter().any(|s| s.contains(row)));
        }
    }

    /// k-means inertia never exceeds the 1-means (grand centroid) inertia.
    #[test]
    fn inertia_upper_bound(ds in dataset(), k in 2usize..8, seed in any::<u64>()) {
        let base = kmeans(&ds, &KMeansConfig::new(1).with_seed(seed)).inertia;
        let multi = kmeans(&ds, &KMeansConfig::new(k).with_seed(seed)).inertia;
        prop_assert!(multi <= base + 1e-6, "{multi} > {base}");
    }

    /// Translating the data translates the centroids (the invariance the
    /// paper cites as a reason to choose k-means).
    #[test]
    fn translation_invariance(ds in dataset(), shift in -20.0..20.0f64, seed in any::<u64>()) {
        let cfg = KMeansConfig::new(3).with_seed(seed);
        let res_a = kmeans(&ds, &cfg);
        let mut moved = ds.clone();
        for i in 0..moved.len() {
            for x in moved.row_mut(i) {
                *x += shift;
            }
        }
        let res_b = kmeans(&moved, &cfg);
        prop_assert_eq!(&res_a.assignment, &res_b.assignment);
        for c in 0..res_a.k() {
            for (x, y) in res_a.centroids.row(c).iter().zip(res_b.centroids.row(c)) {
                prop_assert!((x + shift - y).abs() < 1e-6, "{x} + {shift} vs {y}");
            }
        }
    }
}
