//! Hyperspherical-cap volume fractions.
//!
//! A *cap* of a d-ball is the region cut off by a hyperplane; it is
//! parameterised here by the half-angle `α` subtended at the ball's centre
//! (`α = 0` → empty cap, `α = π/2` → half the ball, `α = π` → whole ball).
//!
//! The paper gives a series for even `d` (Eq. 5):
//!
//! ```text
//! Vol_cap/Vol_sphere = (1/π)(α − cosα · Σ_{i=0}^{(d−2)/2} 2^{2i}(i!)²/(2i+1)! · sin^{2i+1}α)
//! ```
//!
//! and omits the odd case. We implement three independent evaluations and
//! cross-check them in tests:
//!
//! 1. [`cap_fraction_recurrence`] — general, any `d ≥ 1`, via the sine-power
//!    integral `F(α) = ∫₀^α sinᵈθ dθ / ∫₀^π sinᵈθ dθ` (this is the
//!    definition of the cap fraction; see e.g. Li (2011), "Concise formulas
//!    for the area and volume of a hyperspherical cap");
//! 2. [`cap_fraction_even_series`] — the paper's Eq. 5 verbatim (even `d`);
//! 3. [`cap_fraction_beta`] — `½ I_{sin²α}((d+1)/2, ½)` for `α ≤ π/2`,
//!    reflected for obtuse angles. This is the default ([`cap_fraction`])
//!    because it keeps relative accuracy for tiny caps.

use crate::special::{factorial, reg_inc_beta, sin_power_integral};
use std::f64::consts::PI;

/// Fraction of a d-ball's volume contained in a cap of half-angle `alpha`.
///
/// Valid for all `d ≥ 1` and `alpha ∈ [0, π]`. This is the default
/// evaluation used throughout Hyper-M; it delegates to the incomplete-beta
/// form because that form keeps *relative* accuracy for tiny caps — the
/// sine-power recurrence cancels catastrophically at small angles, and the
/// lens formula (Eq. 6) multiplies small caps by `(ε/r)^d`, which can exceed
/// `10^18`, so relative accuracy is essential.
pub fn cap_fraction(d: u32, alpha: f64) -> f64 {
    cap_fraction_beta(d, alpha)
}

/// Cap fraction via the `∫₀^α sinᵈθ dθ` recurrence.
///
/// Absolutely accurate but loses relative accuracy for tiny caps; retained
/// as an independent cross-check of [`cap_fraction_beta`] and for callers
/// that only need absolute error.
pub fn cap_fraction_recurrence(d: u32, alpha: f64) -> f64 {
    assert!(d >= 1, "dimension must be >= 1");
    let alpha = alpha.clamp(0.0, PI);
    if alpha == 0.0 {
        return 0.0;
    }
    if (alpha - PI).abs() < f64::EPSILON {
        return 1.0;
    }
    // The recurrence can produce tiny negatives (−1e-17) for large d and
    // small α; clamp to keep the result a valid probability.
    (sin_power_integral(d, alpha) / sin_power_integral(d, PI)).clamp(0.0, 1.0)
}

/// The paper's Eq. 5: cap fraction for **even** `d` as a finite series.
///
/// Kept verbatim for fidelity and used in tests to validate [`cap_fraction`].
pub fn cap_fraction_even_series(d: u32, alpha: f64) -> f64 {
    assert!(
        d >= 2 && d.is_multiple_of(2),
        "Eq. 5 applies to even d >= 2, got {d}"
    );
    let alpha = alpha.clamp(0.0, PI);
    let (s, c) = alpha.sin_cos();
    let mut series = 0.0;
    // Σ_{i=0}^{(d−2)/2} 2^{2i} (i!)² / (2i+1)! · sin^{2i+1}α
    let mut sin_pow = s; // sin^{2i+1}, starts at i = 0
    for i in 0..=(d - 2) / 2 {
        let i64v = i as u64;
        let coef = 4f64.powi(i as i32) * factorial(i64v).powi(2) / factorial(2 * i64v + 1);
        series += coef * sin_pow;
        sin_pow *= s * s;
    }
    (alpha - c * series) / PI
}

/// Cap fraction via the regularized incomplete beta function.
///
/// `F(α) = ½ I_{sin²α}((d+1)/2, ½)` for `α ∈ [0, π/2]`, and
/// `F(α) = 1 − F(π − α)` for obtuse `α`.
pub fn cap_fraction_beta(d: u32, alpha: f64) -> f64 {
    assert!(d >= 1, "dimension must be >= 1");
    let alpha = alpha.clamp(0.0, PI);
    if alpha <= PI / 2.0 {
        let s = alpha.sin();
        0.5 * reg_inc_beta((d as f64 + 1.0) / 2.0, 0.5, s * s)
    } else {
        1.0 - cap_fraction_beta(d, PI - alpha)
    }
}

/// Cap fraction parameterised by the signed distance `t ∈ [−r, r]` from the
/// ball centre to the cutting hyperplane (cap lies on the far side).
///
/// `t = r` → empty cap, `t = −r` → whole ball, `t = 0` → half.
pub fn cap_fraction_by_plane(d: u32, r: f64, t: f64) -> f64 {
    assert!(r > 0.0, "radius must be positive");
    let x = (t / r).clamp(-1.0, 1.0);
    cap_fraction(d, x.acos())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (|Δ| = {})", (a - b).abs());
    }

    #[test]
    fn boundary_values() {
        for d in [1u32, 2, 3, 8, 64] {
            close(cap_fraction(d, 0.0), 0.0, 0.0);
            close(cap_fraction(d, PI), 1.0, 1e-12);
            close(cap_fraction(d, PI / 2.0), 0.5, 1e-12);
        }
    }

    #[test]
    fn d1_is_linear_in_height() {
        // For a segment [-1,1], cap of half-angle α covers (1 − cosα)/2.
        for a in [0.2, 0.9, 1.5, 2.8] {
            close(cap_fraction(1, a), (1.0 - a.cos()) / 2.0, 1e-12);
        }
    }

    #[test]
    fn d2_matches_circular_segment() {
        for a in [0.3, 1.0, 2.0] {
            close(cap_fraction(2, a), (a - a.sin() * a.cos()) / PI, 1e-12);
        }
    }

    #[test]
    fn d3_matches_spherical_cap_closed_form() {
        // Sphere cap fraction: (2 + cosα)(1 − cosα)² / 4.
        for a in [0.4f64, 1.1, 2.3] {
            let c = a.cos();
            close(
                cap_fraction(3, a),
                (2.0 + c) * (1.0 - c).powi(2) / 4.0,
                1e-12,
            );
        }
    }

    #[test]
    fn paper_series_agrees_with_general_form_for_even_d() {
        for d in [2u32, 4, 6, 8, 16, 32, 64] {
            for i in 1..16 {
                let a = PI * i as f64 / 16.0;
                close(cap_fraction_even_series(d, a), cap_fraction(d, a), 1e-10);
            }
        }
    }

    #[test]
    fn beta_form_agrees_with_recurrence_all_d() {
        for d in [1u32, 2, 3, 5, 7, 10, 33, 128] {
            for i in 0..=20 {
                let a = PI * i as f64 / 20.0;
                close(cap_fraction_beta(d, a), cap_fraction_recurrence(d, a), 1e-9);
            }
        }
    }

    #[test]
    fn fraction_is_monotone_in_alpha() {
        for d in [2u32, 5, 17] {
            let mut prev = -1.0;
            for i in 0..=200 {
                let a = PI * i as f64 / 200.0;
                let f = cap_fraction(d, a);
                assert!(f >= prev - 1e-14);
                prev = f;
            }
        }
    }

    #[test]
    fn high_dimension_concentration() {
        // In high d almost all volume hugs the equator: a cap of half-angle
        // slightly under π/2 holds almost nothing, slightly over holds almost
        // everything.
        let below = cap_fraction(256, PI / 2.0 - 0.3);
        let above = cap_fraction(256, PI / 2.0 + 0.3);
        assert!(below < 1e-4, "below = {below}");
        assert!(above > 1.0 - 1e-4, "above = {above}");
    }

    #[test]
    fn plane_parameterisation() {
        close(cap_fraction_by_plane(3, 2.0, 2.0), 0.0, 1e-12);
        close(cap_fraction_by_plane(3, 2.0, 0.0), 0.5, 1e-12);
        close(cap_fraction_by_plane(3, 2.0, -2.0), 1.0, 1e-12);
        // Height h = r − t; fraction = (2 + t/r)(1 − t/r)²/4 for d = 3.
        let r = 1.5;
        let t = 0.6;
        let x: f64 = t / r;
        close(
            cap_fraction_by_plane(3, r, t),
            (2.0 + x) * (1.0 - x).powi(2) / 4.0,
            1e-12,
        );
    }

    #[test]
    #[should_panic(expected = "even d")]
    fn series_rejects_odd_dimension() {
        cap_fraction_even_series(3, 1.0);
    }
}
