//! Exact d-ball volumes.
//!
//! `V_d(r) = π^{d/2} / Γ(d/2 + 1) · r^d`. Hyper-M works in spaces of up to
//! 512 dimensions where `V_d` under- and over-flows `f64` spectacularly
//! (e.g. `V_512(1) ≈ 10^{-505}`), so everything is computed in log space and
//! only *ratios* of volumes are ever materialised by callers.

use crate::special::ln_gamma;

/// Natural log of the unit d-ball volume `ln V_d(1)`.
pub fn ln_unit_ball_volume(d: u32) -> f64 {
    let d = d as f64;
    0.5 * d * std::f64::consts::PI.ln() - ln_gamma(0.5 * d + 1.0)
}

/// Unit d-ball volume `V_d(1)`. Underflows to 0 for very large `d`; use
/// [`ln_unit_ball_volume`] when ratios are needed.
pub fn unit_ball_volume(d: u32) -> f64 {
    ln_unit_ball_volume(d).exp()
}

/// Natural log of the d-ball volume of radius `r`.
///
/// Returns `-inf` for `r == 0`.
pub fn ln_ball_volume(d: u32, r: f64) -> f64 {
    assert!(r >= 0.0, "negative radius {r}");
    ln_unit_ball_volume(d) + d as f64 * r.ln()
}

/// d-ball volume of radius `r` (may under/overflow for extreme `d`, `r`).
pub fn ball_volume(d: u32, r: f64) -> f64 {
    if r == 0.0 {
        return 0.0;
    }
    ln_ball_volume(d, r).exp()
}

/// Ratio `V_d(r1) / V_d(r2) = (r1/r2)^d`, computed stably.
pub fn volume_ratio(d: u32, r1: f64, r2: f64) -> f64 {
    assert!(r2 > 0.0, "zero denominator radius");
    assert!(r1 >= 0.0, "negative radius {r1}");
    (r1 / r2).powi(d as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
            "{a} vs {b}"
        );
    }

    #[test]
    fn low_dimensional_volumes_match_closed_forms() {
        close(unit_ball_volume(1), 2.0, 1e-13); // segment [-1,1]
        close(unit_ball_volume(2), PI, 1e-13); // disk
        close(unit_ball_volume(3), 4.0 / 3.0 * PI, 1e-13);
        close(unit_ball_volume(4), PI * PI / 2.0, 1e-13);
        close(unit_ball_volume(5), 8.0 * PI * PI / 15.0, 1e-13);
    }

    #[test]
    fn scaled_volumes() {
        close(ball_volume(3, 2.0), 4.0 / 3.0 * PI * 8.0, 1e-13);
        close(ball_volume(2, 0.5), PI * 0.25, 1e-13);
        assert_eq!(ball_volume(7, 0.0), 0.0);
    }

    #[test]
    fn volume_peaks_at_dimension_five() {
        // Famous fact: unit-ball volume is maximal at d = 5 (among integers).
        let v: Vec<f64> = (1..=10).map(unit_ball_volume).collect();
        let argmax = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
            + 1;
        assert_eq!(argmax, 5);
    }

    #[test]
    fn log_volume_is_finite_in_high_dimensions() {
        let ln_v = ln_unit_ball_volume(512);
        assert!(ln_v.is_finite());
        assert!(ln_v < -800.0); // vanishingly small, as expected
                                // And the plain value underflows gracefully.
        assert_eq!(unit_ball_volume(512), 0.0);
    }

    #[test]
    fn ratio_is_stable_where_direct_computation_is_not() {
        // (r1/r2)^d with r1=0.9, r2=1.0, d=512.
        let direct = volume_ratio(512, 0.9, 1.0);
        close(direct, 0.9f64.powi(512), 1e-12);
        assert!(direct > 0.0);
    }

    #[test]
    #[should_panic(expected = "negative radius")]
    fn negative_radius_panics() {
        ball_volume(3, -1.0);
    }
}
