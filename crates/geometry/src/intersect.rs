//! Two-hypersphere intersection fractions (Eqs. 6–7 of the paper).
//!
//! Hyper-M's peer-relevance score (Eq. 1) weights each cluster by
//! `Vol(sphere_c ∩ sphere_q) / Vol(sphere_c)` — the fraction of the *data
//! cluster's* volume covered by the query sphere. The generic lens of two
//! intersecting balls decomposes into two caps, one from each ball, cut by
//! the radical hyperplane; each cap fraction comes from [`crate::cap`].
//!
//! The paper's printed expansion (Eq. 7) omits the `(ε/r)^d` volume-ratio
//! scaling of the query-side cap in some terms (a typographical slip — the
//! two caps belong to balls of different radii). The implementation here is
//! the geometrically consistent form and is validated against Monte-Carlo
//! integration in `tests/montecarlo.rs`.

use crate::cap::cap_fraction;
use crate::volume::volume_ratio;

/// Classification of the relative position of two balls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overlap {
    /// The balls are disjoint (`b ≥ r + ε`).
    Disjoint,
    /// The first (data) ball lies entirely inside the second (query) ball.
    FirstInsideSecond,
    /// The second (query) ball lies entirely inside the first (data) ball.
    SecondInsideFirst,
    /// Proper lens-shaped intersection.
    Lens,
}

/// Classify the overlap of ball `(r)` and ball `(eps)` whose centres are
/// distance `b` apart.
pub fn sphere_overlap(r: f64, eps: f64, b: f64) -> Overlap {
    assert!(r > 0.0, "data-sphere radius must be positive, got {r}");
    assert!(eps >= 0.0, "query radius must be non-negative, got {eps}");
    assert!(b >= 0.0, "centre distance must be non-negative, got {b}");
    if b >= r + eps {
        Overlap::Disjoint
    } else if b + r <= eps {
        Overlap::FirstInsideSecond
    } else if b + eps <= r {
        Overlap::SecondInsideFirst
    } else {
        Overlap::Lens
    }
}

/// `Vol(B(c,r) ∩ B(q,ε)) / Vol(B(c,r))` in dimension `d`, where `b = ‖c−q‖`.
///
/// This is the per-cluster weight of the paper's Eq. 1 and the integrand of
/// its Eq. 8. Handles all degenerate configurations:
///
/// * disjoint → `0`;
/// * data ball inside query ball → `1` (every item in the cluster is a
///   candidate);
/// * query ball inside data ball → `(ε/r)^d` (uniform-density assumption);
/// * otherwise the lens = data-side cap + `(ε/r)^d ·` query-side cap.
pub fn intersection_fraction(d: u32, r: f64, eps: f64, b: f64) -> f64 {
    if eps == 0.0 {
        // A zero-radius query has zero volume: the *fraction of the data
        // ball* it covers is 0. (Point-query semantics — "is q inside the
        // cluster" — are a containment test, handled by callers, not a
        // volume ratio; returning 1 here would make Eq. 8 discontinuous at
        // ε = 0 and break the radius solver.)
        return 0.0;
    }
    if r == 0.0 {
        // Degenerate (singleton) cluster: either covered or not.
        return if b <= eps { 1.0 } else { 0.0 };
    }
    match sphere_overlap(r, eps, b) {
        Overlap::Disjoint => 0.0,
        Overlap::FirstInsideSecond => 1.0,
        Overlap::SecondInsideFirst => volume_ratio(d, eps, r),
        Overlap::Lens => {
            // A lens with b → 0⁺ forces r ≈ ε (else a containment branch
            // would have matched), and the radical-plane offset
            // (b² + r² − ε²)/(2b) degenerates: the r² − ε² cancellation
            // loses all precision and the division then amplifies the
            // garbage to ±∞ well before b reaches the subnormal range.
            // Below the guard the balls are numerically concentric, so
            // return the exact b = 0 containment limit (continuous with
            // the lens value: both caps tend to a half-ball).
            if b <= LENS_MIN_B * (r + eps) {
                return if eps >= r {
                    1.0
                } else {
                    volume_ratio(d, eps, r)
                };
            }
            // Signed distance from the data-ball centre to the radical
            // hyperplane along the centre line. The factored difference
            // (r−ε)(r+ε) avoids the catastrophic cancellation of
            // r² − ε² when the radii are nearly equal.
            let t_data = (b * b + (r - eps) * (r + eps)) / (2.0 * b);
            // Signed distance from the query-ball centre (other side).
            let t_query = b - t_data;
            // cos of the half-angles at each centre; clamped for robustness
            // against floating-point drift at tangency.
            let cos_a = (t_data / r).clamp(-1.0, 1.0);
            let cos_b = (t_query / eps).clamp(-1.0, 1.0);
            let frac_data = cap_fraction(d, cos_a.acos());
            let frac_query = cap_fraction(d, cos_b.acos());
            (frac_data + volume_ratio(d, eps, r) * frac_query).clamp(0.0, 1.0)
        }
    }
}

/// Relative centre-distance threshold below which a lens configuration is
/// treated as concentric. At `b = 1e-12·(r+ε)` the true fraction differs
/// from the b = 0 limit by O(d·b/r) ≈ 1e-9 — far below the Monte-Carlo
/// validation tolerance — while the direct formula is already unreliable.
const LENS_MIN_B: f64 = 1e-12;

/// Absolute lens volume `Vol(B(c,r) ∩ B(q,ε))`.
///
/// Prefer [`intersection_fraction`] in high dimensions where absolute
/// volumes underflow.
pub fn intersection_volume(d: u32, r: f64, eps: f64, b: f64) -> f64 {
    intersection_fraction(d, r, eps, b) * crate::volume::ball_volume(d, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn classification() {
        assert_eq!(sphere_overlap(1.0, 1.0, 3.0), Overlap::Disjoint);
        assert_eq!(sphere_overlap(1.0, 1.0, 2.0), Overlap::Disjoint); // tangent
        assert_eq!(sphere_overlap(1.0, 5.0, 1.0), Overlap::FirstInsideSecond);
        assert_eq!(sphere_overlap(5.0, 1.0, 1.0), Overlap::SecondInsideFirst);
        assert_eq!(sphere_overlap(1.0, 1.0, 1.0), Overlap::Lens);
    }

    #[test]
    fn extreme_cases() {
        for d in [1u32, 2, 3, 8] {
            assert_eq!(intersection_fraction(d, 1.0, 1.0, 5.0), 0.0);
            assert_eq!(intersection_fraction(d, 1.0, 10.0, 0.5), 1.0);
            close(
                intersection_fraction(d, 2.0, 1.0, 0.0),
                0.5f64.powi(d as i32),
                1e-12,
            );
        }
    }

    #[test]
    fn zero_radius_conventions() {
        assert_eq!(intersection_fraction(4, 1.0, 0.0, 0.5), 0.0);
        assert_eq!(intersection_fraction(4, 1.0, 0.0, 1.5), 0.0);
        assert_eq!(intersection_fraction(4, 0.0, 1.0, 0.5), 1.0);
        assert_eq!(intersection_fraction(4, 0.0, 1.0, 1.5), 0.0);
    }

    #[test]
    fn equal_balls_at_centre_distance_r_in_1d() {
        // Two unit segments with centres 1 apart: overlap length 1 of 2 → ½.
        close(intersection_fraction(1, 1.0, 1.0, 1.0), 0.5, 1e-12);
    }

    #[test]
    fn equal_disks_lens_closed_form() {
        // Two unit disks, centres b apart (0 < b < 2):
        // lens area = 2 acos(b/2) − (b/2)√(4 − b²); fraction = area/π.
        for b in [0.2, 0.7, 1.0, 1.6, 1.95] {
            let lens = 2.0 * (b / 2.0f64).acos() - (b / 2.0) * (4.0 - b * b).sqrt();
            close(
                intersection_fraction(2, 1.0, 1.0, b),
                lens / std::f64::consts::PI,
                1e-12,
            );
        }
    }

    #[test]
    fn equal_spheres_lens_closed_form_3d() {
        // Two unit 3-balls, centres b apart: lens volume
        // = π (2 − b)² (b² + 4b + ... ) / 12 — standard form:
        // V = π (4 + b)(2 − b)² / 12 ... use the h-form instead:
        // V = 2 · cap with h = 1 − b/2: V_cap = π h² (3·1 − h)/3.
        for b in [0.4, 1.0, 1.7] {
            let h: f64 = 1.0 - b / 2.0;
            let lens = 2.0 * std::f64::consts::PI * h * h * (3.0 - h) / 3.0;
            let ball = 4.0 / 3.0 * std::f64::consts::PI;
            close(intersection_fraction(3, 1.0, 1.0, b), lens / ball, 1e-12);
        }
    }

    #[test]
    fn continuity_across_regime_boundaries() {
        // Fraction should be continuous as b crosses |r−ε| and r+ε.
        let d = 6;
        let (r, eps) = (1.0, 0.6);
        let inner = r - eps;
        let outer = r + eps;
        close(
            intersection_fraction(d, r, eps, inner - 1e-9),
            intersection_fraction(d, r, eps, inner + 1e-9),
            1e-6,
        );
        close(
            intersection_fraction(d, r, eps, outer - 1e-9),
            intersection_fraction(d, r, eps, outer + 1e-9),
            1e-6,
        );
    }

    #[test]
    fn monotone_decreasing_in_centre_distance() {
        let d = 4;
        let (r, eps) = (1.0, 0.8);
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let b = 2.0 * i as f64 / 100.0;
            let f = intersection_fraction(d, r, eps, b);
            assert!(f <= prev + 1e-12, "not monotone at b = {b}");
            prev = f;
        }
    }

    #[test]
    fn monotone_increasing_in_query_radius() {
        let d = 5;
        let (r, b) = (1.0, 1.2);
        let mut prev = -1.0;
        for i in 0..=100 {
            let eps = 3.0 * i as f64 / 100.0;
            let f = intersection_fraction(d, r, eps, b);
            assert!(f >= prev - 1e-12, "not monotone at eps = {eps}");
            prev = f;
        }
    }

    #[test]
    fn symmetric_volume() {
        // Vol(A∩B) must not depend on argument order.
        for &(r, eps, b) in &[(1.0, 0.7, 1.1), (2.0, 0.5, 1.8), (1.5, 1.5, 0.9)] {
            for d in [2u32, 3, 7] {
                close(
                    intersection_volume(d, r, eps, b),
                    intersection_volume(d, eps, r, b),
                    1e-10,
                );
            }
        }
    }
}
