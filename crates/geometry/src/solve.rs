//! Numerical inversion of the expected-result-count curve (Eq. 8).
//!
//! For k-nn queries Hyper-M must answer: *what query radius ε retrieves an
//! expected `k` items, given the published cluster spheres?* The expectation
//!
//! ```text
//! g(ε) = Σ_c  Vol(sphere_c ∩ sphere_q(ε)) / Vol(sphere_c) · items_c     (Eq. 8)
//! ```
//!
//! is continuous and monotonically non-decreasing in ε, so `g(ε) = k` is
//! solved by a safeguarded Newton iteration that always keeps a bisection
//! bracket — the paper suggests "numerical methods (e.g., the Newton
//! method)"; the bracket makes the iteration unconditionally convergent even
//! at the flat spots where `g'(ε) = 0` (query far from every cluster).

use crate::intersect::intersection_fraction;

/// A cluster as seen by the radius solver: its distance from the query
/// centre, its radius, and how many items it summarises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterView {
    /// Euclidean distance from the query centre to the cluster centroid.
    pub centre_dist: f64,
    /// Radius of the cluster sphere.
    pub radius: f64,
    /// Number of data items summarised by the cluster (`items_c`).
    pub items: f64,
}

/// Errors from the monotone solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The target is above `f(hi)` — even the widest radius cannot reach it.
    TargetUnreachable {
        /// Value of the function at the upper end of the bracket.
        attainable: f64,
        /// The requested target.
        target: f64,
    },
    /// The bracket was empty or inverted.
    BadBracket,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::TargetUnreachable { attainable, target } => write!(
                f,
                "target {target} unreachable: maximum attainable value is {attainable}"
            ),
            SolveError::BadBracket => write!(f, "invalid bracket (lo >= hi)"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Expected number of retrieved items for query radius `eps` (Eq. 8).
pub fn expected_items(d: u32, clusters: &[ClusterView], eps: f64) -> f64 {
    clusters
        .iter()
        .map(|c| intersection_fraction(d, c.radius.max(0.0), eps, c.centre_dist) * c.items)
        .sum()
}

/// Invert a monotone non-decreasing function: find `x ∈ [lo, hi]` with
/// `f(x) ≈ target`.
///
/// Uses Newton steps with a finite-difference derivative, clipped to the
/// shrinking bisection bracket; falls back to pure bisection whenever the
/// Newton step escapes the bracket or the derivative vanishes. Returns an
/// `x` with `|f(x) − target| ≤ tol` (or the bracket midpoint once the
/// bracket itself has collapsed below `tol`).
pub fn invert_monotone<F: Fn(f64) -> f64>(
    f: F,
    target: f64,
    lo: f64,
    hi: f64,
    tol: f64,
) -> Result<f64, SolveError> {
    if lo >= hi {
        return Err(SolveError::BadBracket);
    }
    let f_lo = f(lo);
    if f_lo >= target {
        return Ok(lo);
    }
    let f_hi = f(hi);
    if f_hi < target {
        return Err(SolveError::TargetUnreachable {
            attainable: f_hi,
            target,
        });
    }

    let mut a = lo;
    let mut b = hi;
    let mut x = 0.5 * (a + b);
    for _ in 0..200 {
        let fx = f(x);
        if (fx - target).abs() <= tol || (b - a) <= tol * (1.0 + x.abs()) {
            return Ok(x);
        }
        if fx < target {
            a = x;
        } else {
            b = x;
        }
        // Newton step with forward finite difference.
        let h = (1e-7 * (1.0 + x.abs())).max(1e-12);
        let deriv = (f(x + h) - fx) / h;
        let newton = if deriv > 0.0 {
            x - (fx - target) / deriv
        } else {
            f64::NAN
        };
        x = if newton.is_finite() && newton > a && newton < b {
            newton
        } else {
            0.5 * (a + b)
        };
    }
    Ok(0.5 * (a + b))
}

/// Solve Eq. 8: the query radius ε whose expected retrieval is `k` items.
///
/// The bracket upper bound is `max(centre_dist + radius)` over the clusters —
/// beyond it every cluster is fully contained, so `g` is constant. If even
/// that cannot reach `k` (fewer than `k` items are reachable) the widest
/// radius is returned rather than an error, matching the paper's behaviour of
/// simply retrieving everything reachable.
pub fn solve_epsilon_for_k(d: u32, clusters: &[ClusterView], k: f64, tol: f64) -> f64 {
    if clusters.is_empty() || k <= 0.0 {
        return 0.0;
    }
    let hi = clusters
        .iter()
        .map(|c| c.centre_dist + c.radius)
        .fold(0.0f64, f64::max)
        .max(tol);
    match invert_monotone(|e| expected_items(d, clusters, e), k, 0.0, hi, tol) {
        Ok(eps) => eps,
        Err(SolveError::TargetUnreachable { .. }) => hi,
        Err(SolveError::BadBracket) => hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn invert_linear_function() {
        let x = invert_monotone(|x| 2.0 * x, 1.0, 0.0, 10.0, 1e-12).unwrap();
        close(x, 0.5, 1e-9);
    }

    #[test]
    fn invert_cubic() {
        let x = invert_monotone(|x| x * x * x, 27.0, 0.0, 10.0, 1e-12).unwrap();
        close(x, 3.0, 1e-7);
    }

    #[test]
    fn invert_step_like_function() {
        // Flat then steep — Newton alone would die on the plateau.
        let f = |x: f64| if x < 5.0 { 0.0 } else { (x - 5.0) * 10.0 };
        let x = invert_monotone(f, 1.0, 0.0, 10.0, 1e-9).unwrap();
        close(x, 5.1, 1e-6);
    }

    #[test]
    fn invert_reports_unreachable() {
        let err = invert_monotone(|x| x, 100.0, 0.0, 1.0, 1e-9).unwrap_err();
        assert!(matches!(err, SolveError::TargetUnreachable { .. }));
    }

    #[test]
    fn invert_rejects_bad_bracket() {
        let err = invert_monotone(|x| x, 0.5, 1.0, 1.0, 1e-9).unwrap_err();
        assert_eq!(err, SolveError::BadBracket);
    }

    #[test]
    fn invert_target_already_met_at_lo() {
        let x = invert_monotone(|x| x + 10.0, 5.0, 0.0, 1.0, 1e-9).unwrap();
        assert_eq!(x, 0.0);
    }

    #[test]
    fn expected_items_zero_far_away() {
        let clusters = [ClusterView {
            centre_dist: 10.0,
            radius: 1.0,
            items: 50.0,
        }];
        assert_eq!(expected_items(4, &clusters, 2.0), 0.0);
    }

    #[test]
    fn expected_items_full_when_everything_covered() {
        let clusters = [
            ClusterView {
                centre_dist: 1.0,
                radius: 0.5,
                items: 30.0,
            },
            ClusterView {
                centre_dist: 2.0,
                radius: 0.5,
                items: 20.0,
            },
        ];
        close(expected_items(3, &clusters, 100.0), 50.0, 1e-9);
    }

    #[test]
    fn epsilon_solves_single_cluster() {
        // One cluster of 100 items centred at distance 0: expected items at
        // radius ε (< r) is 100 (ε/r)^d. Want k = 12.5 in d=3 with r=2:
        // (ε/2)³ = 0.125 → ε = 1.
        let clusters = [ClusterView {
            centre_dist: 0.0,
            radius: 2.0,
            items: 100.0,
        }];
        let eps = solve_epsilon_for_k(3, &clusters, 12.5, 1e-10);
        close(eps, 1.0, 1e-5);
    }

    #[test]
    fn epsilon_monotone_in_k() {
        let clusters = [
            ClusterView {
                centre_dist: 1.0,
                radius: 0.8,
                items: 40.0,
            },
            ClusterView {
                centre_dist: 2.5,
                radius: 1.0,
                items: 60.0,
            },
        ];
        let mut prev = 0.0;
        for k in [1.0, 5.0, 10.0, 25.0, 60.0, 99.0] {
            let eps = solve_epsilon_for_k(4, &clusters, k, 1e-9);
            assert!(eps >= prev - 1e-9, "eps not monotone at k = {k}");
            prev = eps;
            // The solution really does retrieve ≈ k expected items.
            let got = expected_items(4, &clusters, eps);
            close(got, k, 1e-3 * k.max(1.0));
        }
    }

    #[test]
    fn epsilon_saturates_when_k_exceeds_population() {
        let clusters = [ClusterView {
            centre_dist: 1.0,
            radius: 0.5,
            items: 10.0,
        }];
        let eps = solve_epsilon_for_k(3, &clusters, 1_000.0, 1e-9);
        close(eps, 1.5, 1e-9); // widest useful radius: centre_dist + radius
    }

    #[test]
    fn epsilon_trivial_cases() {
        assert_eq!(solve_epsilon_for_k(3, &[], 5.0, 1e-9), 0.0);
        let clusters = [ClusterView {
            centre_dist: 1.0,
            radius: 0.5,
            items: 10.0,
        }];
        assert_eq!(solve_epsilon_for_k(3, &clusters, 0.0, 1e-9), 0.0);
    }
}
