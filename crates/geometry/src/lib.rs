//! Hypersphere geometry for Hyper-M (ICDE 2007).
//!
//! Hyper-M represents both data-cluster summaries and similarity queries as
//! hyperspheres in (wavelet-transformed) vector spaces. Its peer-relevance
//! score (Eq. 1 of the paper) and its k-nn radius estimation (Eqs. 5–8) both
//! reduce to one geometric primitive: *the fraction of a hypersphere's volume
//! covered by another hypersphere*.
//!
//! This crate provides that primitive and the numerical machinery around it:
//!
//! * [`special`] — log-gamma, regularized incomplete beta, factorial tables;
//! * [`volume`] — exact d-ball volumes (computed in log space so d can be
//!   large without overflow);
//! * [`cap`] — hyperspherical-cap volume fractions. Three independent
//!   evaluations are provided and cross-checked by tests: the paper's even-`d`
//!   series (Eq. 5), a general recurrence over `∫ sinᵈθ dθ`, and a
//!   regularized-incomplete-beta form;
//! * [`intersect`] — the two-sphere intersection fraction of Eqs. 6–7 with
//!   all containment/degenerate cases handled;
//! * [`solve`] — safeguarded Newton/bisection inversion of monotone curves,
//!   used to solve Eq. 8 for the k-nn query radius ε;
//! * [`vecmath`] — small dense-vector helpers (distances, norms) shared by
//!   the sibling crates.
//!
//! The paper's printed Eq. 7 contains typographical errors (it is the
//! expansion of Eq. 6 after the cosine rule); we implement the mathematically
//! consistent form and validate it against Monte-Carlo integration in the
//! test-suite.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cap;
pub mod intersect;
pub mod solve;
pub mod special;
pub mod vecmath;
pub mod volume;

pub use cap::{cap_fraction, cap_fraction_beta, cap_fraction_even_series, cap_fraction_recurrence};
pub use intersect::{intersection_fraction, intersection_volume, sphere_overlap, Overlap};
pub use solve::{invert_monotone, solve_epsilon_for_k, ClusterView, SolveError};
pub use vecmath::{dist, sq_dist};
pub use volume::{ball_volume, ln_ball_volume, unit_ball_volume};
