//! Special functions used by the sphere-geometry formulas.
//!
//! Everything here is implemented from scratch (no external math crates):
//! a Lanczos log-gamma, the regularized incomplete beta function via the
//! Lentz continued-fraction algorithm, and small factorial helpers used by
//! the paper's series expansion (Eq. 5).

/// Lanczos coefficients for `g = 7`, `n = 9` (double precision accurate to
/// ~15 significant digits for positive arguments).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma: non-finite argument {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of `n!` computed through [`ln_gamma`].
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// `n!` as an `f64`; exact for `n ≤ 20`, gamma-based beyond.
pub fn factorial(n: u64) -> f64 {
    if n <= 20 {
        let mut acc = 1u64;
        for i in 2..=n {
            acc *= i;
        }
        acc as f64
    } else {
        ln_factorial(n).exp()
    }
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Evaluated with the continued-fraction expansion (Numerical Recipes
/// `betacf`), using the symmetry `I_x(a,b) = 1 − I_{1−x}(b,a)` to stay in the
/// rapidly convergent region.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "reg_inc_beta: a,b must be positive");
    assert!(
        (0.0..=1.0).contains(&x),
        "reg_inc_beta: x must be in [0,1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // ln of the prefactor x^a (1-x)^b / (a B(a,b)).
    let ln_front = a * x.ln() + b * (1.0 - x).ln() + ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() / a) * beta_cf(a, b, x)
    } else {
        1.0 - (ln_front.exp() / b) * beta_cf(b, a, 1.0 - x)
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3.0e-16;
    const FPMIN: f64 = 1.0e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// `∫₀^α sinᵈθ dθ` evaluated by the stable downward recurrence
/// `I_d = (−sin^{d−1}α·cosα + (d−1)·I_{d−2}) / d`.
///
/// Valid for any `d ≥ 0` and `α ∈ [0, π]`. This is the workhorse behind the
/// general hyperspherical-cap fraction.
pub fn sin_power_integral(d: u32, alpha: f64) -> f64 {
    assert!(
        (0.0..=std::f64::consts::PI + 1e-12).contains(&alpha),
        "alpha out of [0, pi]: {alpha}"
    );
    let (s, c) = alpha.sin_cos();
    match d {
        0 => alpha,
        1 => 1.0 - c,
        _ => {
            // Iterative evaluation to avoid recursion depth for large d.
            let mut even = alpha; // I_0
            let mut odd = 1.0 - c; // I_1
            let mut result = if d.is_multiple_of(2) { even } else { odd };
            // sin^{k-1}(α) built incrementally.
            let mut sin_pow = s; // s^1, used for k = 2
            for k in 2..=d {
                let prev = if k % 2 == 0 { even } else { odd };
                let val = (-sin_pow * c + (k as f64 - 1.0) * prev) / k as f64;
                if k % 2 == 0 {
                    even = val;
                } else {
                    odd = val;
                }
                result = val;
                sin_pow *= s;
            }
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
            "{a} vs {b}"
        );
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-14);
        close(ln_gamma(2.0), 0.0, 1e-14);
        close(ln_gamma(3.0), 2.0f64.ln(), 1e-14);
        close(ln_gamma(6.0), 120.0f64.ln(), 1e-13);
        close(ln_gamma(0.5), PI.sqrt().ln(), 1e-13);
        close(ln_gamma(1.5), (PI.sqrt() / 2.0).ln(), 1e-13);
    }

    #[test]
    fn ln_gamma_reflection_branch() {
        // Γ(0.25) ≈ 3.625609908...
        close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-12);
    }

    #[test]
    fn factorial_small_and_large() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(5), 120.0);
        assert_eq!(factorial(20), 2_432_902_008_176_640_000.0);
        close(factorial(25), 1.551_121_004_333_098_6e25, 1e-10);
    }

    #[test]
    fn reg_inc_beta_endpoints_and_symmetry() {
        assert_eq!(reg_inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(2.0, 3.0, 1.0), 1.0);
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.5, 0.25)] {
            let lhs = reg_inc_beta(a, b, x);
            let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x);
            close(lhs, rhs, 1e-12);
        }
    }

    #[test]
    fn reg_inc_beta_uniform_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.37, 0.5, 0.99] {
            close(reg_inc_beta(1.0, 1.0, x), x, 1e-13);
        }
    }

    #[test]
    fn reg_inc_beta_half_half_is_arcsine() {
        // I_x(1/2, 1/2) = (2/π) asin(√x).
        for x in [0.05, 0.3, 0.5, 0.8] {
            close(reg_inc_beta(0.5, 0.5, x), 2.0 / PI * x.sqrt().asin(), 1e-12);
        }
    }

    #[test]
    fn sin_power_integral_base_cases() {
        close(sin_power_integral(0, 1.2), 1.2, 1e-15);
        close(sin_power_integral(1, PI / 2.0), 1.0, 1e-15);
        close(sin_power_integral(1, PI), 2.0, 1e-15);
    }

    #[test]
    fn sin_power_integral_closed_forms() {
        // ∫ sin²θ = (α − sinα cosα)/2
        for a in [0.3, 1.0, 2.5, PI] {
            close(
                sin_power_integral(2, a),
                (a - a.sin() * a.cos()) / 2.0,
                1e-13,
            );
        }
        // ∫₀^π sin³θ dθ = 4/3
        close(sin_power_integral(3, PI), 4.0 / 3.0, 1e-13);
        // Wallis: ∫₀^π sin⁴ = 3π/8, ∫₀^π sin⁶ = 15π/48.
        close(sin_power_integral(4, PI), 3.0 * PI / 8.0, 1e-13);
        close(sin_power_integral(6, PI), 15.0 * PI / 48.0, 1e-13);
    }

    #[test]
    fn sin_power_integral_numerical_cross_check() {
        // Simpson's rule comparison for a handful of (d, α).
        for &(d, alpha) in &[(5u32, 0.9f64), (8, 2.0), (13, 1.3), (32, 0.6)] {
            let n = 20_000;
            let h = alpha / n as f64;
            let mut acc = 0.0;
            for i in 0..n {
                let x0 = i as f64 * h;
                let xm = x0 + h / 2.0;
                let x1 = x0 + h;
                acc += h / 6.0
                    * (x0.sin().powi(d as i32)
                        + 4.0 * xm.sin().powi(d as i32)
                        + x1.sin().powi(d as i32));
            }
            close(sin_power_integral(d, alpha), acc, 1e-9);
        }
    }

    #[test]
    fn sin_power_integral_monotone_in_alpha() {
        let mut prev = 0.0;
        for i in 1..=100 {
            let a = PI * i as f64 / 100.0;
            let v = sin_power_integral(7, a);
            assert!(v >= prev, "not monotone at {a}");
            prev = v;
        }
    }
}
