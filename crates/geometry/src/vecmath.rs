//! Small dense-vector helpers shared across the workspace.
//!
//! All Hyper-M vectors are plain `&[f64]` slices; these free functions keep
//! distance computations allocation-free and in one audited place.

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two equal-length vectors.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Euclidean norm of a vector.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// In-place `a += b`.
#[inline]
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// In-place `a *= s`.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

/// Mean of a set of rows given as a flat row-major buffer.
///
/// Returns a zero vector when `rows == 0`.
pub fn mean_rows(flat: &[f64], dim: usize) -> Vec<f64> {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(flat.len() % dim, 0, "buffer not a whole number of rows");
    let rows = flat.len() / dim;
    let mut out = vec![0.0; dim];
    if rows == 0 {
        return out;
    }
    for row in flat.chunks_exact(dim) {
        add_assign(&mut out, row);
    }
    scale(&mut out, 1.0 / rows as f64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn norm_works() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn add_and_scale() {
        let mut a = vec![1.0, 2.0];
        add_assign(&mut a, &[0.5, 0.5]);
        assert_eq!(a, vec![1.5, 2.5]);
        scale(&mut a, 2.0);
        assert_eq!(a, vec![3.0, 5.0]);
    }

    #[test]
    fn mean_of_rows() {
        let flat = [0.0, 0.0, 2.0, 4.0];
        assert_eq!(mean_rows(&flat, 2), vec![1.0, 2.0]);
        assert_eq!(mean_rows(&[], 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn mean_rejects_ragged_buffer() {
        mean_rows(&[1.0, 2.0, 3.0], 2);
    }
}
