//! Property-based tests for the geometric invariants Hyper-M relies on.

use hyperm_geometry::solve::expected_items;
use hyperm_geometry::{
    cap_fraction, cap_fraction_beta, intersection_fraction, solve_epsilon_for_k, ClusterView,
};
use proptest::prelude::*;

proptest! {
    /// Cap fractions are always valid probabilities, whatever d and α.
    #[test]
    fn cap_fraction_in_unit_interval(d in 1u32..200, alpha in 0.0..std::f64::consts::PI) {
        let f = cap_fraction(d, alpha);
        prop_assert!((0.0..=1.0).contains(&f), "f = {f}");
    }

    /// Complementary caps tile the ball: F(α) + F(π − α) = 1.
    #[test]
    fn cap_complement_identity(d in 1u32..100, alpha in 0.0..std::f64::consts::PI) {
        let f = cap_fraction(d, alpha) + cap_fraction(d, std::f64::consts::PI - alpha);
        prop_assert!((f - 1.0).abs() < 1e-9, "sum = {f}");
    }

    /// The two independent cap evaluations agree everywhere.
    #[test]
    fn cap_beta_agreement(d in 1u32..64, alpha in 0.0..std::f64::consts::PI) {
        let a = cap_fraction(d, alpha);
        let b = cap_fraction_beta(d, alpha);
        prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
    }

    /// Intersection fractions are valid probabilities for arbitrary configs.
    #[test]
    fn intersection_fraction_valid(
        d in 1u32..64,
        r in 1e-3..10.0f64,
        eps in 0.0..10.0f64,
        b in 0.0..25.0f64,
    ) {
        let f = intersection_fraction(d, r, eps, b);
        prop_assert!((0.0..=1.0).contains(&f), "f = {f}");
    }

    /// Moving the query closer never decreases the covered fraction.
    #[test]
    fn intersection_monotone_in_distance(
        d in 1u32..32,
        r in 1e-2..5.0f64,
        eps in 1e-2..5.0f64,
        b1 in 0.0..12.0f64,
        delta in 0.0..5.0f64,
    ) {
        let near = intersection_fraction(d, r, eps, b1);
        let far = intersection_fraction(d, r, eps, b1 + delta);
        prop_assert!(far <= near + 1e-10, "near {near} far {far}");
    }

    /// Growing the query never decreases the covered fraction.
    #[test]
    fn intersection_monotone_in_radius(
        d in 1u32..32,
        r in 1e-2..5.0f64,
        eps in 1e-2..5.0f64,
        grow in 0.0..5.0f64,
        b in 0.0..12.0f64,
    ) {
        let small = intersection_fraction(d, r, eps, b);
        let large = intersection_fraction(d, r, eps + grow, b);
        prop_assert!(large >= small - 1e-10, "small {small} large {large}");
    }

    /// The solved ε really produces ≈ k expected items whenever k is
    /// attainable.
    #[test]
    fn solved_epsilon_achieves_target(
        d in 1u32..16,
        dist1 in 0.0..4.0f64,
        dist2 in 0.0..4.0f64,
        r1 in 0.05..2.0f64,
        r2 in 0.05..2.0f64,
        n1 in 1.0..200.0f64,
        n2 in 1.0..200.0f64,
        frac in 0.05..0.95f64,
    ) {
        let clusters = [
            ClusterView { centre_dist: dist1, radius: r1, items: n1 },
            ClusterView { centre_dist: dist2, radius: r2, items: n2 },
        ];
        let k = frac * (n1 + n2);
        let eps = solve_epsilon_for_k(d, &clusters, k, 1e-10);
        let got = expected_items(d, &clusters, eps);
        // In high dimensions the curve g(ε) can be a quasi-step at f64
        // resolution (cap concentration), so the solver may land on either
        // side of the jump. The correct property is that the returned ε
        // *brackets* the target: g just below ε is ≤ k and g just above is
        // ≥ k (all up to small tolerances).
        let nudge = 1e-7 * (1.0 + eps);
        let below = expected_items(d, &clusters, (eps - nudge).max(0.0));
        let above = expected_items(d, &clusters, eps + nudge);
        let tol = 1e-2 * k.max(1.0);
        prop_assert!(
            (got - k).abs() <= tol || (below <= k + tol && above >= k - tol),
            "k = {k}, got = {got}, eps = {eps}, below = {below}, above = {above}"
        );
    }
}
