//! Property-based tests for the geometric invariants Hyper-M relies on.

use hyperm_geometry::solve::expected_items;
use hyperm_geometry::{
    cap_fraction, cap_fraction_beta, intersection_fraction, solve_epsilon_for_k, ClusterView,
};
use proptest::prelude::*;

proptest! {
    /// Cap fractions are always valid probabilities, whatever d and α.
    #[test]
    fn cap_fraction_in_unit_interval(d in 1u32..200, alpha in 0.0..std::f64::consts::PI) {
        let f = cap_fraction(d, alpha);
        prop_assert!((0.0..=1.0).contains(&f), "f = {f}");
    }

    /// Complementary caps tile the ball: F(α) + F(π − α) = 1.
    #[test]
    fn cap_complement_identity(d in 1u32..100, alpha in 0.0..std::f64::consts::PI) {
        let f = cap_fraction(d, alpha) + cap_fraction(d, std::f64::consts::PI - alpha);
        prop_assert!((f - 1.0).abs() < 1e-9, "sum = {f}");
    }

    /// The two independent cap evaluations agree everywhere.
    #[test]
    fn cap_beta_agreement(d in 1u32..64, alpha in 0.0..std::f64::consts::PI) {
        let a = cap_fraction(d, alpha);
        let b = cap_fraction_beta(d, alpha);
        prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
    }

    /// Intersection fractions are valid probabilities for arbitrary configs.
    #[test]
    fn intersection_fraction_valid(
        d in 1u32..64,
        r in 1e-3..10.0f64,
        eps in 0.0..10.0f64,
        b in 0.0..25.0f64,
    ) {
        let f = intersection_fraction(d, r, eps, b);
        prop_assert!((0.0..=1.0).contains(&f), "f = {f}");
    }

    /// Moving the query closer never decreases the covered fraction.
    #[test]
    fn intersection_monotone_in_distance(
        d in 1u32..32,
        r in 1e-2..5.0f64,
        eps in 1e-2..5.0f64,
        b1 in 0.0..12.0f64,
        delta in 0.0..5.0f64,
    ) {
        let near = intersection_fraction(d, r, eps, b1);
        let far = intersection_fraction(d, r, eps, b1 + delta);
        prop_assert!(far <= near + 1e-10, "near {near} far {far}");
    }

    /// Growing the query never decreases the covered fraction.
    #[test]
    fn intersection_monotone_in_radius(
        d in 1u32..32,
        r in 1e-2..5.0f64,
        eps in 1e-2..5.0f64,
        grow in 0.0..5.0f64,
        b in 0.0..12.0f64,
    ) {
        let small = intersection_fraction(d, r, eps, b);
        let large = intersection_fraction(d, r, eps + grow, b);
        prop_assert!(large >= small - 1e-10, "small {small} large {large}");
    }

    /// The solved ε really produces ≈ k expected items whenever k is
    /// attainable.
    #[test]
    fn solved_epsilon_achieves_target(
        d in 1u32..16,
        dist1 in 0.0..4.0f64,
        dist2 in 0.0..4.0f64,
        r1 in 0.05..2.0f64,
        r2 in 0.05..2.0f64,
        n1 in 1.0..200.0f64,
        n2 in 1.0..200.0f64,
        frac in 0.05..0.95f64,
    ) {
        let clusters = [
            ClusterView { centre_dist: dist1, radius: r1, items: n1 },
            ClusterView { centre_dist: dist2, radius: r2, items: n2 },
        ];
        let k = frac * (n1 + n2);
        let eps = solve_epsilon_for_k(d, &clusters, k, 1e-10);
        let got = expected_items(d, &clusters, eps);
        // In high dimensions the curve g(ε) can be a quasi-step at f64
        // resolution (cap concentration), so the solver may land on either
        // side of the jump. The correct property is that the returned ε
        // *brackets* the target: g just below ε is ≤ k and g just above is
        // ≥ k (all up to small tolerances).
        let nudge = 1e-7 * (1.0 + eps);
        let below = expected_items(d, &clusters, (eps - nudge).max(0.0));
        let above = expected_items(d, &clusters, eps + nudge);
        let tol = 1e-2 * k.max(1.0);
        prop_assert!(
            (got - k).abs() <= tol || (below <= k + tol && above >= k - tol),
            "k = {k}, got = {got}, eps = {eps}, below = {below}, above = {above}"
        );
    }

    /// Near-concentric lens configurations (b spanning 1e-300 … 1e-3) stay
    /// finite, valid and continuous with the b = 0 containment limits.
    /// Regression for the radical-plane blow-up: (b² + r² − ε²)/(2b)
    /// overflows/cancels as b → 0⁺ with r ≈ ε.
    #[test]
    fn lens_continuous_at_concentricity(
        d in 1u32..16,
        r in 0.1..10.0f64,
        // ε = r + t·b keeps the configuration inside the lens regime
        // (|r − ε| < b) for every b in the sweep.
        t in -0.99..0.99f64,
        b_exp in -300.0..-3.0f64,
    ) {
        let b = 10f64.powf(b_exp);
        let eps = r + t * b;
        let f = intersection_fraction(d, r, eps, b);
        prop_assert!(f.is_finite() && (0.0..=1.0).contains(&f), "f = {f}");
        // b = 0 limit: data ball covered if ε ≥ r, else (ε/r)^d ≈ 1.
        let limit = intersection_fraction(d, r, eps, 0.0);
        // The true fraction deviates from the limit by O(d·b/r); with
        // b ≤ 1e-3 and r ≥ 0.1 that is ≤ 0.16, but for the tiny-b bulk of
        // the sweep the two must agree to near machine precision.
        let tol = (1e-9 + 100.0 * d as f64 * b / r).min(0.2);
        prop_assert!(
            (f - limit).abs() <= tol,
            "d={d} r={r} eps={eps} b={b}: f={f} vs limit={limit}"
        );
        // Local continuity: halving b moves the result only slightly.
        let f_half = intersection_fraction(d, r, eps, b / 2.0);
        prop_assert!((f - f_half).abs() <= tol, "f(b)={f} f(b/2)={f_half}");
    }
}
