//! Monte-Carlo validation of the analytic sphere geometry.
//!
//! The paper's Eq. 7 (as printed) contains typos, so the implementation's
//! correctness is anchored here: we sample points uniformly from the data
//! ball with the Gaussian-direction method and compare the empirical covered
//! fraction against [`hyperm_geometry::intersection_fraction`].

use hyperm_geometry::{cap_fraction, intersection_fraction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample a point uniformly from the d-ball of radius `r` centred at origin.
fn sample_in_ball(rng: &mut StdRng, d: usize, r: f64) -> Vec<f64> {
    // Gaussian direction + radius ~ U^{1/d} · r.
    let mut v: Vec<f64> = (0..d).map(|_| sample_standard_normal(rng)).collect();
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    let radius = r * rng.gen::<f64>().powf(1.0 / d as f64);
    for x in v.iter_mut() {
        *x = *x / norm * radius;
    }
    v
}

/// Box–Muller standard normal (avoids a rand_distr dependency).
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn empirical_fraction(d: usize, r: f64, eps: f64, b: f64, n: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..n {
        let p = sample_in_ball(&mut rng, d, r);
        // Query centre at (b, 0, 0, …).
        let mut sq = (p[0] - b) * (p[0] - b);
        for x in &p[1..] {
            sq += x * x;
        }
        if sq <= eps * eps {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

#[test]
fn lens_fraction_matches_monte_carlo_low_dims() {
    let n = 200_000;
    for (i, &(d, r, eps, b)) in [
        (2u32, 1.0, 0.8, 1.2),
        (3, 1.0, 1.0, 1.0),
        (4, 2.0, 1.0, 2.2),
        (5, 1.0, 0.5, 0.9),
        (6, 1.5, 1.5, 1.1),
    ]
    .iter()
    .enumerate()
    {
        let analytic = intersection_fraction(d, r, eps, b);
        let empirical = empirical_fraction(d as usize, r, eps, b, n, 42 + i as u64);
        let tol = 4.0 * (analytic.max(0.01) / n as f64).sqrt(); // ~4σ binomial
        assert!(
            (analytic - empirical).abs() <= tol,
            "d={d} r={r} eps={eps} b={b}: analytic {analytic} vs empirical {empirical} (tol {tol})"
        );
    }
}

#[test]
fn containment_cases_match_monte_carlo() {
    let n = 100_000;
    // Query ball entirely inside data ball: fraction = (eps/r)^d.
    let analytic = intersection_fraction(3, 2.0, 0.5, 0.3);
    let empirical = empirical_fraction(3, 2.0, 0.5, 0.3, n, 7);
    assert!(
        (analytic - empirical).abs() < 0.01,
        "{analytic} vs {empirical}"
    );
    // Data ball entirely inside query ball: fraction = 1.
    let empirical = empirical_fraction(3, 0.5, 2.0, 0.3, n, 8);
    assert!(empirical > 0.999);
}

#[test]
fn cap_fraction_matches_monte_carlo() {
    // A cap of half-angle α is the set {x : x·e₁ ≥ r cos α}.
    let n = 200_000;
    let mut rng = StdRng::seed_from_u64(99);
    for &(d, alpha) in &[(2u32, 1.0f64), (3, 0.7), (5, 1.9), (8, 1.4)] {
        let thresh = alpha.cos();
        let mut hits = 0usize;
        for _ in 0..n {
            let p = sample_in_ball(&mut rng, d as usize, 1.0);
            if p[0] >= thresh {
                hits += 1;
            }
        }
        let empirical = hits as f64 / n as f64;
        let analytic = cap_fraction(d, alpha);
        assert!(
            (analytic - empirical).abs() < 0.006,
            "d={d} alpha={alpha}: {analytic} vs {empirical}"
        );
    }
}
