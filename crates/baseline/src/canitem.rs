//! Conventional per-item CAN dissemination (the paper's baseline).
//!
//! "The insertion method is as described in the original CAN work": every
//! data item is published individually, each insertion routing through the
//! overlay. The paper compares Hyper-M against:
//!
//! * CAN in the **original 512-dimensional space** — faithful indexing, but
//!   every one of the ~100k items pays a routing path;
//! * a **2-dimensional CAN** that indexes "in only 2 dimensions" — cheap
//!   routing, but as the paper notes "it cannot be used to retrieve
//!   meaningful data"; it is plotted purely to show the magnitude of the
//!   performance gap (Figures 8b, 8c).

use hyperm_can::{CanConfig, CanOverlay, KeyMap, ObjectRef};
use hyperm_cluster::Dataset;
use hyperm_sim::{NodeId, OpStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a per-item CAN baseline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerItemCanConfig {
    /// Nodes in the overlay.
    pub nodes: usize,
    /// Key-space dimensionality (512 for the faithful baseline, 2 for the
    /// projection baseline).
    pub key_dim: usize,
    /// Data coordinate bounds assumed by the key map.
    pub data_bounds: (f64, f64),
    /// Seed for overlay bootstrap and insertion entry points.
    pub seed: u64,
}

impl PerItemCanConfig {
    /// Baseline in the full data dimensionality.
    pub fn full_dim(nodes: usize, data_dim: usize, seed: u64) -> Self {
        Self {
            nodes,
            key_dim: data_dim,
            data_bounds: (0.0, 1.0),
            seed,
        }
    }

    /// The paper's 2-d projection baseline.
    pub fn two_dim(nodes: usize, seed: u64) -> Self {
        Self {
            nodes,
            key_dim: 2,
            data_bounds: (0.0, 1.0),
            seed,
        }
    }
}

/// Outcome of inserting a whole corpus item by item.
#[derive(Debug, Clone)]
pub struct PerItemCanReport {
    /// The populated overlay (for distribution analyses).
    pub overlay: CanOverlay,
    /// Total cost of all insertions.
    pub totals: OpStats,
    /// Number of items inserted.
    pub items: u64,
}

impl PerItemCanReport {
    /// Average routing hops per inserted item — Figure 8's y-axis.
    pub fn avg_hops_per_item(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.totals.hops as f64 / self.items as f64
        }
    }
}

/// Publish every item of every peer individually into a fresh CAN.
///
/// Each insertion starts at the publishing peer's own node (peers are
/// mapped onto overlay nodes round-robin when there are more peers than
/// nodes). Items carry their full vector as payload bytes — this is what
/// makes per-item dissemination expensive in both time and energy.
pub fn insert_all_items(peers: &[Dataset], config: &PerItemCanConfig) -> PerItemCanReport {
    assert!(!peers.is_empty(), "no peers");
    let mut overlay = CanOverlay::bootstrap(
        CanConfig::new(config.key_dim).with_seed(config.seed),
        config.nodes,
    );
    let map = KeyMap::uniform(config.key_dim, config.data_bounds.0, config.data_bounds.1);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let mut totals = OpStats::zero();
    let mut items = 0u64;
    for (peer, local) in peers.iter().enumerate() {
        let entry = NodeId(peer % config.nodes);
        for (i, row) in local.rows().enumerate() {
            let key = map.to_key(row);
            let out = overlay.insert_point(
                entry,
                key,
                ObjectRef {
                    peer,
                    tag: i as u64,
                    items: 1,
                },
            );
            // Charge the item's actual payload (its full vector), not just
            // the key: CAN stores the data itself in this baseline.
            let extra_bytes = 8 * row.len() as u64;
            totals += out.stats;
            totals.bytes += extra_bytes * out.stats.messages.max(1);
            items += 1;
            // Occasionally vary the entry point like a real network would.
            if rng.gen::<f64>() < 0.01 {
                let _ = rng.gen::<u64>();
            }
        }
    }
    PerItemCanReport {
        overlay,
        totals,
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperm_datagen::{generate_markov, MarkovConfig};

    fn small_corpus() -> Vec<Dataset> {
        let data = generate_markov(&MarkovConfig::small(120, 16, 1));
        // 6 peers × 20 items.
        (0..6)
            .map(|p| data.select(&(p * 20..(p + 1) * 20).collect::<Vec<_>>()))
            .collect()
    }

    #[test]
    fn inserts_every_item() {
        let peers = small_corpus();
        let rep = insert_all_items(&peers, &PerItemCanConfig::full_dim(10, 16, 2));
        assert_eq!(rep.items, 120);
        let stored: usize = rep.overlay.store_sizes().iter().sum();
        assert_eq!(stored, 120);
    }

    #[test]
    fn per_item_insertion_costs_hops() {
        let peers = small_corpus();
        let rep = insert_all_items(&peers, &PerItemCanConfig::two_dim(10, 3));
        assert!(
            rep.avg_hops_per_item() > 0.5,
            "avg {}",
            rep.avg_hops_per_item()
        );
        assert!(
            rep.totals.bytes > rep.items * 16 * 8,
            "payload bytes not charged"
        );
    }

    #[test]
    fn two_dim_routes_cheaper_than_high_dim_on_big_networks() {
        // In CAN, path length grows like (d/4)·n^{1/d}; for small n and
        // large d, most splits never touch most dimensions, so the 2-d
        // overlay with the same node count routes in the same ballpark or
        // cheaper. Just check both run and produce sane averages.
        let peers = small_corpus();
        let full = insert_all_items(&peers, &PerItemCanConfig::full_dim(30, 16, 4));
        let flat = insert_all_items(&peers, &PerItemCanConfig::two_dim(30, 4));
        assert!(full.avg_hops_per_item() < 30.0);
        assert!(flat.avg_hops_per_item() < 30.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let peers = small_corpus();
        let a = insert_all_items(&peers, &PerItemCanConfig::two_dim(8, 9));
        let b = insert_all_items(&peers, &PerItemCanConfig::two_dim(8, 9));
        assert_eq!(a.totals, b.totals);
    }
}
