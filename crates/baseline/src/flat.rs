//! Exact centralized index — the evaluation ground truth.
//!
//! "We implemented a centralized flat file system that indexes the data
//! using the original vectors, and use the retrieval results as the basis
//! for evaluating the effectiveness of our proposal." (Section 6.)
//!
//! All answers are exact linear scans over the original vectors; k-nn uses
//! a bounded max-heap so large corpora stay O(n log k).

use hyperm_cluster::Dataset;
use hyperm_geometry::vecmath::sq_dist;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of an item in the global corpus: `(peer, local index)`.
///
/// The flat index is built over the union of all peers' collections but
/// remembers where each item lives, so distributed results can be compared
/// against it directly.
pub type ItemId = (usize, usize);

/// Exact linear-scan index over the original vectors.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    data: Dataset,
    ids: Vec<ItemId>,
}

impl FlatIndex {
    /// Build from per-peer collections (ids become `(peer, local_idx)`).
    pub fn from_peers(peers: &[Dataset]) -> Self {
        assert!(!peers.is_empty(), "no peers");
        let dim = peers
            .iter()
            .find(|p| !p.is_empty())
            .map(Dataset::dim)
            .expect("all peers empty");
        let mut data = Dataset::new(dim);
        let mut ids = Vec::new();
        for (p, local) in peers.iter().enumerate() {
            for (i, row) in local.rows().enumerate() {
                data.push_row(row);
                ids.push((p, i));
            }
        }
        Self { data, ids }
    }

    /// Build from a single dataset (ids become `(0, idx)`).
    pub fn from_dataset(data: Dataset) -> Self {
        let ids = (0..data.len()).map(|i| (0, i)).collect();
        Self { data, ids }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of indexed vectors.
    pub fn dim(&self) -> usize {
        self.data.dim()
    }

    /// All items within `radius` of `query` (inclusive), unordered.
    pub fn range(&self, query: &[f64], radius: f64) -> Vec<ItemId> {
        assert!(radius >= 0.0, "negative radius");
        let r2 = radius * radius;
        self.data
            .rows()
            .zip(&self.ids)
            .filter_map(|(row, &id)| (sq_dist(row, query) <= r2 + 1e-12).then_some(id))
            .collect()
    }

    /// The `k` nearest items to `query`, closest first (ties broken by id).
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<(ItemId, f64)> {
        #[derive(PartialEq)]
        struct Entry(f64, ItemId);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Max-heap by distance so the farthest of the current top-k
                // sits on top and can be evicted.
                self.0
                    .partial_cmp(&other.0)
                    .unwrap_or(Ordering::Equal)
                    .then(self.1.cmp(&other.1))
            }
        }
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
        for (row, &id) in self.data.rows().zip(&self.ids) {
            let d2 = sq_dist(row, query);
            if heap.len() < k {
                heap.push(Entry(d2, id));
            } else if let Some(top) = heap.peek() {
                if d2 < top.0 {
                    heap.pop();
                    heap.push(Entry(d2, id));
                }
            }
        }
        let mut out: Vec<(ItemId, f64)> = heap
            .into_iter()
            .map(|Entry(d2, id)| (id, d2.sqrt()))
            .collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }

    /// Exact-match lookup (distance < 1e-9).
    pub fn point(&self, query: &[f64]) -> Option<ItemId> {
        self.data
            .rows()
            .zip(&self.ids)
            .find_map(|(row, &id)| (sq_dist(row, query) < 1e-18).then_some(id))
    }

    /// Distance of the k-th nearest neighbour (used to derive range-query
    /// radii for the effectiveness experiments).
    pub fn kth_distance(&self, query: &[f64], k: usize) -> f64 {
        self.knn(query, k).last().map(|&(_, d)| d).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> FlatIndex {
        FlatIndex::from_dataset(Dataset::from_rows(&[
            [0.0, 0.0],
            [1.0, 0.0],
            [0.0, 2.0],
            [3.0, 3.0],
        ]))
    }

    #[test]
    fn range_query_exact() {
        let idx = index();
        let mut got = idx.range(&[0.0, 0.0], 1.0);
        got.sort_unstable();
        assert_eq!(got, vec![(0, 0), (0, 1)]);
        assert_eq!(idx.range(&[10.0, 10.0], 0.5), vec![]);
        // Inclusive boundary.
        assert!(idx.range(&[0.0, 0.0], 2.0).contains(&(0, 2)));
    }

    #[test]
    fn knn_sorted_and_exact() {
        let idx = index();
        let got = idx.knn(&[0.1, 0.0], 3);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, (0, 0));
        assert_eq!(got[1].0, (0, 1));
        assert_eq!(got[2].0, (0, 2));
        assert!(got[0].1 <= got[1].1 && got[1].1 <= got[2].1);
    }

    #[test]
    fn knn_k_larger_than_n() {
        let idx = index();
        assert_eq!(idx.knn(&[0.0, 0.0], 99).len(), 4);
        assert!(idx.knn(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn point_lookup() {
        let idx = index();
        assert_eq!(idx.point(&[3.0, 3.0]), Some((0, 3)));
        assert_eq!(idx.point(&[3.0, 3.1]), None);
    }

    #[test]
    fn kth_distance_matches_knn() {
        let idx = index();
        let d = idx.kth_distance(&[0.0, 0.0], 2);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_peers_preserves_provenance() {
        let peers = vec![
            Dataset::from_rows(&[[0.0], [1.0]]),
            Dataset::new(1),
            Dataset::from_rows(&[[5.0]]),
        ];
        let idx = FlatIndex::from_peers(&peers);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.knn(&[4.9], 1)[0].0, (2, 0));
        assert_eq!(idx.knn(&[0.9], 1)[0].0, (0, 1));
    }
}
