//! Precision / recall arithmetic.
//!
//! "We use the standard precision and recall measures to evaluate the
//! accuracy of our method" (Section 6): retrieved sets from Hyper-M are
//! compared against the exact answers of the centralized flat index.

use std::collections::HashSet;
use std::hash::Hash;

/// A precision/recall pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrecisionRecall {
    /// `|retrieved ∩ relevant| / |retrieved|` (1.0 when nothing retrieved
    /// and nothing relevant).
    pub precision: f64,
    /// `|retrieved ∩ relevant| / |relevant|` (1.0 when nothing relevant).
    pub recall: f64,
}

impl PrecisionRecall {
    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Compute precision and recall of `retrieved` against `relevant`.
pub fn precision_recall<T: Eq + Hash + Copy>(retrieved: &[T], relevant: &[T]) -> PrecisionRecall {
    let relevant_set: HashSet<T> = relevant.iter().copied().collect();
    let retrieved_set: HashSet<T> = retrieved.iter().copied().collect();
    let hits = retrieved_set
        .iter()
        .filter(|x| relevant_set.contains(x))
        .count();
    let precision = if retrieved_set.is_empty() {
        if relevant_set.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        hits as f64 / retrieved_set.len() as f64
    };
    let recall = if relevant_set.is_empty() {
        1.0
    } else {
        hits as f64 / relevant_set.len() as f64
    };
    PrecisionRecall { precision, recall }
}

/// Mean of a slice of precision/recall pairs, with min/max recall bounds —
/// the error bars of the paper's Figure 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrSummary {
    /// Mean precision.
    pub precision: f64,
    /// Mean recall.
    pub recall: f64,
    /// Minimum recall observed.
    pub recall_min: f64,
    /// Maximum recall observed.
    pub recall_max: f64,
}

/// Summarise many query outcomes.
pub fn summarize(prs: &[PrecisionRecall]) -> PrSummary {
    assert!(!prs.is_empty(), "no outcomes to summarise");
    let n = prs.len() as f64;
    PrSummary {
        precision: prs.iter().map(|p| p.precision).sum::<f64>() / n,
        recall: prs.iter().map(|p| p.recall).sum::<f64>() / n,
        recall_min: prs.iter().map(|p| p.recall).fold(f64::INFINITY, f64::min),
        recall_max: prs.iter().map(|p| p.recall).fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_retrieval() {
        let pr = precision_recall(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.f1(), 1.0);
    }

    #[test]
    fn partial_retrieval() {
        let pr = precision_recall(&[1, 2, 3, 4], &[1, 2]);
        assert_eq!(pr.precision, 0.5);
        assert_eq!(pr.recall, 1.0);
        let pr = precision_recall(&[1], &[1, 2, 3, 4]);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.25);
    }

    #[test]
    fn disjoint_sets() {
        let pr = precision_recall(&[5, 6], &[1, 2]);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
        assert_eq!(pr.f1(), 0.0);
    }

    #[test]
    fn empty_edge_cases() {
        let none: [u32; 0] = [];
        assert_eq!(
            precision_recall(&none, &none),
            PrecisionRecall {
                precision: 1.0,
                recall: 1.0
            }
        );
        assert_eq!(precision_recall(&[1], &none).recall, 1.0);
        assert_eq!(precision_recall(&none, &[1]).precision, 0.0);
    }

    #[test]
    fn duplicates_are_ignored() {
        let pr = precision_recall(&[1, 1, 2, 2], &[1, 2]);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn summary_bounds() {
        let prs = [
            PrecisionRecall {
                precision: 1.0,
                recall: 0.5,
            },
            PrecisionRecall {
                precision: 0.5,
                recall: 1.0,
            },
        ];
        let s = summarize(&prs);
        assert_eq!(s.precision, 0.75);
        assert_eq!(s.recall, 0.75);
        assert_eq!(s.recall_min, 0.5);
        assert_eq!(s.recall_max, 1.0);
    }
}
