//! Load-distribution statistics (Figure 9's measurements).
//!
//! The paper argues that the orthogonality of wavelet subspaces spreads
//! skewed data across the network "without any explicit data
//! redistribution". Quantifying that needs concentration measures over
//! per-node load vectors; this module provides the standard ones (used by
//! the Figure 9 binary and the load-balance example).

/// Summary statistics of a per-node load vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionStats {
    /// Nodes with non-zero load.
    pub nonempty: usize,
    /// Total load.
    pub total: u64,
    /// Largest single-node load.
    pub max: u64,
    /// Share of the total held by the most-loaded 10% of nodes.
    pub top10_share: f64,
    /// Gini coefficient (0 = perfectly even, → 1 = all on one node).
    pub gini: f64,
}

/// Compute [`DistributionStats`] for a load vector.
///
/// A zero-total vector yields zeroed statistics.
pub fn distribution_stats(load: &[u64]) -> DistributionStats {
    let n = load.len();
    assert!(n > 0, "empty load vector");
    let total: u64 = load.iter().sum();
    let nonempty = load.iter().filter(|&&x| x > 0).count();
    let max = load.iter().copied().max().unwrap_or(0);
    if total == 0 {
        return DistributionStats {
            nonempty: 0,
            total: 0,
            max: 0,
            top10_share: 0.0,
            gini: 0.0,
        };
    }
    let mut sorted: Vec<u64> = load.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top_n = (n / 10).max(1);
    let top10_share = sorted.iter().take(top_n).sum::<u64>() as f64 / total as f64;
    // Gini over the ascending-sorted vector.
    sorted.reverse();
    let mut weighted = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        weighted += (i as f64 + 1.0) * x as f64;
    }
    let gini = (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64;
    DistributionStats {
        nonempty,
        total,
        max,
        top10_share,
        gini,
    }
}

/// Element-wise sum of several load vectors (all same length) — the
/// combined per-device load across Hyper-M's overlays.
pub fn combine_loads(loads: &[Vec<u64>]) -> Vec<u64> {
    assert!(!loads.is_empty(), "no load vectors");
    let n = loads[0].len();
    let mut out = vec![0u64; n];
    for load in loads {
        assert_eq!(load.len(), n, "load vector length mismatch");
        for (o, &x) in out.iter_mut().zip(load) {
            *o += x;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_load_has_zero_gini() {
        let s = distribution_stats(&[5; 20]);
        assert_eq!(s.nonempty, 20);
        assert_eq!(s.total, 100);
        assert!(s.gini.abs() < 1e-12);
        assert!((s.top10_share - 0.1).abs() < 1e-12); // top 2 of 20 hold 10%
    }

    #[test]
    fn concentrated_load_has_high_gini() {
        let mut load = vec![0u64; 100];
        load[0] = 1000;
        let s = distribution_stats(&load);
        assert_eq!(s.nonempty, 1);
        assert_eq!(s.max, 1000);
        assert!(s.gini > 0.98, "gini {}", s.gini);
        assert_eq!(s.top10_share, 1.0);
    }

    #[test]
    fn gini_orders_by_concentration() {
        let even = distribution_stats(&[10, 10, 10, 10]);
        let tilted = distribution_stats(&[25, 10, 3, 2]);
        let extreme = distribution_stats(&[40, 0, 0, 0]);
        assert!(even.gini < tilted.gini);
        assert!(tilted.gini < extreme.gini);
    }

    #[test]
    fn empty_total_is_zeroed() {
        let s = distribution_stats(&[0, 0, 0]);
        assert_eq!(s.nonempty, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn combine_sums_elementwise() {
        let combined = combine_loads(&[vec![1, 0, 2], vec![0, 3, 1]]);
        assert_eq!(combined, vec![1, 3, 3]);
    }

    #[test]
    fn combining_disjoint_loads_lowers_gini() {
        // Two overlays each concentrated on different nodes: the combined
        // per-device view is flatter — the Figure 9 effect in miniature.
        let a = vec![10, 0, 0, 0];
        let b = vec![0, 10, 0, 0];
        let c = vec![0, 0, 10, 0];
        let d = vec![0, 0, 0, 10];
        let single = distribution_stats(&a);
        let combined = distribution_stats(&combine_loads(&[a.clone(), b, c, d]));
        assert!(combined.gini < single.gini);
        assert_eq!(combined.gini, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty load vector")]
    fn empty_vector_rejected() {
        distribution_stats(&[]);
    }
}
