//! The paper's comparison systems and evaluation ground truth.
//!
//! Hyper-M is evaluated against three reference points, all reproduced
//! here:
//!
//! * [`flat`] — "a centralized flat file system that indexes the data using
//!   the original vectors" (Section 6): an exact linear-scan index whose
//!   range/k-nn answers define precision and recall;
//! * [`canitem`] — conventional CAN dissemination, publishing **every data
//!   item individually**: in the original 512-d key space, and in the
//!   paper's illustrative 2-d CAN that indexes only two dimensions
//!   (Section 5.2, Figure 8);
//! * [`metrics`] — precision/recall arithmetic shared by the experiment
//!   binaries;
//! * [`distribution`] — load-concentration statistics (Gini, top-decile
//!   share) behind the Figure 9 analysis.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod canitem;
pub mod distribution;
pub mod flat;
pub mod metrics;

pub use canitem::{insert_all_items, PerItemCanConfig, PerItemCanReport};
pub use distribution::{combine_loads, distribution_stats, DistributionStats};
pub use flat::FlatIndex;
pub use metrics::{precision_recall, PrecisionRecall};
