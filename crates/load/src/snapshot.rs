//! Point-in-time view of the per-peer load distribution.

use hyperm_sim::{EnergyModel, LoadLedger, PeerLoad};
use hyperm_telemetry::JsonObj;

/// Aggregated per-peer load statistics over the *alive* peers, computed by
/// [`crate::LoadBalancer::snapshot`]. "Load" is a peer's total charged
/// events: served lookups + flood relays + answered fetches (retries and
/// bytes are reported separately). Serialisable to the `BENCH_*.json`
/// dialect like a [`hyperm_telemetry::MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSnapshot {
    /// Alive peers the distribution was computed over.
    pub peers: usize,
    /// Total charged events across those peers.
    pub total_events: u64,
    /// Total charged bytes.
    pub total_bytes: u64,
    /// Total charged retransmissions.
    pub total_retries: u64,
    /// Heaviest per-peer load.
    pub max: u64,
    /// Median per-peer load.
    pub median: u64,
    /// 99th-percentile per-peer load (nearest-rank).
    pub p99: u64,
    /// Mean per-peer load.
    pub mean: f64,
    /// Gini coefficient of the load distribution (0 = perfectly even,
    /// → 1 = one peer does everything). 0 when nothing was charged.
    pub gini: f64,
    /// The headline imbalance metric: `max / max(median, 1)`.
    pub max_median_ratio: f64,
    /// Per-zone heat, folded per level: the hottest peer's flood-visit
    /// count in each level's overlay.
    pub heat_max_per_level: Vec<u64>,
    /// Total flood visits per level.
    pub heat_total_per_level: Vec<u64>,
    /// Radio-energy estimate (J) of the heaviest-loaded peer, under the
    /// Bluetooth class-2 model.
    pub max_energy_j: f64,
    /// Radio-energy estimate (J) summed over all peers.
    pub total_energy_j: f64,
}

impl LoadSnapshot {
    /// Compute the distribution over `ledger`, restricted to peers whose
    /// index satisfies `alive` (dead peers serve nothing and would drag
    /// the median down artificially).
    pub fn compute(ledger: &LoadLedger, alive: impl Fn(usize) -> bool) -> Self {
        let model = EnergyModel::bluetooth_class2();
        let per_peer: Vec<(usize, PeerLoad)> = ledger
            .per_peer()
            .into_iter()
            .enumerate()
            .filter(|(p, _)| alive(*p))
            .collect();
        let mut loads: Vec<u64> = per_peer.iter().map(|(_, l)| l.events()).collect();
        loads.sort_unstable();
        let n = loads.len();
        let total_events: u64 = loads.iter().sum();
        let total_bytes: u64 = per_peer.iter().map(|(_, l)| l.bytes).sum();
        let total_retries: u64 = per_peer.iter().map(|(_, l)| l.retries).sum();
        let max = loads.last().copied().unwrap_or(0);
        let median = if n == 0 { 0 } else { loads[n / 2] };
        let p99 = if n == 0 {
            0
        } else {
            // Nearest-rank percentile on the ascending sort.
            let rank = ((0.99 * n as f64).ceil() as usize).clamp(1, n);
            loads[rank - 1]
        };
        let mean = if n == 0 {
            0.0
        } else {
            total_events as f64 / n as f64
        };
        // Gini over the ascending sort: (2·Σ i·xᵢ − (n+1)·Σ xᵢ) / (n·Σ xᵢ),
        // with i = 1..n.
        let gini = if n == 0 || total_events == 0 {
            0.0
        } else {
            let weighted: f64 = loads
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
                .sum();
            (2.0 * weighted - (n as f64 + 1.0) * total_events as f64)
                / (n as f64 * total_events as f64)
        };
        let heat_max_per_level: Vec<u64> = (0..ledger.levels())
            .map(|l| {
                ledger
                    .heat_of(l)
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| alive(*p))
                    .map(|(_, &h)| h)
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let heat_total_per_level: Vec<u64> = (0..ledger.levels())
            .map(|l| {
                ledger
                    .heat_of(l)
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| alive(*p))
                    .map(|(_, &h)| h)
                    .sum()
            })
            .collect();
        let max_energy_j = per_peer
            .iter()
            .map(|(_, l)| l.energy_j(&model))
            .fold(0.0, f64::max);
        let total_energy_j: f64 = per_peer.iter().map(|(_, l)| l.energy_j(&model)).sum();
        LoadSnapshot {
            peers: n,
            total_events,
            total_bytes,
            total_retries,
            max,
            median,
            p99,
            mean,
            gini,
            max_median_ratio: max as f64 / median.max(1) as f64,
            heat_max_per_level,
            heat_total_per_level,
            max_energy_j,
            total_energy_j,
        }
    }

    /// The snapshot as an ordered JSON object (compose into `BENCH_*.json`
    /// reports or render standalone).
    pub fn to_json_obj(&self) -> JsonObj {
        let heat: Vec<String> = self
            .heat_max_per_level
            .iter()
            .zip(&self.heat_total_per_level)
            .enumerate()
            .map(|(l, (&mx, &tot))| {
                JsonObj::new()
                    .u("level", l as u64)
                    .u("max", mx)
                    .u("total", tot)
                    .render()
            })
            .collect();
        JsonObj::new()
            .u("peers", self.peers as u64)
            .u("total_events", self.total_events)
            .u("total_bytes", self.total_bytes)
            .u("total_retries", self.total_retries)
            .u("max", self.max)
            .u("median", self.median)
            .u("p99", self.p99)
            .f("mean", self.mean, 2)
            .f("gini", self.gini, 4)
            .f("max_median_ratio", self.max_median_ratio, 3)
            .f("max_energy_j", self.max_energy_j, 6)
            .f("total_energy_j", self.total_energy_j, 6)
            .arr("zone_heat", &heat)
    }

    /// Single-line JSON rendering.
    pub fn to_json(&self) -> String {
        self.to_json_obj().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger_with(loads: &[u64]) -> LoadLedger {
        let ledger = LoadLedger::new(loads.len(), 1);
        for (p, &n) in loads.iter().enumerate() {
            for _ in 0..n {
                ledger.charge_query_served(p);
            }
        }
        ledger
    }

    #[test]
    fn even_load_has_zero_gini_and_unit_ratio() {
        let s = LoadSnapshot::compute(&ledger_with(&[5, 5, 5, 5]), |_| true);
        assert_eq!((s.max, s.median, s.p99), (5, 5, 5));
        assert!(s.gini.abs() < 1e-12);
        assert!((s.max_median_ratio - 1.0).abs() < 1e-12);
        assert_eq!(s.total_events, 20);
    }

    #[test]
    fn concentrated_load_is_flagged() {
        let s = LoadSnapshot::compute(&ledger_with(&[100, 1, 1, 1, 1]), |_| true);
        assert_eq!(s.max, 100);
        assert_eq!(s.median, 1);
        assert!(s.max_median_ratio >= 100.0);
        assert!(s.gini > 0.7, "gini {} should be near 1", s.gini);
    }

    #[test]
    fn dead_peers_are_excluded() {
        let s = LoadSnapshot::compute(&ledger_with(&[9, 9, 0, 9]), |p| p != 2);
        assert_eq!(s.peers, 3);
        assert_eq!(s.median, 9);
        assert!(s.gini.abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_snapshot_is_all_zero() {
        let s = LoadSnapshot::compute(&ledger_with(&[0, 0]), |_| true);
        assert_eq!((s.max, s.median, s.p99, s.total_events), (0, 0, 0, 0));
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.max_median_ratio, 0.0);
    }

    #[test]
    fn json_has_the_headline_fields() {
        let s = LoadSnapshot::compute(&ledger_with(&[4, 2]), |_| true);
        let j = s.to_json();
        for key in [
            "\"peers\"",
            "\"max\"",
            "\"median\"",
            "\"p99\"",
            "\"gini\"",
            "\"max_median_ratio\"",
            "\"zone_heat\"",
        ] {
            assert!(j.contains(key), "{key} missing from {j}");
        }
    }
}
