//! Load balancing and hot-spot relief for Hyper-M networks.
//!
//! The paper's CAN zones are carved by *data* placement, but query traffic
//! is rarely uniform: a Zipf-skewed workload concentrates phase-1 floods on
//! the handful of overlay nodes whose zones cover the popular query
//! centres, and those hosts burn disproportionate messages, bytes and —
//! on a MANET — battery. This crate measures that imbalance and relieves
//! it with three independently toggleable mechanisms, all layered on
//! primitives the repair subsystem already ships:
//!
//! * **Measurement** — [`LoadBalancer::install`] wires a
//!   [`hyperm_sim::LoadLedger`] into every overlay level (served lookups,
//!   flood relays, answered fetches, bytes, retries, exactly-once
//!   attribution) and [`LoadBalancer::snapshot`] folds it into a
//!   [`LoadSnapshot`]: max/median/p99 per-peer load, the Gini coefficient,
//!   per-zone heat and a radio-energy estimate — serialisable like a
//!   [`hyperm_telemetry::MetricsSnapshot`].
//! * **Virtual nodes** — join-time placement carves extra "virtual zones"
//!   per level (seeded random split points, granted round-robin), so each
//!   host owns several small scattered zones instead of one big one;
//!   [`LoadBalancer::relieve`] migrates the hottest host's largest virtual
//!   zone to the coldest host through the leave/takeover replica handoff.
//! * **Load-triggered splits/merges** — when the max/median load ratio
//!   exceeds [`LoadConfig::split_ratio`], the hottest zone is halved and
//!   one half granted to the coldest host (replicas copied, the candidate
//!   set only grows — Theorem 4.1 holds); when load flattens again the
//!   background dyadic sibling merge (`repair_to_quiescence`) folds the
//!   fragments back.
//! * **Popular-summary cache** — entry peers remember phase-1 score maps
//!   (see `hyperm_core::SummaryCache`) so repeated popular queries never
//!   touch the hot zones at all; epoch-based invalidation keeps cached
//!   answers set-identical to cold ones.
//!
//! Everything defaults to **off**: a network without an installed balancer
//! (or with [`LoadConfig::default`]) is bit-identical — results and
//! telemetry both — to one that has never heard of this crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod balancer;
mod config;
mod snapshot;

pub use balancer::{LoadBalancer, ReliefReport};
pub use config::LoadConfig;
pub use snapshot::LoadSnapshot;

pub use hyperm_core::SummaryCache;
pub use hyperm_sim::{LoadLedger, PeerLoad};
