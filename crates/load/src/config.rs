//! Relief-mechanism configuration. Everything defaults to off.

/// Which relief mechanisms a [`crate::LoadBalancer`] runs, and their
/// knobs. The default enables *nothing*: installing a balancer with it
/// only measures load (the ledger) and perturbs neither results nor
/// telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Extra virtual zones carved per overlay level at install time
    /// (join-time placement). `0` disables virtual nodes.
    pub virtual_nodes: usize,
    /// On [`crate::LoadBalancer::relieve`], migrate the hottest host's
    /// largest virtual zone to the coldest host (requires fragments to
    /// exist — i.e. `virtual_nodes > 0` or prior splits).
    pub rebalance: bool,
    /// On relieve, split the hottest zone when the max/median load ratio
    /// exceeds [`LoadConfig::split_ratio`], granting one half to the
    /// coldest host; merge fragments back when load flattens.
    pub splits: bool,
    /// Max/median per-peer load ratio that triggers a split (and, at
    /// half of it, the flat-load merge-back). Must be > 1.
    pub split_ratio: f64,
    /// Install the popular-summary cache on query entry peers.
    pub cache: bool,
    /// Cache TTL in refresh rounds (see `hyperm_core::SummaryCache`).
    pub cache_ttl_rounds: u64,
    /// Cache capacity in entries (oldest-insertion eviction).
    pub cache_max_entries: usize,
    /// Seed for the balancer's own placement RNG (virtual-node split
    /// points). Query results never depend on it — only *where* relief
    /// zones land.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            virtual_nodes: 0,
            rebalance: false,
            splits: false,
            split_ratio: 2.0,
            cache: false,
            cache_ttl_rounds: 4,
            cache_max_entries: 4096,
            seed: 0,
        }
    }
}

impl LoadConfig {
    /// Enable virtual nodes: `n` extra zones per level, with migration
    /// rebalancing on relieve.
    pub fn with_virtual_nodes(mut self, n: usize) -> Self {
        self.virtual_nodes = n;
        self.rebalance = n > 0;
        self
    }

    /// Enable (or disable) load-triggered splits/merges.
    pub fn with_splits(mut self, on: bool) -> Self {
        self.splits = on;
        self
    }

    /// Override the split-trigger ratio (> 1).
    pub fn with_split_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio > 1.0, "split ratio must exceed 1, got {ratio}");
        self.split_ratio = ratio;
        self
    }

    /// Enable (or disable) the popular-summary cache.
    pub fn with_cache(mut self, on: bool) -> Self {
        self.cache = on;
        self
    }

    /// Override the cache TTL (refresh rounds).
    pub fn with_cache_ttl(mut self, rounds: u64) -> Self {
        self.cache_ttl_rounds = rounds;
        self
    }

    /// Override the cache capacity.
    pub fn with_cache_capacity(mut self, entries: usize) -> Self {
        self.cache_max_entries = entries;
        self
    }

    /// Override the placement seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether any relief mechanism (beyond measurement) is enabled.
    pub fn any_relief(&self) -> bool {
        self.virtual_nodes > 0 || self.rebalance || self.splits || self.cache
    }
}
